//! Umbrella crate: re-exports the perf-taint-rs workspace crates for the
//! top-level examples and integration tests.
pub use perf_taint;
pub use pt_analysis;
pub use pt_ir;
