//! Offline stand-in for `criterion` covering the surface this workspace
//! uses: `Criterion::bench_function`, `benchmark_group` (with
//! `sample_size`), `Bencher::iter`/`iter_batched`, `BatchSize`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is deliberately simple: a short warm-up, then `samples`
//! timed batches with `std::time::Instant`, reporting the median
//! nanoseconds per iteration. Good enough to compare hot paths locally;
//! not a statistics engine.

use std::time::Instant;

#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Bencher {
    /// ns/iter of each measured batch.
    samples: Vec<f64>,
    batch_iters: u64,
}

impl Bencher {
    fn new(batch_iters: u64, batches: usize) -> Bencher {
        Bencher {
            samples: Vec::with_capacity(batches),
            batch_iters,
        }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up.
        for _ in 0..self.batch_iters.min(16) {
            std::hint::black_box(routine());
        }
        let batches = self.samples.capacity().max(1);
        for _ in 0..batches {
            let start = Instant::now();
            for _ in 0..self.batch_iters {
                std::hint::black_box(routine());
            }
            let ns = start.elapsed().as_nanos() as f64;
            self.samples.push(ns / self.batch_iters as f64);
        }
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..4 {
            std::hint::black_box(routine(setup()));
        }
        let batches = self.samples.capacity().max(1);
        for _ in 0..batches {
            let inputs: Vec<I> = (0..self.batch_iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                std::hint::black_box(routine(input));
            }
            let ns = start.elapsed().as_nanos() as f64;
            self.samples.push(ns / self.batch_iters as f64);
        }
    }

    fn median_ns(&mut self) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        self.samples.sort_by(|a, b| a.total_cmp(b));
        self.samples[self.samples.len() / 2]
    }
}

fn run_one(id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Calibrate batch size so one batch takes roughly a millisecond.
    let mut probe = Bencher::new(1, 1);
    f(&mut probe);
    let per_iter = probe.median_ns().max(1.0);
    let batch_iters = ((1.0e6 / per_iter) as u64).clamp(1, 100_000);
    let mut b = Bencher::new(batch_iters, sample_size.max(3));
    f(&mut b);
    let ns = b.median_ns();
    if ns >= 1.0e6 {
        println!("{id:<44} {:>12.3} ms/iter", ns / 1.0e6);
    } else if ns >= 1.0e3 {
        println!("{id:<44} {:>12.3} µs/iter", ns / 1.0e3);
    } else {
        println!("{id:<44} {:>12.1} ns/iter", ns);
    }
}

#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, 10, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("# group: {name}");
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{id}", self.name);
        run_one(&full, self.sample_size, &mut f);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
