//! Offline stand-in for `proptest` covering the surface this workspace
//! uses: the `proptest!` macro with a `#![proptest_config(..)]` header,
//! `prop_assert!`/`prop_assert_eq!`, integer/float range strategies,
//! `proptest::bool::ANY`, and `proptest::collection::vec`.
//!
//! Inputs are sampled deterministically (seeded from the test's module
//! path and name) so failures reproduce across runs. There is no
//! shrinking: a failing case panics with the assertion message, which in
//! this workspace's tests always embeds the generating seed.

/// Runner configuration; only `cases` is consulted.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

pub mod test_runner {
    /// Deterministic splitmix64 stream seeded from a test identifier.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_name(name: &str) -> TestRng {
            // FNV-1a over the test path gives every test its own stream.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of values for one macro-bound variable.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty strategy range");
                    let span = (end as i128 - start as i128 + 1) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (start as i128 + v as i128) as $t
                }
            }
        )*};
    }

    impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    /// Uniform `bool` (see [`crate::bool::ANY`]).
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod bool {
    /// `proptest::bool::ANY` — either boolean with equal probability.
    pub const ANY: crate::strategy::AnyBool = crate::strategy::AnyBool;
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct VecStrategy<S> {
        elem: S,
        len: ::std::ops::Range<usize>,
    }

    /// `proptest::collection::vec(elem, len_range)`.
    pub fn vec<S: Strategy>(elem: S, len: ::std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig};
}

/// The test-definition macro. Each inner function is expanded to a normal
/// `#[test]` that samples its bound variables `cases` times.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for _case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    $body
                }
            }
        )+
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )+
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )+
        }
    };
}

/// Assertion macro; without shrinking this is a plain `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Ranges and collections stay in bounds.
        #[test]
        fn sampling_in_bounds(
            x in 0usize..8,
            y in 1u64..10_000,
            f in 0.25f64..0.75,
            b in crate::bool::ANY,
            v in crate::collection::vec(0i64..3, 1..40),
        ) {
            prop_assert!(x < 8);
            prop_assert!((1..10_000).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
            let _ = b;
            prop_assert!(!v.is_empty() && v.len() < 40);
            prop_assert!(v.iter().all(|e| (0..3).contains(e)));
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::from_name("t");
        let mut b = crate::test_runner::TestRng::from_name("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
