//! Offline stand-in for the `rand` crate covering the surface this
//! workspace uses: `rngs::StdRng` (xoshiro256++ seeded via splitmix64),
//! `SeedableRng::seed_from_u64`, and the `RngExt` sampling methods
//! `random::<f64>()` and `random_range(..)` over integer ranges.
//!
//! The generators are deterministic for a given seed — the only property
//! the synthetic-app generator and noise models rely on. Range sampling
//! uses simple modulo reduction; the negligible modulo bias is irrelevant
//! for test-input generation.

/// Types constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Minimal core trait: a source of uniform 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — the default deterministic generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state is degenerate; splitmix64 cannot produce four
            // zero words from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng as DefaultRng;

/// A distribution the generator can sample from (`rng.random()`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by `rng.random_range(..)`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for ::std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for ::std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for ::std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The sampling surface (`rand 0.9`-style method names).
pub trait RngExt: RngCore {
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: i64 = rng.random_range(0..3i64);
            assert!((0..3).contains(&v));
            let u: usize = rng.random_range(1..=2usize);
            assert!((1..=2).contains(&u));
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    use super::rngs::StdRng;
}
