//! A minimal JSON document model for the offline serde stand-in.
//!
//! The real workspace dependency would be `serde_json`; with no registry
//! access the bench harness needs *some* machine-readable wire format, so
//! the stand-in grows the subset it uses: a [`Value`] tree, a renderer
//! (compact and pretty, RFC 8259 escaping), and a recursive-descent parser.
//! Objects preserve insertion order so reports diff cleanly across runs.
//!
//! Non-finite numbers have no JSON representation; they render as `null`
//! (the same choice `serde_json` makes for `f64::NAN` under
//! `arbitrary_precision = off` semantics of lossy float handling).

use std::fmt::Write as _;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    /// Key/value pairs in insertion order (deliberately not a map: report
    /// fields keep their authored order, and duplicate detection is the
    /// producer's job).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object constructor from an ordered field list.
    pub fn obj(fields: Vec<(&str, Value)>) -> Value {
        Value::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Field lookup on an object (`None` on non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Integral numbers strictly inside f64's gap-free integer range
    /// (|n| < 2⁵³) — what the service wire format carries parameter values
    /// as. From 2⁵³ on, written integers may already have been rounded to a
    /// neighboring double by the time they parse (9007199254740993 parses
    /// to 9007199254740992.0), so the whole region — boundary included — is
    /// rejected rather than ever handing back a silently altered value.
    pub fn as_i64(&self) -> Option<i64> {
        const EXACT: f64 = 9007199254740992.0; // 2^53
        match self {
            Value::Num(n) if n.fract() == 0.0 && n.abs() < EXACT => Some(*n as i64),
            _ => None,
        }
    }

    /// Number constructor for an integer (the wire format stores all
    /// numbers as f64). The caller must stay strictly inside f64's
    /// gap-free range |n| < 2⁵³ — the same contract [`Value::as_i64`]
    /// enforces on the way out; beyond it the value would round silently,
    /// so this is checked in debug builds.
    pub fn int(n: i64) -> Value {
        debug_assert!(
            n.unsigned_abs() < 1u64 << 53,
            "Value::int({n}) is outside f64's gap-free integer range"
        );
        Value::Num(n as f64)
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, None, 0);
        s
    }

    /// Two-space-indented rendering (what the bench reports check in).
    pub fn render_pretty(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, Some(2), 0);
        s.push('\n');
        s
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(n) => write_num(out, *n),
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d)
                })
            }
            Value::Obj(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i, d| {
                    let (k, v) = &fields[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, d)
                })
            }
        }
    }

    /// Parse a JSON document. Exactly one top-level value is accepted;
    /// trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Value, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/Infinity
    } else if n.fract() == 0.0 && n.abs() < 1e15 {
        write!(out, "{}", n as i64).unwrap();
    } else {
        // `{}` on f64 is the shortest roundtrip representation.
        write!(out, "{n}").unwrap();
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32).unwrap(),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

/// Parse failure: byte offset plus a short message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: decode when a high surrogate
                            // is followed by `\uXXXX` low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 1; // now on the 'u'
                                    let lo = self.hex4()?;
                                    if (0xDC00..0xE000).contains(&lo) {
                                        char::from_u32(
                                            0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00),
                                        )
                                    } else {
                                        None // high surrogate not followed by a low one
                                    }
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            s.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid; copy the full encoded char).
                    let rest = &self.bytes[self.pos..];
                    let c = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8"))?
                        .chars()
                        .next()
                        .unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Read the 4 hex digits after `\u` (cursor on the `u`).
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let start = self.pos + 1;
        let digits = self
            .bytes
            .get(start..start + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let text = std::str::from_utf8(digits).map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = start + 4; // cursor one past the last digit
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v = Value::obj(vec![
            ("schema", Value::Num(1.0)),
            ("name", Value::str("bench \"quick\"\n")),
            ("ok", Value::Bool(true)),
            ("none", Value::Null),
            (
                "xs",
                Value::Arr(vec![Value::Num(1.5), Value::Num(-2e-3), Value::Num(3.0)]),
            ),
            ("empty", Value::Arr(vec![])),
        ]);
        for text in [v.render(), v.render_pretty()] {
            assert_eq!(Value::parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Value::Num(42.0).render(), "42");
        assert_eq!(Value::Num(-7.0).render(), "-7");
        assert_eq!(Value::Num(0.5).render(), "0.5");
    }

    #[test]
    fn non_finite_renders_null() {
        assert_eq!(Value::Num(f64::NAN).render(), "null");
        assert_eq!(Value::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn accessors() {
        let v = Value::parse(r#"{"a": 3, "b": "x", "c": [true], "d": 2.5}"#).unwrap();
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("b").and_then(Value::as_str), Some("x"));
        assert_eq!(v.get("c").and_then(Value::as_arr).map(|a| a.len()), Some(1));
        assert_eq!(v.get("d").and_then(Value::as_f64), Some(2.5));
        assert_eq!(v.get("d").and_then(Value::as_u64), None);
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn as_i64_accepts_integral_doubles_only() {
        assert_eq!(Value::int(-12).as_i64(), Some(-12));
        assert_eq!(
            Value::parse("-9007199254740991").unwrap().as_i64(),
            Some(-9007199254740991)
        );
        assert_eq!(Value::Num(2.5).as_i64(), None);
        assert_eq!(Value::str("3").as_i64(), None);
        // From 2^53 on the doubles have gaps: "9007199254740993" parses to
        // the rounded neighbor 2^53, so the region is rejected — boundary
        // included — rather than ever returning a silently altered value.
        assert_eq!(Value::parse("9007199254740993").unwrap().as_i64(), None);
        assert_eq!(Value::parse("9007199254740992").unwrap().as_i64(), None);
        assert_eq!(Value::Num(2f64.powi(54)).as_i64(), None);
        assert_eq!(Value::Num(2f64.powi(63)).as_i64(), None);
        assert_eq!(Value::Num(f64::NAN).as_i64(), None);
    }

    #[test]
    fn escapes_and_unicode() {
        let v = Value::parse(r#""tab\t nl\n quote\" back\\ eur€ pair😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "tab\t nl\n quote\" back\\ eur€ pair😀");
        // And the renderer escapes control characters back out.
        let rendered = Value::str("a\u{1}b").render();
        assert_eq!(rendered, "\"a\\u0001b\"");
    }

    #[test]
    fn parse_errors_carry_position() {
        for bad in ["{", "[1,]", "tru", "\"abc", "1 2", "{\"a\" 1}", ""] {
            assert!(Value::parse(bad).is_err(), "{bad:?} should fail");
        }
        // Broken surrogate pairs error instead of panicking: a lone high
        // surrogate, and a high surrogate followed by a non-low escape.
        for bad in [r#""\uD800""#, r#""\uD800A""#, r#""\uD800\u0041""#] {
            assert!(Value::parse(bad).is_err(), "{bad:?} should fail");
        }
        // And a well-formed pair still decodes.
        assert_eq!(
            Value::parse(r#""\uD83D\uDE00""#).unwrap().as_str(),
            Some("😀")
        );
        let err = Value::parse("[1, }").unwrap_err();
        assert_eq!(err.offset, 4);
    }

    #[test]
    fn nested_structures() {
        let text = r#"{"scenarios":[{"name":"fig3","metrics":{"overhead_pct":4.92}}]}"#;
        let v = Value::parse(text).unwrap();
        let first = &v.get("scenarios").unwrap().as_arr().unwrap()[0];
        assert_eq!(first.get("name").unwrap().as_str(), Some("fig3"));
        assert_eq!(
            first
                .get("metrics")
                .unwrap()
                .get("overhead_pct")
                .unwrap()
                .as_f64(),
            Some(4.92)
        );
        assert_eq!(v.render(), text);
    }
}
