//! Offline stand-in for the `serde` facade. Provides the derive macros (as
//! no-ops) and empty marker traits so `use serde::{Deserialize, Serialize}`
//! and `#[derive(Serialize, Deserialize)]` compile without crates.io, plus
//! a minimal [`json`] document model (the `serde_json` subset the bench
//! reports need: a value tree, renderer, and parser).

pub mod json;

pub use serde_derive_stub::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (never implemented by the
/// no-op derive; present so trait-position uses would still name-resolve).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}
