//! No-op `Serialize` / `Deserialize` derive macros. The workspace derives
//! the serde traits for forward compatibility but never serializes, so the
//! derives may expand to nothing. `attributes(serde)` keeps field-level
//! `#[serde(...)]` annotations (e.g. `#[serde(skip)]`) legal.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
