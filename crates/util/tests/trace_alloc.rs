//! The "zero cost when disabled" claim, enforced: with tracing off, the
//! instrumentation entry points must not allocate — not for the span
//! guard, and not for the lazy label closures (which must not even run).
//!
//! A counting global allocator makes the check exact. This test binary
//! never enables tracing, so the count is deterministic; the functional
//! trace tests live in `trace.rs` (a different binary, hence a different
//! allocator) to keep the two concerns isolated.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn disabled_tracing_allocates_nothing() {
    use pt_util::trace;

    assert!(!trace::enabled(), "this test binary never enables tracing");

    // Warm up thread-local machinery outside the measured window (the
    // first TLS touch may allocate; a disabled span must not touch TLS
    // at all, but keep the measurement honest regardless).
    {
        let _g = trace::span("warmup", "warmup");
        trace::event("warmup", "warmup");
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..1_000 {
        let _g = trace::span("taint", "decode");
        let _h = trace::span_with("taint", || {
            panic!("label closure must not run when tracing is disabled")
        });
        trace::event("unit", "hit");
        trace::event_with("unit", || {
            panic!("event closure must not run when tracing is disabled")
        });
        trace::record_span(1, 0, "server", "queue", 0, 10);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "disabled-mode instrumentation must be allocation-free"
    );

    // And the context-propagation pair is equally free.
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..1_000 {
        let ctx = trace::current_context();
        let _g = ctx.adopt();
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "disabled-mode context is allocation-free"
    );
}
