//! Functional trace correctness: span nesting and balance — through
//! `parallel_map` fan-out and across worker panics — plus the JSON
//! exports round-tripping through the vendored parser.
//!
//! These tests share one process (and therefore one global sink), so
//! each works strictly within its own trace id via `take_trace`; none of
//! them calls `drain_all`, which would race the others. The
//! disabled-mode zero-allocation check lives in `trace_alloc.rs` (its
//! counting allocator needs a binary that never enables tracing).

use pt_util::trace::{self, SpanEvent};
use serde::json::Value;

/// A traced request: enable scoped, adopt a fresh trace id, run `f`
/// under a root span named `root`, and return the trace's events.
fn traced(root: &'static str, f: impl FnOnce()) -> (u64, Vec<SpanEvent>) {
    let _on = trace::enable_scoped();
    let trace_id = trace::next_trace_id();
    let _ctx = trace::set_thread_trace(trace_id);
    {
        let _root = trace::span("test", root);
        f();
    }
    (trace_id, trace::take_trace(trace_id))
}

fn find<'e>(events: &'e [SpanEvent], name: &str) -> &'e SpanEvent {
    events
        .iter()
        .find(|e| e.name == name)
        .unwrap_or_else(|| panic!("span {name} missing from {events:?}"))
}

#[test]
fn spans_nest_and_balance_in_a_single_thread() {
    let (trace_id, events) = traced("root", || {
        let _outer = trace::span("stage", "outer");
        {
            let _inner = trace::span_with("stage", || "inner".to_string());
        }
        trace::event("stage", "tick");
    });

    assert_eq!(events.len(), 4, "{events:?}");
    let root = find(&events, "root");
    let outer = find(&events, "outer");
    let inner = find(&events, "inner");
    let tick = find(&events, "tick");
    assert_eq!(root.parent, 0);
    assert_eq!(outer.parent, root.id);
    assert_eq!(inner.parent, outer.id);
    assert_eq!(tick.parent, outer.id, "instant event under the open span");
    assert!(events.iter().all(|e| e.trace_id == trace_id));
    // Temporal nesting: child intervals inside parent intervals.
    assert!(outer.start_nanos >= root.start_nanos && outer.end_nanos <= root.end_nanos);
    assert!(inner.start_nanos >= outer.start_nanos && inner.end_nanos <= outer.end_nanos);
    assert_eq!(tick.duration_nanos(), 0, "events are zero-duration");
}

#[test]
fn parallel_map_workers_nest_under_the_callers_open_span() {
    let items: Vec<usize> = (0..16).collect();
    let (trace_id, events) = traced("root", || {
        let fanout = trace::span("test", "fanout");
        let fanout_id = fanout.id().expect("tracing is on");
        let out = pt_util::parallel_map(&items, 4, |&i| {
            let _s = trace::span_with("work", || format!("item-{i}"));
            i * 2
        });
        assert_eq!(out, (0..16).map(|i| i * 2).collect::<Vec<_>>());
        drop(fanout);
        // Worker threads have exited (scoped threads), so their buffers
        // are already flushed; everything must be parented at `fanout`.
        let _ = fanout_id;
    });

    let fanout = find(&events, "fanout");
    let workers: Vec<&SpanEvent> = events
        .iter()
        .filter(|e| e.name.starts_with("item-"))
        .collect();
    assert_eq!(workers.len(), items.len(), "one span per item: {events:?}");
    for w in &workers {
        assert_eq!(
            w.parent, fanout.id,
            "worker span must nest under the caller's open span"
        );
        assert_eq!(w.trace_id, trace_id, "worker span joins the caller's trace");
        assert!(w.start_nanos >= fanout.start_nanos && w.end_nanos <= fanout.end_nanos);
    }
    // More than one distinct worker thread actually participated.
    let caller_thread = fanout.thread;
    assert!(
        workers.iter().any(|w| w.thread != caller_thread),
        "fan-out must run on worker threads"
    );
}

#[test]
fn worker_panic_leaves_the_trace_balanced() {
    let items: Vec<usize> = (0..32).collect();
    let (_trace_id, events) = traced("root", || {
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pt_util::parallel_map(&items, 4, |&i| {
                let _s = trace::span_with("work", || format!("worker-{i}"));
                if i == 3 {
                    panic!("worker boom");
                }
                i
            })
        }));
        assert!(caught.is_err(), "the worker panic must propagate");
        // The thread's span stack must be intact after the unwind: a new
        // span parents at root, not at some leaked worker frame.
        let _after = trace::span("test", "after-panic");
    });

    let root = find(&events, "root");
    let after = find(&events, "after-panic");
    assert_eq!(
        after.parent, root.id,
        "span stack must be balanced after a worker panic: {events:?}"
    );
    // The panicking worker's own span was closed by unwinding — every
    // recorded event has an end (take_trace only ever returns completed
    // spans, so presence is the check) and nests under root.
    let boom = find(&events, "worker-3");
    assert_eq!(boom.trace_id, root.trace_id);
    assert!(boom.end_nanos >= boom.start_nanos);
}

#[test]
fn report_builds_the_nested_tree() {
    let (_trace_id, events) = traced("root", || {
        let _a = trace::span("stage", "a");
        let _b = trace::span("stage", "b");
    });
    let tree = trace::report(&events);
    let roots = tree.as_arr().expect("report returns an array of roots");
    assert_eq!(roots.len(), 1, "{}", tree.render());
    let root = &roots[0];
    assert_eq!(root.get("name").and_then(Value::as_str), Some("root"));
    let children = root.get("children").and_then(Value::as_arr).unwrap();
    assert_eq!(children.len(), 1);
    let a = &children[0];
    assert_eq!(a.get("name").and_then(Value::as_str), Some("a"));
    let a_children = a.get("children").and_then(Value::as_arr).unwrap();
    assert_eq!(a_children.len(), 1);
    assert_eq!(a_children[0].get("name").and_then(Value::as_str), Some("b"));
    assert!(a.get("dur_us").and_then(Value::as_f64).unwrap() >= 0.0);
}

#[test]
fn chrome_export_round_trips_through_the_vendored_parser() {
    let (trace_id, events) = traced("root", || {
        let _a = trace::span("taint", "decode");
        trace::event("unit", "hit");
    });
    assert!(!events.is_empty());

    let rendered = trace::chrome_trace(&events).render();
    let parsed = Value::parse(&rendered).expect("chrome export must be valid JSON");
    let arr = parsed.as_arr().expect("trace_event array format");
    assert_eq!(arr.len(), events.len());
    for (ev, obj) in events.iter().zip(arr) {
        assert_eq!(obj.get("ph").and_then(Value::as_str), Some("X"));
        assert_eq!(
            obj.get("name").and_then(Value::as_str),
            Some(ev.name.as_ref())
        );
        assert_eq!(obj.get("cat").and_then(Value::as_str), Some(ev.cat));
        assert_eq!(obj.get("pid").and_then(Value::as_u64), Some(1));
        let ts = obj.get("ts").and_then(Value::as_f64).unwrap();
        let dur = obj.get("dur").and_then(Value::as_f64).unwrap();
        assert!((ts - ev.start_nanos as f64 / 1e3).abs() < 1e-6);
        assert!((dur - ev.duration_nanos() as f64 / 1e3).abs() < 1e-6);
        let args = obj.get("args").expect("args object");
        assert_eq!(args.get("trace").and_then(Value::as_u64), Some(trace_id));
    }
}

#[test]
fn take_trace_isolates_concurrent_trace_ids() {
    let _on = trace::enable_scoped();
    let id_a = trace::next_trace_id();
    let id_b = trace::next_trace_id();
    {
        let _ctx = trace::set_thread_trace(id_a);
        let _s = trace::span("test", "a-side");
    }
    {
        let _ctx = trace::set_thread_trace(id_b);
        let _s = trace::span("test", "b-side");
    }
    let a = trace::take_trace(id_a);
    assert_eq!(a.len(), 1);
    assert_eq!(a[0].name, "a-side");
    let b = trace::take_trace(id_b);
    assert_eq!(b.len(), 1);
    assert_eq!(b[0].name, "b-side");
    assert!(trace::take_trace(id_a).is_empty(), "take_trace removes");
}

#[test]
fn stage_totals_aggregate_by_name() {
    let (_trace_id, events) = traced("root", || {
        for _ in 0..3 {
            let _d = trace::span("taint", "decode");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    });
    let totals = trace::stage_totals_ms(&events);
    let decode = totals
        .iter()
        .find(|(name, _)| name == "decode")
        .expect("decode stage present");
    assert!(decode.1 >= 3.0, "three 1ms spans sum: {totals:?}");
    // Sorted descending; root (which contains the sleeps) comes first.
    assert_eq!(totals[0].0, "root");
}

#[test]
fn record_span_attaches_out_of_band_intervals() {
    let _on = trace::enable_scoped();
    let trace_id = trace::next_trace_id();
    let _ctx = trace::set_thread_trace(trace_id);
    let parent_id;
    {
        let root = trace::span("server", "request");
        parent_id = root.id().unwrap();
        trace::record_span(trace_id, parent_id, "server", "queue", 100, 250);
    }
    let events = trace::take_trace(trace_id);
    let queue = find(&events, "queue");
    assert_eq!(queue.parent, parent_id);
    assert_eq!(queue.duration_nanos(), 150);
}
