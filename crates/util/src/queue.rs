//! A bounded multi-producer multi-consumer queue on `Mutex` + `Condvar`.
//!
//! The server's worker pool needs exactly this shape: an acceptor thread
//! pushes work (blocking when the pool is saturated — backpressure instead
//! of unbounded growth) and a fixed set of workers pop until the queue is
//! closed and drained. `std::sync::mpsc::sync_channel` is bounded but
//! single-consumer; this queue is shareable by reference from any number
//! of threads.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded FIFO queue, shareable across threads by reference.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    capacity: usize,
    /// Signaled when an item is taken (room for producers).
    not_full: Condvar,
    /// Signaled when an item arrives or the queue closes (work for
    /// consumers, or permission to exit).
    not_empty: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            capacity: capacity.max(1),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Block until there is room, then enqueue. Returns `Err(item)` if the
    /// queue was closed (the item is handed back to the caller).
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().unwrap();
        while inner.items.len() >= self.capacity && !inner.closed {
            inner = self.not_full.wait(inner).unwrap();
        }
        if inner.closed {
            return Err(item);
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Block until an item is available or the queue is closed *and*
    /// drained. `None` means no item will ever arrive again — the consumer
    /// should exit.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(item) = inner.items.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).unwrap();
        }
    }

    /// Close the queue: producers fail fast, consumers drain what is left
    /// and then receive `None`.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Items currently waiting (racy by nature; for stats only).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::BoundedQueue;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fifo_within_capacity() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert!(q.is_empty());
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = BoundedQueue::new(4);
        q.push("a").unwrap();
        q.close();
        assert_eq!(q.push("b"), Err("b"));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn producers_block_on_a_full_queue_until_consumers_take() {
        let q = BoundedQueue::new(1);
        let consumed = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                // Second push blocks until the consumer below pops.
                q.push(10).unwrap();
                q.push(20).unwrap();
                q.close();
            });
            scope.spawn(|| {
                while let Some(_item) = q.pop() {
                    consumed.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
            });
        });
        assert_eq!(consumed.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn many_producers_many_consumers_deliver_everything_once() {
        let q = BoundedQueue::new(3);
        let total = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for p in 0..4 {
                let q = &q;
                scope.spawn(move || {
                    for i in 0..25 {
                        q.push(p * 100 + i).unwrap();
                    }
                });
            }
            for _ in 0..3 {
                let q = &q;
                let total = &total;
                scope.spawn(move || {
                    while q.pop().is_some() {
                        total.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            // Close once everything is delivered so the consumers exit.
            let q = &q;
            let total = &total;
            scope.spawn(move || loop {
                if total.load(Ordering::Relaxed) >= 100 && q.is_empty() {
                    q.close();
                    break;
                }
                std::thread::yield_now();
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 100);
    }
}
