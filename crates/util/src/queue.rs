//! A bounded multi-producer multi-consumer queue on `Mutex` + `Condvar`.
//!
//! The server's worker pool needs exactly this shape: an acceptor thread
//! pushes work (blocking when the pool is saturated — backpressure instead
//! of unbounded growth) and a fixed set of workers pop until the queue is
//! closed and drained. `std::sync::mpsc::sync_channel` is bounded but
//! single-consumer; this queue is shareable by reference from any number
//! of threads.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Why a [`BoundedQueue::try_push`] declined an item. Both variants hand
/// the item back so the caller can respond to its originator (e.g. an
/// `overloaded` envelope for a shed connection).
#[derive(Debug, PartialEq, Eq)]
pub enum TryPushError<T> {
    /// The queue is at capacity right now — shed or retry later.
    Full(T),
    /// The queue is closed — no item will ever be accepted again.
    Closed(T),
}

impl<T> TryPushError<T> {
    /// The declined item, regardless of why.
    pub fn into_item(self) -> T {
        match self {
            TryPushError::Full(item) | TryPushError::Closed(item) => item,
        }
    }
}

/// A bounded FIFO queue, shareable across threads by reference.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    capacity: usize,
    /// Signaled when an item is taken (room for producers).
    not_full: Condvar,
    /// Signaled when an item arrives or the queue closes (work for
    /// consumers, or permission to exit).
    not_empty: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            capacity: capacity.max(1),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Block until there is room, then enqueue. Returns `Err(item)` if the
    /// queue was closed (the item is handed back to the caller).
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().unwrap();
        while inner.items.len() >= self.capacity && !inner.closed {
            inner = self.not_full.wait(inner).unwrap();
        }
        if inner.closed {
            return Err(item);
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Enqueue without blocking: admission control's primitive. A full
    /// queue returns [`TryPushError::Full`] *immediately* instead of
    /// parking the caller — the producer (e.g. a server's accept loop)
    /// stays responsive and decides what to do with the shed item.
    pub fn try_push(&self, item: T) -> Result<(), TryPushError<T>> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(TryPushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(TryPushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Block until an item is available or the queue is closed *and*
    /// drained. `None` means no item will ever arrive again — the consumer
    /// should exit.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(item) = inner.items.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).unwrap();
        }
    }

    /// Close the queue: producers fail fast, consumers drain what is left
    /// and then receive `None`.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Items currently waiting (racy by nature; for stats only).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::{BoundedQueue, TryPushError};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fifo_within_capacity() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert!(q.is_empty());
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = BoundedQueue::new(4);
        q.push("a").unwrap();
        q.close();
        assert_eq!(q.push("b"), Err("b"));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn producers_block_on_a_full_queue_until_consumers_take() {
        let q = BoundedQueue::new(1);
        let consumed = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                // Second push blocks until the consumer below pops.
                q.push(10).unwrap();
                q.push(20).unwrap();
                q.close();
            });
            scope.spawn(|| {
                while let Some(_item) = q.pop() {
                    consumed.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
            });
        });
        assert_eq!(consumed.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn try_push_sheds_on_a_full_queue_without_blocking() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        // Full: the item comes straight back, no parking.
        assert_eq!(q.try_push(3), Err(TryPushError::Full(3)));
        assert_eq!(q.len(), 2);
        // Draining one slot readmits.
        assert_eq!(q.pop(), Some(1));
        q.try_push(4).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(4));
    }

    #[test]
    fn try_push_on_a_closed_queue_reports_closed_even_when_full() {
        let q = BoundedQueue::new(1);
        q.try_push("queued").unwrap();
        q.close();
        // Close wins over full: the producer must learn the queue is gone
        // for good, not keep retrying a "temporarily" full queue.
        let err = q.try_push("late").unwrap_err();
        assert_eq!(err, TryPushError::Closed("late"));
        assert_eq!(err.into_item(), "late");
        // The queued item still drains; then consumers see the close.
        assert_eq!(q.pop(), Some("queued"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_while_shedding_never_loses_or_duplicates_items() {
        // Producers shed against a tiny queue while a consumer drains and
        // the queue closes mid-flight: every accepted item is delivered
        // exactly once, every shed item is handed back.
        let q = BoundedQueue::new(2);
        let delivered = AtomicUsize::new(0);
        let accepted = AtomicUsize::new(0);
        let shed = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let (q, accepted, shed) = (&q, &accepted, &shed);
                scope.spawn(move || {
                    for i in 0..200 {
                        match q.try_push(i) {
                            Ok(()) => {
                                accepted.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(TryPushError::Full(_)) => {
                                shed.fetch_add(1, Ordering::Relaxed);
                                std::thread::yield_now();
                            }
                            Err(TryPushError::Closed(_)) => break,
                        }
                    }
                });
            }
            let (q, delivered) = (&q, &delivered);
            scope.spawn(move || {
                // Drain roughly half, then close mid-stream; the contract
                // is that the already-accepted remainder still drains.
                for _ in 0..100 {
                    if q.pop().is_none() {
                        break;
                    }
                    delivered.fetch_add(1, Ordering::Relaxed);
                }
                q.close();
                while q.pop().is_some() {
                    delivered.fetch_add(1, Ordering::Relaxed);
                }
            });
        });
        assert_eq!(
            delivered.load(Ordering::Relaxed),
            accepted.load(Ordering::Relaxed),
            "every accepted item is delivered exactly once"
        );
        assert!(shed.load(Ordering::Relaxed) > 0, "the tiny queue must shed");
    }

    #[test]
    fn fifo_is_preserved_under_mixed_push_and_try_push() {
        let q = BoundedQueue::new(8);
        q.push(1).unwrap();
        q.try_push(2).unwrap();
        q.push(3).unwrap();
        q.try_push(4).unwrap();
        for expect in 1..=4 {
            assert_eq!(q.pop(), Some(expect));
        }
        // Shed items leave no hole in the order.
        let q = BoundedQueue::new(2);
        q.push(10).unwrap();
        q.try_push(11).unwrap();
        assert!(matches!(q.try_push(12), Err(TryPushError::Full(12))));
        assert_eq!(q.pop(), Some(10));
        q.try_push(13).unwrap();
        assert_eq!(q.pop(), Some(11));
        assert_eq!(q.pop(), Some(13));
    }

    #[test]
    fn many_producers_many_consumers_deliver_everything_once() {
        let q = BoundedQueue::new(3);
        let total = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for p in 0..4 {
                let q = &q;
                scope.spawn(move || {
                    for i in 0..25 {
                        q.push(p * 100 + i).unwrap();
                    }
                });
            }
            for _ in 0..3 {
                let q = &q;
                let total = &total;
                scope.spawn(move || {
                    while q.pop().is_some() {
                        total.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            // Close once everything is delivered so the consumers exit.
            let q = &q;
            let total = &total;
            scope.spawn(move || loop {
                if total.load(Ordering::Relaxed) >= 100 && q.is_empty() {
                    q.close();
                    break;
                }
                std::thread::yield_now();
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 100);
    }
}
