//! Small utilities shared across the workspace.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Map `f` over `items` on up to `max_workers` scoped threads, preserving
/// input order. With one worker (or one item) this degrades to a plain
/// sequential map — no threads are spawned.
///
/// Workers pull indices from a shared atomic counter, so uneven item costs
/// balance automatically. Panics in `f` propagate (the scope re-raises).
pub fn parallel_map<T, R, F>(items: &[T], max_workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = max_workers.max(1).min(items.len().max(1));
    if workers <= 1 {
        return items.iter().map(f).collect();
    }

    let results: Vec<Mutex<Option<R>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let next = &next;
            let results = &results;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                *results[i].lock().unwrap() = Some(f(&items[i]));
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker completed this slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::parallel_map;

    #[test]
    fn preserves_order_and_maps_everything() {
        let items: Vec<usize> = (0..100).collect();
        for workers in [1, 2, 8, 200] {
            let out = parallel_map(&items, workers, |&x| x * 2);
            assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<usize> = parallel_map(&[] as &[usize], 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn uneven_costs_still_complete() {
        let items: Vec<u64> = vec![30, 1, 1, 1, 20, 1, 1, 10];
        let out = parallel_map(&items, 4, |&ms| {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            ms
        });
        assert_eq!(out, items);
    }
}
