//! Small utilities shared across the workspace.
//!
//! # Tracing the pipeline
//!
//! [`trace`] is the workspace's structured tracing layer: std-only,
//! thread-local span stacks, a bounded global sink, and **zero cost when
//! disabled** (one relaxed atomic load per call site, no allocation).
//! Every pipeline layer is instrumented — the static stage
//! (`session/static_stage`, `taint/decode`, `taint/passes`, the
//! individual `pass/...` spans, per-function `unit/compute:<fn>` spans
//! with cache-hit events, `analysis/classify`), execution
//! (`session/exec` with per-function self-time children), model fitting
//! (`extrap/fit`), and the server path (`server/request`,
//! `server/queue_wait`).
//!
//! Three ways to turn it on:
//!
//! * [`trace::enable_scoped`] — refcounted guard; what the server's
//!   v1.3 `trace` method and `--slow-request-ms` use per request.
//! * [`trace::force_enable`] — pin it on for the whole process; what
//!   `pt-server --trace-out` and `bench_all --trace-out` use, paired
//!   with [`trace::drain_all`] + [`trace::chrome_trace`] to export
//!   Chrome `trace_event` JSON for `chrome://tracing` / Perfetto.
//! * [`trace::set_thread_trace`] — bind a request-scoped trace id to
//!   the current thread; [`trace::TraceContext`] carries it across
//!   [`parallel_map`] workers, and [`trace::take_trace`] collects one
//!   request's spans without disturbing concurrent traces.
//!
//! [`trace::report`] renders a span slice as a nested JSON tree;
//! [`trace::stage_totals_ms`] sums durations by span name for quick
//! per-stage attribution.

pub mod metrics;
mod queue;
pub mod trace;

pub use queue::{BoundedQueue, TryPushError};

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Run `f` and return its result together with the elapsed wall time in
/// seconds. The bench driver wraps every scenario in this.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// A restartable wall-clock stopwatch for accumulating time across
/// non-contiguous code regions (e.g. the model-search portions of a
/// scenario, excluding its sweeps).
pub struct Stopwatch {
    accumulated: f64,
    started: Option<Instant>,
}

impl Stopwatch {
    /// A stopped stopwatch at zero.
    pub fn new() -> Stopwatch {
        Stopwatch {
            accumulated: 0.0,
            started: None,
        }
    }

    /// Start (or restart) counting. Starting a running stopwatch is a no-op.
    pub fn start(&mut self) {
        if self.started.is_none() {
            self.started = Some(Instant::now());
        }
    }

    /// Stop counting, folding the running interval into the total.
    pub fn stop(&mut self) {
        if let Some(t) = self.started.take() {
            self.accumulated += t.elapsed().as_secs_f64();
        }
    }

    /// Total seconds counted so far (includes a running interval).
    pub fn elapsed(&self) -> f64 {
        self.accumulated
            + self
                .started
                .map(|t| t.elapsed().as_secs_f64())
                .unwrap_or(0.0)
    }
}

impl Default for Stopwatch {
    fn default() -> Stopwatch {
        Stopwatch::new()
    }
}

/// The human-readable message of a caught panic payload (`panic!` with a
/// string literal or a formatted message covers essentially all of them);
/// `fallback` for exotic payload types.
pub fn panic_message(payload: &(dyn std::any::Any + Send), fallback: &str) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| fallback.to_string())
}

/// Map `f` over `items` on up to `max_workers` scoped threads, preserving
/// input order. With one worker (or one item) this degrades to a plain
/// sequential map — no threads are spawned.
///
/// Workers pull indices from a shared atomic counter, so uneven item costs
/// balance automatically. A panic in `f` is caught on the worker, remaining
/// work is abandoned, and the first panic's original payload is re-raised
/// exactly once on the calling thread — never a `PoisonError` double-panic
/// from the result slots.
///
/// When tracing is enabled ([`trace::enabled`]), each worker adopts the
/// caller's trace context, so spans opened inside `f` land in the
/// caller's trace, nested under its currently open span.
pub fn parallel_map<T, R, F>(items: &[T], max_workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = max_workers.max(1).min(items.len().max(1));
    if workers <= 1 {
        return items.iter().map(f).collect();
    }

    let ctx = trace::current_context();
    let results: Vec<Mutex<Option<R>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let next = &next;
            let results = &results;
            let panic_payload = &panic_payload;
            let f = &f;
            scope.spawn(move || {
                let _trace_ctx = ctx.adopt();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&items[i]))) {
                        Ok(r) => *results[i].lock().unwrap() = Some(r),
                        Err(payload) => {
                            // First panic wins; park the counter past the end so
                            // every worker stops handing out new work.
                            next.store(items.len(), Ordering::Relaxed);
                            panic_payload
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner)
                                .get_or_insert(payload);
                            break;
                        }
                    }
                }
            });
        }
    });
    if let Some(payload) = panic_payload
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
    {
        std::panic::resume_unwind(payload);
    }
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .expect("worker completed this slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::{parallel_map, time, Stopwatch};

    #[test]
    fn time_returns_result_and_nonnegative_duration() {
        let (value, secs) = time(|| 6 * 7);
        assert_eq!(value, 42);
        assert!(secs >= 0.0);
    }

    #[test]
    fn time_measures_sleeps() {
        let ((), secs) = time(|| std::thread::sleep(std::time::Duration::from_millis(15)));
        assert!(secs >= 0.014, "measured {secs}");
    }

    #[test]
    fn stopwatch_accumulates_across_intervals() {
        let mut sw = Stopwatch::new();
        assert_eq!(sw.elapsed(), 0.0);
        sw.start();
        sw.start(); // idempotent
        std::thread::sleep(std::time::Duration::from_millis(10));
        sw.stop();
        let first = sw.elapsed();
        assert!(first >= 0.009, "measured {first}");
        sw.stop(); // stopping twice is fine
        sw.start();
        std::thread::sleep(std::time::Duration::from_millis(10));
        sw.stop();
        assert!(sw.elapsed() >= first + 0.009);
    }

    #[test]
    fn preserves_order_and_maps_everything() {
        let items: Vec<usize> = (0..100).collect();
        for workers in [1, 2, 8, 200] {
            let out = parallel_map(&items, workers, |&x| x * 2);
            assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<usize> = parallel_map(&[] as &[usize], 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn worker_panic_propagates_once_with_its_message() {
        let items: Vec<usize> = (0..64).collect();
        let caught = std::panic::catch_unwind(|| {
            parallel_map(&items, 4, |&x| {
                if x == 7 {
                    panic!("boom at {x}");
                }
                x
            })
        });
        let payload = caught.expect_err("the worker panic must propagate");
        assert_eq!(
            super::panic_message(payload.as_ref(), "missing"),
            "boom at 7"
        );
    }

    #[test]
    fn sequential_fallback_panics_cleanly_too() {
        let items = [1usize];
        let caught = std::panic::catch_unwind(|| {
            parallel_map(&items, 1, |_| -> usize { panic!("sequential boom") })
        });
        assert!(caught.is_err());
    }

    #[test]
    fn uneven_costs_still_complete() {
        let items: Vec<u64> = vec![30, 1, 1, 1, 20, 1, 1, 10];
        let out = parallel_map(&items, 4, |&ms| {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            ms
        });
        assert_eq!(out, items);
    }
}
