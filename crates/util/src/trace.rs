//! Structured pipeline tracing: spans, per-thread ring buffers, and a
//! process-wide sink, with **zero cost when disabled**.
//!
//! The pipeline's operational metrics ([`crate::metrics`]) say *that* a
//! request took 40 ms; this module says *where* those milliseconds went —
//! decode vs passes vs classification vs the taint run vs model fitting —
//! which is exactly the attribution the paper applies to its subject
//! programs, turned on our own pipeline.
//!
//! # Design
//!
//! * **One relaxed atomic load when disabled.** [`enabled`] is an
//!   `AtomicBool` read with `Ordering::Relaxed`; every instrumentation
//!   point checks it first and returns an inert guard without touching
//!   thread-local state or allocating. The lazy variants ([`span_with`],
//!   [`event_with`]) only invoke their label closure when tracing is on,
//!   so a disabled span costs a load and a branch
//!   (`crates/util/tests/trace_alloc.rs` proves the zero-allocation
//!   claim with a counting allocator).
//! * **Thread-local span stacks.** An enabled [`span`] pushes its id onto
//!   the current thread's stack and pops it on guard drop — including
//!   during unwinding, so a panicking worker still balances its spans.
//!   Parentage is the stack top at open time; cross-thread callers
//!   propagate their context explicitly ([`current_context`] /
//!   [`TraceContext::adopt`] — [`crate::parallel_map`] does this for its
//!   workers automatically).
//! * **Bounded buffers, drop-oldest.** Completed spans collect in a
//!   per-thread ring (capacity [`THREAD_BUFFER_CAP`]) and flush to a
//!   process-wide sink (capacity [`SINK_CAP`]) when the thread's stack
//!   empties, the ring fills, or the thread exits. Overflow drops the
//!   *oldest* events and counts them ([`dropped_total`]) — tracing
//!   degrades, it never blocks or grows without bound.
//! * **Monotonic timestamps.** All times are nanoseconds since a lazily
//!   initialized process epoch (`Instant`-based, so wall-clock steps
//!   cannot reorder spans).
//!
//! # Scoped vs forced enablement
//!
//! [`enable_scoped`] turns tracing on for the lifetime of the returned
//! guard (refcounted, so concurrent traced requests compose);
//! [`force_enable`] pins it on for the rest of the process (the
//! `--trace-out` path in `pt-server` and `bench_all`). Per-request
//! isolation comes from *trace ids*: a server request adopts a fresh id
//! ([`next_trace_id`] + [`set_thread_trace`]), every span it opens —
//! including on `parallel_map` workers — inherits that id, and
//! [`take_trace`] extracts exactly that request's events from the sink,
//! leaving concurrent traces untouched.
//!
//! # Exports
//!
//! [`report`] renders a span set as a nested JSON tree (the protocol
//! v1.3 `trace` method's payload); [`chrome_trace`] renders the Chrome
//! `trace_event` array format loadable in `chrome://tracing` / Perfetto.

use serde::json::Value;
use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Per-thread completed-span ring capacity; the oldest event is dropped
/// (and counted) when a thread outruns its flushes.
pub const THREAD_BUFFER_CAP: usize = 8_192;

/// Process-wide sink capacity across all trace ids.
pub const SINK_CAP: usize = 262_144;

static ENABLED: AtomicBool = AtomicBool::new(false);
static FORCED: AtomicBool = AtomicBool::new(false);
static ACTIVE_SCOPES: AtomicU64 = AtomicU64::new(0);
/// Span ids start at 1; 0 is the "no parent" sentinel.
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static SINK: Mutex<VecDeque<SpanEvent>> = Mutex::new(VecDeque::new());

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process trace epoch (saturating at 0 for
/// instants captured before the first trace call initialized it).
pub fn nanos_since_epoch(at: Instant) -> u64 {
    at.checked_duration_since(epoch())
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

fn now_nanos() -> u64 {
    nanos_since_epoch(Instant::now())
}

/// Is tracing on? One relaxed load — the entire cost of a disabled
/// instrumentation point.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A completed span (or instant event, when `end_nanos == start_nanos`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Unique within the process (atomic allocation).
    pub id: u64,
    /// Enclosing span's id; 0 for a root.
    pub parent: u64,
    /// The request-scoped trace this span belongs to; 0 when untraced
    /// (e.g. `--trace-out` background work outside any request).
    pub trace_id: u64,
    /// Stage label, e.g. `"decode"`, `"fuse"`, `"exec"`.
    pub name: Cow<'static, str>,
    /// Layer category, e.g. `"taint"`, `"pass"`, `"server"`.
    pub cat: &'static str,
    /// Nanoseconds since the process trace epoch.
    pub start_nanos: u64,
    pub end_nanos: u64,
    /// Small dense per-thread id (not the OS tid).
    pub thread: u64,
}

impl SpanEvent {
    /// Span duration in nanoseconds.
    pub fn duration_nanos(&self) -> u64 {
        self.end_nanos.saturating_sub(self.start_nanos)
    }
}

struct ThreadLocalTrace {
    thread: u64,
    trace_id: u64,
    stack: Vec<u64>,
    buffer: VecDeque<SpanEvent>,
}

impl ThreadLocalTrace {
    fn new() -> ThreadLocalTrace {
        ThreadLocalTrace {
            thread: NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed),
            trace_id: 0,
            stack: Vec::new(),
            buffer: VecDeque::new(),
        }
    }

    fn push_event(&mut self, ev: SpanEvent) {
        if self.buffer.len() >= THREAD_BUFFER_CAP {
            self.buffer.pop_front();
            DROPPED.fetch_add(1, Ordering::Relaxed);
        }
        self.buffer.push_back(ev);
        // Flush when the thread goes quiescent (its outermost span closed)
        // so `take_trace` on another thread sees a complete picture, or
        // when the ring is half full so a long-running thread streams out.
        if self.stack.is_empty() || self.buffer.len() >= THREAD_BUFFER_CAP / 2 {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        let mut sink = SINK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while sink.len() + self.buffer.len() > SINK_CAP {
            if sink.pop_front().is_none() {
                break;
            }
            DROPPED.fetch_add(1, Ordering::Relaxed);
        }
        sink.extend(self.buffer.drain(..));
    }
}

impl Drop for ThreadLocalTrace {
    fn drop(&mut self) {
        // A worker thread exiting (e.g. a `parallel_map` scope closing)
        // publishes whatever it buffered.
        self.flush();
    }
}

thread_local! {
    static LOCAL: RefCell<ThreadLocalTrace> = RefCell::new(ThreadLocalTrace::new());
}

fn with_local<R>(f: impl FnOnce(&mut ThreadLocalTrace) -> R) -> R {
    LOCAL.with(|l| f(&mut l.borrow_mut()))
}

/// Total events dropped to the bounded buffers since process start.
pub fn dropped_total() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Enablement

/// Keeps tracing enabled while alive; refcounted, so nested/concurrent
/// scopes compose and tracing turns off when the last scope ends (unless
/// [`force_enable`] pinned it on).
pub struct EnableGuard(());

impl Drop for EnableGuard {
    fn drop(&mut self) {
        if ACTIVE_SCOPES.fetch_sub(1, Ordering::SeqCst) == 1 && !FORCED.load(Ordering::SeqCst) {
            ENABLED.store(false, Ordering::SeqCst);
        }
    }
}

/// Enable tracing for the lifetime of the returned guard.
pub fn enable_scoped() -> EnableGuard {
    ACTIVE_SCOPES.fetch_add(1, Ordering::SeqCst);
    ENABLED.store(true, Ordering::SeqCst);
    EnableGuard(())
}

/// Enable tracing for the rest of the process (`--trace-out`).
pub fn force_enable() {
    FORCED.store(true, Ordering::SeqCst);
    ENABLED.store(true, Ordering::SeqCst);
}

// ---------------------------------------------------------------------------
// Trace ids and cross-thread context

/// Allocate a fresh request-scoped trace id (never 0).
pub fn next_trace_id() -> u64 {
    NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed)
}

/// The calling thread's (trace id, innermost open span) — the context a
/// cross-thread child should adopt so its spans land in the same trace,
/// parented under the caller's open span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    pub trace_id: u64,
    pub parent: u64,
}

/// Capture the calling thread's context for propagation to workers.
/// Cheap and meaningful even when tracing is disabled (all zeros).
pub fn current_context() -> TraceContext {
    if !enabled() {
        return TraceContext {
            trace_id: 0,
            parent: 0,
        };
    }
    with_local(|l| TraceContext {
        trace_id: l.trace_id,
        parent: l.stack.last().copied().unwrap_or(0),
    })
}

/// Restores the thread's previous context on drop (see
/// [`TraceContext::adopt`] and [`set_thread_trace`]). A guard created
/// while tracing was disabled is completely inert.
pub struct ContextGuard {
    /// `(previous trace id, whether a synthetic parent frame was pushed)`;
    /// `None` when the adopt was a disabled-mode no-op.
    restore: Option<(u64, bool)>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        let Some((prev_trace, pushed_parent)) = self.restore.take() else {
            return;
        };
        with_local(|l| {
            l.trace_id = prev_trace;
            if pushed_parent {
                l.stack.pop();
            }
            if l.stack.is_empty() {
                l.flush();
            }
        });
    }
}

impl TraceContext {
    /// Adopt this context on the current thread: subsequent spans carry
    /// its trace id and parent under its span. Returns a guard restoring
    /// the previous context. No-op (but still safe) when disabled.
    pub fn adopt(self) -> ContextGuard {
        if !enabled() {
            return ContextGuard { restore: None };
        }
        with_local(|l| {
            let prev_trace = l.trace_id;
            l.trace_id = self.trace_id;
            let pushed_parent = self.parent != 0;
            if pushed_parent {
                l.stack.push(self.parent);
            }
            ContextGuard {
                restore: Some((prev_trace, pushed_parent)),
            }
        })
    }
}

/// Mark the current thread as working on `trace_id` (a request root —
/// use [`TraceContext::adopt`] instead when there is a parent span to
/// nest under). Restores the previous id on guard drop.
pub fn set_thread_trace(trace_id: u64) -> ContextGuard {
    TraceContext {
        trace_id,
        parent: 0,
    }
    .adopt()
}

// ---------------------------------------------------------------------------
// Spans

/// Live span guard: records the completed event when dropped (including
/// during unwinding). Inert — a single `None` — when tracing is off.
pub struct SpanGuard(Option<OpenSpan>);

struct OpenSpan {
    id: u64,
    parent: u64,
    trace_id: u64,
    name: Cow<'static, str>,
    cat: &'static str,
    start_nanos: u64,
}

impl SpanGuard {
    /// This span's id, for explicit parenting of out-of-band records;
    /// `None` when tracing was off at open time.
    pub fn id(&self) -> Option<u64> {
        self.0.as_ref().map(|s| s.id)
    }
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        let Some(open) = self.0.take() else { return };
        close_span(open);
    }
}

/// The enabled-path tail of [`SpanGuard::drop`], outlined (and marked
/// cold) so a disabled span costs its call site nothing but the `None`
/// check — call sites sit in pipeline hot paths and must not carry the
/// recording code's instruction footprint.
#[cold]
#[inline(never)]
fn close_span(open: OpenSpan) {
    {
        let end_nanos = now_nanos();
        with_local(|l| {
            // Pop our own frame. Defensive: an interleaved adopt/drop on
            // this thread cannot misalign the stack because guards drop
            // in LIFO order, but truncate past our id just in case.
            if let Some(pos) = l.stack.iter().rposition(|&id| id == open.id) {
                l.stack.truncate(pos);
            }
            l.push_event(SpanEvent {
                id: open.id,
                parent: open.parent,
                trace_id: open.trace_id,
                name: open.name,
                cat: open.cat,
                start_nanos: open.start_nanos,
                end_nanos,
                thread: l.thread,
            });
        });
    }
}

#[cold]
#[inline(never)]
fn open_span(cat: &'static str, name: Cow<'static, str>) -> SpanGuard {
    let start_nanos = now_nanos();
    let open = with_local(|l| {
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let parent = l.stack.last().copied().unwrap_or(0);
        l.stack.push(id);
        OpenSpan {
            id,
            parent,
            trace_id: l.trace_id,
            name,
            cat,
            start_nanos,
        }
    });
    SpanGuard(Some(open))
}

/// Open a span with a static label. Close it by dropping the guard.
#[inline]
pub fn span(cat: &'static str, name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard(None);
    }
    open_span(cat, Cow::Borrowed(name))
}

/// Open a span with a computed label; the closure (and its allocation)
/// only runs when tracing is enabled.
#[inline]
pub fn span_with(cat: &'static str, name: impl FnOnce() -> String) -> SpanGuard {
    if !enabled() {
        return SpanGuard(None);
    }
    open_span(cat, Cow::Owned(name()))
}

/// Record an instant event (zero-duration span) under the current span.
#[inline]
pub fn event(cat: &'static str, name: &'static str) {
    if !enabled() {
        return;
    }
    record_instant(cat, Cow::Borrowed(name));
}

/// [`event`] with a computed label; the closure only runs when enabled.
#[inline]
pub fn event_with(cat: &'static str, name: impl FnOnce() -> String) {
    if !enabled() {
        return;
    }
    record_instant(cat, Cow::Owned(name()));
}

#[cold]
#[inline(never)]
fn record_instant(cat: &'static str, name: Cow<'static, str>) {
    let at = now_nanos();
    with_local(|l| {
        let ev = SpanEvent {
            id: NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed),
            parent: l.stack.last().copied().unwrap_or(0),
            trace_id: l.trace_id,
            name,
            cat,
            start_nanos: at,
            end_nanos: at,
            thread: l.thread,
        };
        l.push_event(ev);
    });
}

/// Record a span whose interval was measured out-of-band (e.g. a queue
/// wait captured by the acceptor thread, or per-function attribution
/// synthesized from a profile). Parent/trace are explicit; the span does
/// not touch the thread's stack. No-op when disabled.
pub fn record_span(
    trace_id: u64,
    parent: u64,
    cat: &'static str,
    name: impl Into<Cow<'static, str>>,
    start_nanos: u64,
    end_nanos: u64,
) {
    if !enabled() {
        return;
    }
    with_local(|l| {
        let ev = SpanEvent {
            id: NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed),
            parent,
            trace_id,
            name: name.into(),
            cat,
            start_nanos,
            end_nanos: end_nanos.max(start_nanos),
            thread: l.thread,
        };
        l.push_event(ev);
    });
}

// ---------------------------------------------------------------------------
// Collection

fn flush_current_thread() {
    with_local(|l| l.flush());
}

/// Remove and return every sink event belonging to `trace_id`. Call
/// after the request's root span guard has dropped (the closing flush
/// publishes the thread's buffer); concurrent traces are untouched.
pub fn take_trace(trace_id: u64) -> Vec<SpanEvent> {
    flush_current_thread();
    let mut sink = SINK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut taken = Vec::new();
    sink.retain(|ev| {
        if ev.trace_id == trace_id {
            taken.push(ev.clone());
            false
        } else {
            true
        }
    });
    taken.sort_by_key(|ev| (ev.start_nanos, ev.id));
    taken
}

/// Drain *everything* buffered so far (all trace ids, including 0) — the
/// `--trace-out` whole-process export.
pub fn drain_all() -> Vec<SpanEvent> {
    flush_current_thread();
    let mut sink = SINK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut taken: Vec<SpanEvent> = sink.drain(..).collect();
    taken.sort_by_key(|ev| (ev.start_nanos, ev.id));
    taken
}

// ---------------------------------------------------------------------------
// Reports

/// Sum of durations, grouped by span name, in milliseconds — the
/// slow-request log's stage breakdown. Only top-level-ish aggregation:
/// every span counts under its own name, so nested stages (e.g. `fuse`
/// inside `decode`) appear under both names.
pub fn stage_totals_ms(events: &[SpanEvent]) -> Vec<(String, f64)> {
    let mut totals: Vec<(String, f64)> = Vec::new();
    for ev in events {
        let ms = ev.duration_nanos() as f64 / 1e6;
        match totals.iter_mut().find(|(name, _)| name == ev.name.as_ref()) {
            Some((_, t)) => *t += ms,
            None => totals.push((ev.name.to_string(), ms)),
        }
    }
    totals.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    totals
}

/// Render `events` as a nested JSON span tree: each node carries `name`,
/// `cat`, `start_us`/`dur_us` (microseconds, fractional), `thread`, and
/// `children` ordered by start time. Events whose parent is not in the
/// set become roots. The result is the array of roots.
pub fn report(events: &[SpanEvent]) -> Value {
    let mut order: Vec<usize> = (0..events.len()).collect();
    order.sort_by_key(|&i| (events[i].start_nanos, events[i].id));
    // children[i] = indices of events parented at events[i].
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); events.len()];
    let mut roots: Vec<usize> = Vec::new();
    for &i in &order {
        let parent = events[i].parent;
        match (parent != 0)
            .then(|| events.iter().position(|e| e.id == parent))
            .flatten()
        {
            Some(p) => children[p].push(i),
            None => roots.push(i),
        }
    }
    fn node(events: &[SpanEvent], children: &[Vec<usize>], i: usize) -> Value {
        let ev = &events[i];
        Value::obj(vec![
            ("id", Value::int(ev.id as i64)),
            ("name", Value::str(ev.name.as_ref())),
            ("cat", Value::str(ev.cat)),
            ("start_us", Value::Num(ev.start_nanos as f64 / 1e3)),
            ("dur_us", Value::Num(ev.duration_nanos() as f64 / 1e3)),
            ("thread", Value::int(ev.thread as i64)),
            (
                "children",
                Value::Arr(
                    children[i]
                        .iter()
                        .map(|&c| node(events, children, c))
                        .collect(),
                ),
            ),
        ])
    }
    Value::Arr(roots.iter().map(|&r| node(events, &children, r)).collect())
}

/// Render `events` in the Chrome `trace_event` array format (complete
/// `"ph": "X"` events; timestamps/durations in microseconds), loadable
/// in `chrome://tracing` and Perfetto.
pub fn chrome_trace(events: &[SpanEvent]) -> Value {
    Value::Arr(
        events
            .iter()
            .map(|ev| {
                Value::obj(vec![
                    ("name", Value::str(ev.name.as_ref())),
                    ("cat", Value::str(ev.cat)),
                    ("ph", Value::str("X")),
                    ("ts", Value::Num(ev.start_nanos as f64 / 1e3)),
                    ("dur", Value::Num(ev.duration_nanos() as f64 / 1e3)),
                    ("pid", Value::int(1)),
                    ("tid", Value::int(ev.thread as i64)),
                    (
                        "args",
                        Value::obj(vec![
                            ("span", Value::int(ev.id as i64)),
                            ("parent", Value::int(ev.parent as i64)),
                            ("trace", Value::int(ev.trace_id as i64)),
                        ]),
                    ),
                ])
            })
            .collect(),
    )
}
