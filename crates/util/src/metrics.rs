//! Std-only metrics primitives: atomic counters, gauges, and fixed-bucket
//! latency histograms.
//!
//! The service layer needs to *observe itself* — request counts, queue
//! depth, tail latency — without a metrics dependency and without
//! contending on the hot path. Everything here is lock-free: counters and
//! gauges are single atomics, a [`Histogram`] is a fixed array of atomic
//! bucket counters (one `fetch_add` per recording). Readouts are racy by
//! nature, which is exactly right for monitoring: a snapshot taken while
//! traffic flows is approximate by definition.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Duration;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous level that can move both ways (queue depth,
/// connections in flight).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub fn new() -> Gauge {
        Gauge(AtomicI64::new(0))
    }

    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Clamped at zero on readout: transient inc/dec races can dip the raw
    /// value below zero for a moment, and a negative queue depth is noise,
    /// not information.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed).max(0)
    }
}

/// Upper bucket bounds in microseconds: a 1–2–5 progression from 1 µs to
/// 100 s. Latencies above the last bound land in an overflow bucket.
const BUCKET_BOUNDS_MICROS: [u64; 25] = [
    1,
    2,
    5,
    10,
    20,
    50,
    100,
    200,
    500,
    1_000,
    2_000,
    5_000,
    10_000,
    20_000,
    50_000,
    100_000,
    200_000,
    500_000,
    1_000_000,
    2_000_000,
    5_000_000,
    10_000_000,
    20_000_000,
    50_000_000,
    100_000_000,
];

const BUCKETS: usize = BUCKET_BOUNDS_MICROS.len() + 1; // + overflow

/// A fixed-bucket latency histogram with p50/p99/p999 readout.
///
/// Buckets follow a 1–2–5 progression (±~25% relative resolution), which
/// is plenty for tail-latency monitoring; quantiles report the *upper
/// bound* of the bucket the rank lands in, so a reported p99 is never an
/// underestimate within the bucket resolution.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
}

impl Histogram {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
        }
    }

    /// Record one latency sample.
    pub fn record(&self, latency: Duration) {
        self.record_micros(latency.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Record one latency sample given in (non-negative) seconds.
    pub fn record_seconds(&self, secs: f64) {
        self.record_micros((secs.max(0.0) * 1e6).round() as u64);
    }

    pub fn record_micros(&self, micros: u64) {
        let idx = BUCKET_BOUNDS_MICROS
            .iter()
            .position(|&bound| micros <= bound)
            .unwrap_or(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum_micros(&self) -> u64 {
        self.sum_micros.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_micros(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        self.sum_micros() as f64 / count as f64
    }

    /// The quantile `q` (in `[0, 1]`) as the upper bound of the bucket the
    /// rank lands in, in microseconds. Empty histograms report 0; samples
    /// in the overflow bucket report the last bound (a floor, flagged by
    /// [`HistogramSnapshot::saturated`]).
    pub fn quantile_micros(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return BUCKET_BOUNDS_MICROS
                    .get(idx)
                    .copied()
                    .unwrap_or(BUCKET_BOUNDS_MICROS[BUCKETS - 2]);
            }
        }
        BUCKET_BOUNDS_MICROS[BUCKETS - 2]
    }

    /// A consistent-enough snapshot for reporting (each field is read
    /// atomically; cross-field skew under live traffic is fine for
    /// monitoring).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            mean_micros: self.mean_micros(),
            p50_micros: self.quantile_micros(0.50),
            p99_micros: self.quantile_micros(0.99),
            p999_micros: self.quantile_micros(0.999),
            saturated: self.buckets[BUCKETS - 1].load(Ordering::Relaxed) > 0,
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum_micros", &self.sum_micros())
            .finish()
    }
}

/// One histogram readout (microseconds; divide by 1e3 for ms).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub mean_micros: f64,
    pub p50_micros: u64,
    pub p99_micros: u64,
    pub p999_micros: u64,
    /// Any sample exceeded the last bucket bound (100 s): the reported
    /// tail quantiles are floors, not estimates.
    pub saturated: bool,
}

/// Exact quantile over a *finished* set of latency samples, in seconds.
/// Sorts a copy; for bench/report code where the sample list is in hand
/// and bucket resolution would waste precision. Empty input reports 0.
pub fn exact_quantile_seconds(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank.min(sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);

        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.dec();
        g.dec(); // raw value dips negative...
        assert_eq!(g.get(), 0); // ...readout clamps
        g.set(7);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histogram_empty_reads_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_micros(0.5), 0);
        let snap = h.snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.p99_micros, 0);
        assert!(!snap.saturated);
    }

    #[test]
    fn histogram_quantiles_bracket_the_samples() {
        let h = Histogram::new();
        // 99 fast samples at ~100 µs, one slow at ~80 ms.
        for _ in 0..99 {
            h.record_micros(95);
        }
        h.record_micros(80_000);
        assert_eq!(h.count(), 100);
        // p50 lands in the ≤100 µs bucket, p99 still fast, p999 catches
        // the straggler (≤100 ms bucket).
        assert_eq!(h.quantile_micros(0.50), 100);
        assert_eq!(h.quantile_micros(0.99), 100);
        assert_eq!(h.quantile_micros(0.999), 100_000);
        let snap = h.snapshot();
        assert!(snap.mean_micros > 95.0 && snap.mean_micros < 1000.0);
        assert!(!snap.saturated);
    }

    #[test]
    fn histogram_records_durations_and_seconds_identically() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(Duration::from_millis(3));
        b.record_seconds(0.003);
        assert_eq!(a.quantile_micros(1.0), b.quantile_micros(1.0));
        assert_eq!(a.sum_micros(), b.sum_micros());
    }

    #[test]
    fn histogram_overflow_is_flagged() {
        let h = Histogram::new();
        h.record_seconds(250.0); // past the 100 s top bound
        let snap = h.snapshot();
        assert!(snap.saturated);
        assert_eq!(snap.p50_micros, 100_000_000); // floor, not estimate
    }

    #[test]
    fn histogram_is_safe_under_concurrent_recording() {
        let h = Histogram::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for i in 0..1000u64 {
                        h.record_micros(i % 500);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
    }

    #[test]
    fn exact_quantiles_over_sample_lists() {
        assert_eq!(exact_quantile_seconds(&[], 0.5), 0.0);
        let samples: Vec<f64> = (1..=100).map(|n| n as f64).collect();
        assert_eq!(exact_quantile_seconds(&samples, 0.50), 50.0);
        assert_eq!(exact_quantile_seconds(&samples, 0.99), 99.0);
        assert_eq!(exact_quantile_seconds(&samples, 1.0), 100.0);
        // Order-independent.
        let mut rev = samples.clone();
        rev.reverse();
        assert_eq!(exact_quantile_seconds(&rev, 0.99), 99.0);
    }
}
