//! Stable content fingerprints over the printed IR form.
//!
//! The incremental static stage keys every per-function artifact by a
//! content hash of the function's *printed* body ([`crate::printer`]), not
//! by name or index: two textually identical functions hash identically no
//! matter where they sit in the module, and any edit — however small —
//! changes the hash. The printed form spells out callee names (`call
//! @kernel(...)`), so a function's digest pins down its outgoing call
//! *names* while staying independent of the callees' numeric ids.
//!
//! The hash is 128-bit FNV-1a over length-prefixed parts, rendered as 32
//! hex digits — deliberately the same construction as the server store's
//! content keys so a digest can be embedded in a store key without
//! re-hashing. FNV is not cryptographic; the cache only needs collision
//! resistance against *accidental* collisions, and 128 bits of FNV over
//! kilobyte inputs is far beyond what a build farm can collide by chance.

use crate::printer::print_function;
use crate::{FunctionId, Module};

const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

/// 128-bit FNV-1a over length-prefixed parts, as 32 lowercase hex digits.
///
/// Length prefixes make the encoding injective: `["ab", "c"]` and
/// `["a", "bc"]` hash differently.
pub fn digest_parts(parts: &[&str]) -> String {
    let mut h = FNV_OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u128;
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    for part in parts {
        eat(&(part.len() as u64).to_le_bytes());
        eat(part.as_bytes());
    }
    format!("{h:032x}")
}

/// Content digest of one function's printed body.
///
/// Printing with the module in scope resolves internal callees to `@name`
/// form, so the digest covers the call-graph *names* this function depends
/// on (binding names to ids is the job of the environment digest, not this
/// one).
pub fn function_digest(module: &Module, fid: FunctionId) -> String {
    let text = print_function(module.function(fid), Some(module));
    digest_parts(&["fn", &text])
}

/// Content digest of a whole module's printed form — the key long-lived
/// caches use to share artifacts across sessions, where two different
/// submissions may legitimately carry the same module *name*.
pub fn module_digest(module: &Module) -> String {
    digest_parts(&["module", &crate::printer::print_module(module)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FunctionBuilder, Type};

    fn two_fn_module(konst: i64) -> Module {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("a", vec![("n".into(), Type::I64)], Type::I64);
        let v = b.add(b.param(0), konst);
        b.ret(Some(v));
        m.add_function(b.finish());
        let mut b = FunctionBuilder::new("b", vec![], Type::Void);
        b.ret(None);
        m.add_function(b.finish());
        m
    }

    #[test]
    fn digest_is_stable_and_edit_sensitive() {
        let m1 = two_fn_module(1);
        let m2 = two_fn_module(1);
        let m3 = two_fn_module(2);
        let d = |m: &Module, i: u32| function_digest(m, FunctionId(i));
        assert_eq!(d(&m1, 0), d(&m2, 0));
        assert_eq!(d(&m1, 1), d(&m2, 1));
        assert_ne!(d(&m1, 0), d(&m3, 0), "body edit must change the digest");
        assert_eq!(d(&m1, 1), d(&m3, 1), "untouched function digest survives");
        assert_ne!(d(&m1, 0), d(&m1, 1));
    }

    #[test]
    fn length_prefix_is_injective() {
        assert_ne!(digest_parts(&["ab", "c"]), digest_parts(&["a", "bc"]));
        assert_ne!(digest_parts(&[""]), digest_parts(&[]));
    }
}
