//! Modules: collections of functions plus external symbol declarations.

use crate::function::{Function, FunctionId};
use crate::inst::{Callee, InstKind};
use crate::types::Type;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Declaration of an external runtime symbol (MPI routine, taint intrinsic,
/// work-charging primitive). The interpreter host resolves these by name.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExternalDecl {
    pub name: String,
    pub arity: usize,
    pub ret_ty: Type,
}

/// A translation unit.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Module {
    pub name: String,
    pub functions: Vec<Function>,
    pub externals: Vec<ExternalDecl>,
    #[serde(skip)]
    name_index: HashMap<String, FunctionId>,
}

impl Module {
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            functions: Vec::new(),
            externals: Vec::new(),
            name_index: HashMap::new(),
        }
    }

    /// Add a function, returning its id. Function names must be unique.
    pub fn add_function(&mut self, f: Function) -> FunctionId {
        assert!(
            !self.name_index.contains_key(&f.name),
            "duplicate function name: {}",
            f.name
        );
        let id = FunctionId(self.functions.len() as u32);
        self.name_index.insert(f.name.clone(), id);
        self.functions.push(f);
        id
    }

    /// Declare an external symbol (idempotent).
    pub fn declare_external(&mut self, name: impl Into<String>, arity: usize, ret_ty: Type) {
        let name = name.into();
        if !self.externals.iter().any(|e| e.name == name) {
            self.externals.push(ExternalDecl {
                name,
                arity,
                ret_ty,
            });
        }
    }

    #[inline]
    pub fn function(&self, id: FunctionId) -> &Function {
        &self.functions[id.index()]
    }

    #[inline]
    pub fn function_mut(&mut self, id: FunctionId) -> &mut Function {
        &mut self.functions[id.index()]
    }

    /// Look a function up by name.
    pub fn function_by_name(&self, name: &str) -> Option<FunctionId> {
        if let Some(&id) = self.name_index.get(name) {
            return Some(id);
        }
        // Fallback for modules deserialized without the index.
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(|i| FunctionId(i as u32))
    }

    /// Rebuild the name index (after deserialization).
    pub fn rebuild_index(&mut self) {
        self.name_index = self
            .functions
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.clone(), FunctionId(i as u32)))
            .collect();
    }

    pub fn function_ids(&self) -> impl Iterator<Item = FunctionId> {
        (0..self.functions.len() as u32).map(FunctionId)
    }

    /// Names of all external symbols actually called anywhere in the module.
    pub fn used_externals(&self) -> Vec<&str> {
        let mut seen = std::collections::BTreeSet::new();
        for f in &self.functions {
            for inst in &f.insts {
                if let InstKind::Call {
                    callee: Callee::External(name),
                    ..
                } = &inst.kind
                {
                    seen.insert(name.as_str());
                }
            }
        }
        seen.into_iter().collect()
    }

    /// Direct callees (internal only) of `id`.
    pub fn callees(&self, id: FunctionId) -> Vec<FunctionId> {
        let mut out = Vec::new();
        for inst in &self.function(id).insts {
            if let InstKind::Call {
                callee: Callee::Internal(fid),
                ..
            } = &inst.kind
            {
                if !out.contains(fid) {
                    out.push(*fid);
                }
            }
        }
        out
    }

    /// Total instruction count across all functions.
    pub fn total_insts(&self) -> usize {
        self.functions.iter().map(|f| f.insts.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::value::Value;

    fn tiny(name: &str) -> Function {
        let mut b = FunctionBuilder::new(name, vec![], Type::I64);
        b.ret(Some(Value::int(0)));
        b.finish()
    }

    #[test]
    fn add_and_lookup() {
        let mut m = Module::new("test");
        let a = m.add_function(tiny("a"));
        let b = m.add_function(tiny("b"));
        assert_eq!(m.function_by_name("a"), Some(a));
        assert_eq!(m.function_by_name("b"), Some(b));
        assert_eq!(m.function_by_name("c"), None);
        assert_eq!(m.function(a).name, "a");
    }

    #[test]
    #[should_panic(expected = "duplicate function name")]
    fn duplicate_names_rejected() {
        let mut m = Module::new("test");
        m.add_function(tiny("a"));
        m.add_function(tiny("a"));
    }

    #[test]
    fn externals_deduplicated() {
        let mut m = Module::new("test");
        m.declare_external("MPI_Barrier", 1, Type::Void);
        m.declare_external("MPI_Barrier", 1, Type::Void);
        assert_eq!(m.externals.len(), 1);
    }

    #[test]
    fn used_externals_collected() {
        let mut m = Module::new("test");
        let mut b = FunctionBuilder::new("main", vec![], Type::Void);
        b.call_external("pt_work_flops", vec![Value::int(10)], Type::Void);
        b.call_external("MPI_Barrier", vec![Value::int(0)], Type::Void);
        b.ret(None);
        m.add_function(b.finish());
        let used = m.used_externals();
        assert_eq!(used, vec!["MPI_Barrier", "pt_work_flops"]);
    }

    #[test]
    fn callees_deduplicated() {
        let mut m = Module::new("test");
        let callee = m.add_function(tiny("leaf"));
        let mut b = FunctionBuilder::new("root", vec![], Type::Void);
        b.call(callee, vec![], Type::I64);
        b.call(callee, vec![], Type::I64);
        b.ret(None);
        let root = m.add_function(b.finish());
        assert_eq!(m.callees(root), vec![callee]);
    }
}
