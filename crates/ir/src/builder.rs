//! Structured construction of IR functions.
//!
//! [`FunctionBuilder`] is the only supported way to create functions in this
//! codebase. Its loop helpers emit the canonical rotated-loop pattern
//!
//! ```text
//! pre:    br header
//! header: %iv = phi [pre -> lo, latch -> %iv.next]
//!         %c  = cmp lt %iv, hi
//!         cond_br %c, body, exit
//! body:   ...
//! latch:  %iv.next = add %iv, step
//!         br header
//! exit:
//! ```
//!
//! which is a *natural loop* in the sense of Aho/Sethi/Ullman (single header,
//! one back edge) — the only loop shape the Perf-Taint analysis needs to
//! handle (§4.1 of the paper), and the shape `pt-analysis`' scalar evolution
//! recognizes for constant-trip-count pruning (§5.1).

use crate::function::{BasicBlock, BlockId, Function, FunctionId, ParamId};
use crate::inst::{BinOp, Callee, CmpPred, Inst, InstId, InstKind, Terminator, UnOp};
use crate::types::Type;
use crate::value::Value;

/// Open loop context returned by [`FunctionBuilder::begin_loop`].
#[derive(Debug, Clone, Copy)]
pub struct LoopCtx {
    pub header: BlockId,
    pub body: BlockId,
    pub exit: BlockId,
    /// The induction variable (the header phi).
    pub iv: Value,
    iv_phi: InstId,
    step: Value,
}

/// Incremental builder for one [`Function`].
pub struct FunctionBuilder {
    func: Function,
    current: BlockId,
}

impl FunctionBuilder {
    /// Start building a function; an entry block is created and selected.
    pub fn new(name: impl Into<String>, params: Vec<(String, Type)>, ret_ty: Type) -> Self {
        let mut func = Function::new(name, params, ret_ty);
        func.blocks.push(BasicBlock::new());
        FunctionBuilder {
            func,
            current: BlockId(0),
        }
    }

    /// The `i`-th formal parameter as a value.
    #[inline]
    pub fn param(&self, i: u32) -> Value {
        debug_assert!((i as usize) < self.func.params.len());
        Value::Param(ParamId(i))
    }

    /// The block instructions are currently appended to.
    #[inline]
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// Create a new, empty block (does not switch to it).
    pub fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.func.blocks.len() as u32);
        self.func.blocks.push(BasicBlock::new());
        id
    }

    /// Create a new named block.
    pub fn new_named_block(&mut self, name: impl Into<String>) -> BlockId {
        let id = self.new_block();
        self.func.blocks[id.index()].name = Some(name.into());
        id
    }

    /// Select the block subsequent instructions are appended to.
    pub fn switch_to(&mut self, b: BlockId) {
        assert!(b.index() < self.func.blocks.len(), "unknown block {b}");
        self.current = b;
    }

    fn push(&mut self, kind: InstKind) -> InstId {
        assert!(
            self.func.block(self.current).term.is_none(),
            "appending to terminated block {} in {}",
            self.current,
            self.func.name
        );
        let id = InstId(self.func.insts.len() as u32);
        self.func.insts.push(Inst {
            kind,
            block: self.current,
        });
        self.func.blocks[self.current.index()].insts.push(id);
        id
    }

    // ---- instructions ----------------------------------------------------

    pub fn bin(&mut self, op: BinOp, lhs: impl Into<Value>, rhs: impl Into<Value>) -> Value {
        Value::Inst(self.push(InstKind::Bin {
            op,
            lhs: lhs.into(),
            rhs: rhs.into(),
        }))
    }

    pub fn add(&mut self, a: impl Into<Value>, b: impl Into<Value>) -> Value {
        self.bin(BinOp::Add, a, b)
    }

    pub fn sub(&mut self, a: impl Into<Value>, b: impl Into<Value>) -> Value {
        self.bin(BinOp::Sub, a, b)
    }

    pub fn mul(&mut self, a: impl Into<Value>, b: impl Into<Value>) -> Value {
        self.bin(BinOp::Mul, a, b)
    }

    pub fn div(&mut self, a: impl Into<Value>, b: impl Into<Value>) -> Value {
        self.bin(BinOp::Div, a, b)
    }

    pub fn un(&mut self, op: UnOp, v: impl Into<Value>) -> Value {
        Value::Inst(self.push(InstKind::Un {
            op,
            operand: v.into(),
        }))
    }

    pub fn cmp(&mut self, pred: CmpPred, lhs: impl Into<Value>, rhs: impl Into<Value>) -> Value {
        Value::Inst(self.push(InstKind::Cmp {
            pred,
            lhs: lhs.into(),
            rhs: rhs.into(),
        }))
    }

    pub fn select(
        &mut self,
        cond: impl Into<Value>,
        then_v: impl Into<Value>,
        else_v: impl Into<Value>,
    ) -> Value {
        Value::Inst(self.push(InstKind::Select {
            cond: cond.into(),
            then_v: then_v.into(),
            else_v: else_v.into(),
        }))
    }

    /// Allocate `words` words of frame memory.
    pub fn alloca(&mut self, words: impl Into<Value>) -> Value {
        Value::Inst(self.push(InstKind::Alloca {
            words: words.into(),
        }))
    }

    pub fn load(&mut self, addr: impl Into<Value>, ty: Type) -> Value {
        Value::Inst(self.push(InstKind::Load {
            addr: addr.into(),
            ty,
        }))
    }

    pub fn store(&mut self, addr: impl Into<Value>, value: impl Into<Value>) {
        self.push(InstKind::Store {
            addr: addr.into(),
            value: value.into(),
        });
    }

    /// `base + index * stride` (word units).
    pub fn gep(&mut self, base: impl Into<Value>, index: impl Into<Value>, stride: u32) -> Value {
        Value::Inst(self.push(InstKind::Gep {
            base: base.into(),
            index: index.into(),
            stride,
        }))
    }

    /// Call a function in the same module.
    pub fn call(&mut self, callee: FunctionId, args: Vec<Value>, ret_ty: Type) -> Value {
        Value::Inst(self.push(InstKind::Call {
            callee: Callee::Internal(callee),
            args,
            ret_ty,
        }))
    }

    /// Call an external runtime symbol.
    pub fn call_external(
        &mut self,
        name: impl Into<String>,
        args: Vec<Value>,
        ret_ty: Type,
    ) -> Value {
        Value::Inst(self.push(InstKind::Call {
            callee: Callee::External(name.into()),
            args,
            ret_ty,
        }))
    }

    /// Insert an (initially empty) phi node; use [`FunctionBuilder::add_incoming`]
    /// to fill it in.
    pub fn phi(&mut self, ty: Type) -> InstId {
        self.push(InstKind::Phi {
            ty,
            incomings: Vec::new(),
        })
    }

    /// Add an incoming edge to a phi node.
    pub fn add_incoming(&mut self, phi: InstId, pred: BlockId, v: impl Into<Value>) {
        match &mut self.func.inst_mut(phi).kind {
            InstKind::Phi { incomings, .. } => incomings.push((pred, v.into())),
            other => panic!("add_incoming on non-phi: {other:?}"),
        }
    }

    // ---- terminators -----------------------------------------------------

    fn terminate(&mut self, t: Terminator) {
        let blk = self.func.block_mut(self.current);
        assert!(
            blk.term.is_none(),
            "double termination of block {} in {}",
            self.current,
            self.func.name
        );
        blk.term = Some(t);
    }

    pub fn br(&mut self, target: BlockId) {
        self.terminate(Terminator::Br(target));
    }

    pub fn cond_br(&mut self, cond: impl Into<Value>, then_bb: BlockId, else_bb: BlockId) {
        self.terminate(Terminator::CondBr {
            cond: cond.into(),
            then_bb,
            else_bb,
        });
    }

    pub fn ret(&mut self, v: Option<Value>) {
        self.terminate(Terminator::Ret(v));
    }

    pub fn unreachable(&mut self) {
        self.terminate(Terminator::Unreachable);
    }

    // ---- structured helpers ----------------------------------------------

    /// Open a counted loop `for (iv = lo; iv < hi; iv += step)`. The builder
    /// is left positioned in the body block; call [`FunctionBuilder::end_loop`]
    /// when the body is complete.
    pub fn begin_loop(
        &mut self,
        lo: impl Into<Value>,
        hi: impl Into<Value>,
        step: impl Into<Value>,
    ) -> LoopCtx {
        let lo = lo.into();
        let hi = hi.into();
        let step = step.into();
        let pre = self.current;
        let header = self.new_block();
        let body = self.new_block();
        let exit = self.new_block();
        self.br(header);
        self.switch_to(header);
        let iv_phi = self.phi(Type::I64);
        self.add_incoming(iv_phi, pre, lo);
        let iv = Value::Inst(iv_phi);
        let c = self.cmp(CmpPred::Lt, iv, hi);
        self.cond_br(c, body, exit);
        self.switch_to(body);
        LoopCtx {
            header,
            body,
            exit,
            iv,
            iv_phi,
            step,
        }
    }

    /// Close a loop opened with [`FunctionBuilder::begin_loop`]: the current
    /// block becomes the latch; the builder is left positioned in the exit.
    pub fn end_loop(&mut self, ctx: LoopCtx) {
        let latch = self.current;
        let next = self.add(ctx.iv, ctx.step);
        self.br(ctx.header);
        self.add_incoming(ctx.iv_phi, latch, next);
        self.switch_to(ctx.exit);
    }

    /// Closure-style counted loop: `for (iv = lo; iv < hi; iv += step) body(iv)`.
    pub fn for_loop(
        &mut self,
        lo: impl Into<Value>,
        hi: impl Into<Value>,
        step: impl Into<Value>,
        body: impl FnOnce(&mut Self, Value),
    ) {
        let ctx = self.begin_loop(lo, hi, step);
        body(self, ctx.iv);
        self.end_loop(ctx);
    }

    /// `if (cond) { then_body }` — no else branch; builder ends at the join.
    pub fn if_then(&mut self, cond: impl Into<Value>, then_body: impl FnOnce(&mut Self)) {
        let then_bb = self.new_block();
        let join = self.new_block();
        self.cond_br(cond, then_bb, join);
        self.switch_to(then_bb);
        then_body(self);
        if self.func.block(self.current).term.is_none() {
            self.br(join);
        }
        self.switch_to(join);
    }

    /// `if (cond) { a } else { b }` — builder ends at the join.
    pub fn if_then_else(
        &mut self,
        cond: impl Into<Value>,
        then_body: impl FnOnce(&mut Self),
        else_body: impl FnOnce(&mut Self),
    ) {
        let then_bb = self.new_block();
        let else_bb = self.new_block();
        let join = self.new_block();
        self.cond_br(cond, then_bb, else_bb);
        self.switch_to(then_bb);
        then_body(self);
        if self.func.block(self.current).term.is_none() {
            self.br(join);
        }
        self.switch_to(else_bb);
        else_body(self);
        if self.func.block(self.current).term.is_none() {
            self.br(join);
        }
        self.switch_to(join);
    }

    /// Finish building; panics (via the verifier) on structurally invalid IR.
    pub fn finish(self) -> Function {
        if let Err(e) = crate::verify::verify_function(&self.func) {
            panic!("invalid function {}: {e}", self.func.name);
        }
        self.func
    }

    /// Finish without verification (used by tests that exercise the verifier).
    pub fn finish_unchecked(self) -> Function {
        self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line() {
        let mut b = FunctionBuilder::new("f", vec![("a".into(), Type::I64)], Type::I64);
        let x = b.add(b.param(0), 1i64);
        let y = b.mul(x, 2i64);
        b.ret(Some(y));
        let f = b.finish();
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.insts.len(), 2);
    }

    #[test]
    fn counted_loop_shape() {
        let mut b = FunctionBuilder::new("loop", vec![("n".into(), Type::I64)], Type::Void);
        b.for_loop(0i64, b.param(0), 1i64, |b, _iv| {
            b.call_external("pt_work_flops", vec![Value::int(1)], Type::Void);
        });
        b.ret(None);
        let f = b.finish();
        // pre + header + body + exit
        assert_eq!(f.blocks.len(), 4);
        assert!(f.has_phis());
        // header has two predecessors: preheader and latch (here body == latch)
        let preds = f.predecessors();
        assert_eq!(preds[1].len(), 2);
    }

    #[test]
    fn nested_loops() {
        let mut b = FunctionBuilder::new("nest", vec![("n".into(), Type::I64)], Type::Void);
        let n = b.param(0);
        b.for_loop(0i64, n, 1i64, |b, _i| {
            b.for_loop(0i64, n, 1i64, |b, _j| {
                b.call_external("pt_work_flops", vec![Value::int(1)], Type::Void);
            });
        });
        b.ret(None);
        let f = b.finish();
        assert_eq!(f.blocks.len(), 7);
    }

    #[test]
    fn if_then_else_joins() {
        let mut b = FunctionBuilder::new("sel", vec![("a".into(), Type::I64)], Type::I64);
        let slot = b.alloca(1i64);
        let c = b.cmp(CmpPred::Lt, b.param(0), 10i64);
        b.if_then_else(
            c,
            |b| b.store(slot, Value::int(1)),
            |b| b.store(slot, Value::int(2)),
        );
        let v = b.load(slot, Type::I64);
        b.ret(Some(v));
        let f = b.finish();
        assert_eq!(f.blocks.len(), 4);
    }

    #[test]
    #[should_panic(expected = "double termination")]
    fn double_terminate_panics() {
        let mut b = FunctionBuilder::new("bad", vec![], Type::Void);
        b.ret(None);
        b.ret(None);
    }

    #[test]
    #[should_panic(expected = "appending to terminated block")]
    fn append_after_terminator_panics() {
        let mut b = FunctionBuilder::new("bad", vec![], Type::Void);
        b.ret(None);
        b.add(Value::int(1), Value::int(2));
    }
}
