//! Structural verification of functions and modules.
//!
//! The checks here are purely local/structural: block termination, operand
//! ranges, phi placement and arity, branch-condition typing, call arity
//! against module declarations. The *semantic* SSA property — definitions
//! dominate uses — requires a dominator tree and is verified by
//! `pt_analysis::ssa_verify`.

use crate::function::{BlockId, Function};
use crate::inst::{Callee, InstKind, Terminator};
use crate::module::Module;
use crate::types::Type;
use crate::value::Value;
use std::fmt;

/// A verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    UnterminatedBlock(BlockId),
    BranchTargetOutOfRange { block: BlockId, target: BlockId },
    OperandOutOfRange { block: BlockId, detail: String },
    PhiNotAtBlockStart { block: BlockId },
    PhiArityMismatch { block: BlockId, detail: String },
    NonBoolBranchCondition { block: BlockId },
    ReturnTypeMismatch { detail: String },
    EmptyFunction,
    CallArityMismatch { detail: String },
    UnknownCallee { detail: String },
    InstBlockMismatch { detail: String },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::UnterminatedBlock(b) => write!(f, "block {b} has no terminator"),
            VerifyError::BranchTargetOutOfRange { block, target } => {
                write!(f, "branch in {block} targets nonexistent {target}")
            }
            VerifyError::OperandOutOfRange { block, detail } => {
                write!(f, "operand out of range in {block}: {detail}")
            }
            VerifyError::PhiNotAtBlockStart { block } => {
                write!(f, "phi after non-phi instruction in {block}")
            }
            VerifyError::PhiArityMismatch { block, detail } => {
                write!(f, "phi in {block} inconsistent with predecessors: {detail}")
            }
            VerifyError::NonBoolBranchCondition { block } => {
                write!(f, "cond_br in {block} has non-bool condition")
            }
            VerifyError::ReturnTypeMismatch { detail } => {
                write!(f, "return type mismatch: {detail}")
            }
            VerifyError::EmptyFunction => write!(f, "function has no blocks"),
            VerifyError::CallArityMismatch { detail } => write!(f, "call arity: {detail}"),
            VerifyError::UnknownCallee { detail } => write!(f, "unknown callee: {detail}"),
            VerifyError::InstBlockMismatch { detail } => {
                write!(f, "instruction/block bookkeeping mismatch: {detail}")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verify one function's structural invariants.
pub fn verify_function(func: &Function) -> Result<(), VerifyError> {
    if func.blocks.is_empty() {
        return Err(VerifyError::EmptyFunction);
    }
    let nblocks = func.blocks.len() as u32;
    let ninsts = func.insts.len() as u32;
    let nparams = func.params.len() as u32;

    let check_value = |v: Value, block: BlockId| -> Result<(), VerifyError> {
        match v {
            Value::Const(_) => Ok(()),
            Value::Param(p) => {
                if p.0 < nparams {
                    Ok(())
                } else {
                    Err(VerifyError::OperandOutOfRange {
                        block,
                        detail: format!("param {} of {}", p.0, nparams),
                    })
                }
            }
            Value::Inst(i) => {
                if i.0 < ninsts {
                    Ok(())
                } else {
                    Err(VerifyError::OperandOutOfRange {
                        block,
                        detail: format!("inst %{} of {}", i.0, ninsts),
                    })
                }
            }
        }
    };

    let preds = func.predecessors();

    for bid in func.block_ids() {
        let block = func.block(bid);

        // Termination.
        let term = block
            .term
            .as_ref()
            .ok_or(VerifyError::UnterminatedBlock(bid))?;

        // Branch targets and condition typing.
        for target in term.successors() {
            if target.0 >= nblocks {
                return Err(VerifyError::BranchTargetOutOfRange { block: bid, target });
            }
        }
        match term {
            Terminator::CondBr { cond, .. } => {
                check_value(*cond, bid)?;
                if func.value_type(*cond) != Type::Bool {
                    return Err(VerifyError::NonBoolBranchCondition { block: bid });
                }
            }
            Terminator::Ret(v) => match (v, func.ret_ty) {
                (None, Type::Void) => {}
                (Some(val), ty) if ty != Type::Void => {
                    check_value(*val, bid)?;
                    let vt = func.value_type(*val);
                    if vt != ty {
                        return Err(VerifyError::ReturnTypeMismatch {
                            detail: format!("{} returns {vt}, declared {ty}", func.name),
                        });
                    }
                }
                _ => {
                    return Err(VerifyError::ReturnTypeMismatch {
                        detail: format!(
                            "{}: value presence disagrees with declared {}",
                            func.name, func.ret_ty
                        ),
                    })
                }
            },
            _ => {}
        }

        // Instruction membership, phi placement, operand ranges.
        let mut seen_non_phi = false;
        for &iid in &block.insts {
            if iid.0 >= ninsts {
                return Err(VerifyError::InstBlockMismatch {
                    detail: format!("{bid} lists nonexistent %{}", iid.0),
                });
            }
            let inst = func.inst(iid);
            if inst.block != bid {
                return Err(VerifyError::InstBlockMismatch {
                    detail: format!("%{} recorded in {} but listed in {bid}", iid.0, inst.block),
                });
            }
            let is_phi = matches!(inst.kind, InstKind::Phi { .. });
            if is_phi && seen_non_phi {
                return Err(VerifyError::PhiNotAtBlockStart { block: bid });
            }
            if !is_phi {
                seen_non_phi = true;
            }

            let mut operr: Option<VerifyError> = None;
            inst.for_each_operand(|v| {
                if operr.is_none() {
                    if let Err(e) = check_value(v, bid) {
                        operr = Some(e);
                    }
                }
            });
            if let Some(e) = operr {
                return Err(e);
            }

            // Phi incoming blocks must exactly match predecessors.
            if let InstKind::Phi { incomings, .. } = &inst.kind {
                let mut inc: Vec<BlockId> = incomings.iter().map(|(b, _)| *b).collect();
                inc.sort();
                let mut ps = preds[bid.index()].clone();
                ps.sort();
                if inc != ps {
                    return Err(VerifyError::PhiArityMismatch {
                        block: bid,
                        detail: format!("incoming {inc:?} vs preds {ps:?}"),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Verify all functions of a module plus inter-procedural call invariants.
pub fn verify_module(module: &Module) -> Result<(), Vec<(String, VerifyError)>> {
    let mut errors = Vec::new();
    for f in &module.functions {
        if let Err(e) = verify_function(f) {
            errors.push((f.name.clone(), e));
        }
        for inst in &f.insts {
            if let InstKind::Call { callee, args, .. } = &inst.kind {
                match callee {
                    Callee::Internal(fid) => {
                        if fid.index() >= module.functions.len() {
                            errors.push((
                                f.name.clone(),
                                VerifyError::UnknownCallee {
                                    detail: format!("internal #{}", fid.0),
                                },
                            ));
                        } else {
                            let callee_fn = module.function(*fid);
                            if callee_fn.params.len() != args.len() {
                                errors.push((
                                    f.name.clone(),
                                    VerifyError::CallArityMismatch {
                                        detail: format!(
                                            "{} expects {}, got {}",
                                            callee_fn.name,
                                            callee_fn.params.len(),
                                            args.len()
                                        ),
                                    },
                                ));
                            }
                        }
                    }
                    Callee::External(name) => {
                        if let Some(decl) = module.externals.iter().find(|e| &e.name == name) {
                            if decl.arity != args.len() {
                                errors.push((
                                    f.name.clone(),
                                    VerifyError::CallArityMismatch {
                                        detail: format!(
                                            "{name} declared arity {}, got {}",
                                            decl.arity,
                                            args.len()
                                        ),
                                    },
                                ));
                            }
                        }
                        // Undeclared externals are allowed: hosts resolve by
                        // name and unknown symbols fail at interpretation time.
                    }
                }
            }
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{BinOp, CmpPred, Inst};

    #[test]
    fn valid_function_passes() {
        let mut b = FunctionBuilder::new("ok", vec![("n".into(), Type::I64)], Type::I64);
        let s = b.add(b.param(0), 1i64);
        b.ret(Some(s));
        assert!(verify_function(&b.finish_unchecked()).is_ok());
    }

    #[test]
    fn unterminated_block_rejected() {
        let b = FunctionBuilder::new("bad", vec![], Type::Void);
        let f = b.finish_unchecked();
        assert!(matches!(
            verify_function(&f),
            Err(VerifyError::UnterminatedBlock(_))
        ));
    }

    #[test]
    fn nonbool_condition_rejected() {
        let mut b = FunctionBuilder::new("bad", vec![("n".into(), Type::I64)], Type::Void);
        let t = b.new_block();
        let e = b.new_block();
        b.cond_br(b.param(0), t, e); // i64 condition: invalid
        b.switch_to(t);
        b.ret(None);
        b.switch_to(e);
        b.ret(None);
        let f = b.finish_unchecked();
        assert!(matches!(
            verify_function(&f),
            Err(VerifyError::NonBoolBranchCondition { .. })
        ));
    }

    #[test]
    fn return_type_mismatch_rejected() {
        let mut b = FunctionBuilder::new("bad", vec![], Type::I64);
        b.ret(None);
        let f = b.finish_unchecked();
        assert!(matches!(
            verify_function(&f),
            Err(VerifyError::ReturnTypeMismatch { .. })
        ));
    }

    #[test]
    fn operand_out_of_range_rejected() {
        let mut b = FunctionBuilder::new("bad", vec![], Type::Void);
        b.ret(None);
        let mut f = b.finish_unchecked();
        // Splice in an instruction referencing a nonexistent result.
        f.insts.push(Inst {
            kind: InstKind::Bin {
                op: BinOp::Add,
                lhs: Value::Inst(crate::inst::InstId(99)),
                rhs: Value::int(0),
            },
            block: BlockId(0),
        });
        f.blocks[0].insts.insert(0, crate::inst::InstId(0));
        assert!(matches!(
            verify_function(&f),
            Err(VerifyError::OperandOutOfRange { .. })
        ));
    }

    #[test]
    fn phi_pred_mismatch_rejected() {
        let mut b = FunctionBuilder::new("bad", vec![("n".into(), Type::I64)], Type::Void);
        let next = b.new_block();
        b.br(next);
        b.switch_to(next);
        let phi = b.phi(Type::I64);
        // Claim an incoming edge from a block that is not a predecessor.
        b.add_incoming(phi, next, Value::int(0));
        b.ret(None);
        let f = b.finish_unchecked();
        assert!(matches!(
            verify_function(&f),
            Err(VerifyError::PhiArityMismatch { .. })
        ));
    }

    #[test]
    fn module_call_arity_checked() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("leaf", vec![("a".into(), Type::I64)], Type::Void);
        b.ret(None);
        let leaf = m.add_function(b.finish_unchecked());
        let mut b = FunctionBuilder::new("root", vec![], Type::Void);
        b.call(leaf, vec![], Type::Void); // missing argument
        b.ret(None);
        m.add_function(b.finish_unchecked());
        let errs = verify_module(&m).unwrap_err();
        assert!(errs
            .iter()
            .any(|(f, e)| f == "root" && matches!(e, VerifyError::CallArityMismatch { .. })));
    }

    #[test]
    fn external_arity_checked_when_declared() {
        let mut m = Module::new("m");
        m.declare_external("MPI_Barrier", 1, Type::Void);
        let mut b = FunctionBuilder::new("root", vec![], Type::Void);
        b.call_external("MPI_Barrier", vec![], Type::Void);
        b.ret(None);
        m.add_function(b.finish_unchecked());
        assert!(verify_module(&m).is_err());
    }

    #[test]
    fn loop_function_verifies() {
        let mut b = FunctionBuilder::new("loop", vec![("n".into(), Type::I64)], Type::Void);
        b.for_loop(0i64, b.param(0), 1i64, |b, iv| {
            let _ = b.cmp(CmpPred::Eq, iv, 3i64);
        });
        b.ret(None);
        assert!(verify_function(&b.finish_unchecked()).is_ok());
    }
}
