//! Scalar types of the IR.
//!
//! The IR is word-oriented: memory is addressed in 8-byte words and every
//! SSA value is one of the scalar types below. Aggregates are expressed as
//! runs of words addressed through [`gep`](crate::inst::InstKind::Gep), which
//! keeps the taint shadow-memory mapping in `pt-taint` trivially precise
//! (one label per word, as in DataFlowSanitizer's 1:1 shadow scheme).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The scalar type of an SSA value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Type {
    /// 64-bit signed integer.
    I64,
    /// 64-bit IEEE-754 float.
    F64,
    /// Boolean produced by comparisons; branch conditions must be `Bool`.
    Bool,
    /// Word address into the interpreter's flat memory.
    Ptr,
    /// Absence of a value (calls to void functions, stores).
    Void,
}

impl Type {
    /// Whether a value of this type can appear as an instruction operand.
    #[inline]
    pub fn is_value(self) -> bool {
        !matches!(self, Type::Void)
    }

    /// Whether this type supports arithmetic (`add`, `mul`, ...).
    #[inline]
    pub fn is_numeric(self) -> bool {
        matches!(self, Type::I64 | Type::F64)
    }

    /// Short mnemonic used by the textual printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Type::I64 => "i64",
            Type::F64 => "f64",
            Type::Bool => "bool",
            Type::Ptr => "ptr",
            Type::Void => "void",
        }
    }

    /// Inverse of [`Type::mnemonic`].
    pub fn from_mnemonic(s: &str) -> Option<Type> {
        Some(match s {
            "i64" => Type::I64,
            "f64" => Type::F64,
            "bool" => Type::Bool,
            "ptr" => Type::Ptr,
            "void" => Type::Void,
            _ => return None,
        })
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonics_round_trip() {
        for ty in [Type::I64, Type::F64, Type::Bool, Type::Ptr, Type::Void] {
            assert_eq!(Type::from_mnemonic(ty.mnemonic()), Some(ty));
        }
        assert_eq!(Type::from_mnemonic("i32"), None);
    }

    #[test]
    fn classification() {
        assert!(Type::I64.is_numeric());
        assert!(Type::F64.is_numeric());
        assert!(!Type::Bool.is_numeric());
        assert!(!Type::Ptr.is_numeric());
        assert!(Type::Ptr.is_value());
        assert!(!Type::Void.is_value());
    }
}
