//! SSA values: constants, function parameters, and instruction results.

use crate::function::ParamId;
use crate::inst::InstId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A compile-time constant.
///
/// Constants are immediate operands rather than instructions; this mirrors
/// LLVM, keeps basic blocks small, and means constants never carry taint —
/// exactly the property the taint propagation rules rely on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Const {
    Int(i64),
    Float(f64),
    Bool(bool),
}

impl Const {
    /// The type of the constant.
    pub fn ty(self) -> crate::Type {
        match self {
            Const::Int(_) => crate::Type::I64,
            Const::Float(_) => crate::Type::F64,
            Const::Bool(_) => crate::Type::Bool,
        }
    }
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Const::Int(v) => write!(f, "{v}"),
            Const::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Const::Bool(v) => write!(f, "{v}"),
        }
    }
}

/// An operand of an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Immediate constant.
    Const(Const),
    /// The `i`-th formal parameter of the enclosing function.
    Param(ParamId),
    /// The result of an instruction in the enclosing function.
    Inst(InstId),
}

impl Value {
    /// Integer constant shorthand.
    #[inline]
    pub fn int(v: i64) -> Value {
        Value::Const(Const::Int(v))
    }

    /// Float constant shorthand.
    #[inline]
    pub fn float(v: f64) -> Value {
        Value::Const(Const::Float(v))
    }

    /// Boolean constant shorthand.
    #[inline]
    pub fn bool(v: bool) -> Value {
        Value::Const(Const::Bool(v))
    }

    /// Returns the constant if this operand is an immediate.
    #[inline]
    pub fn as_const(self) -> Option<Const> {
        match self {
            Value::Const(c) => Some(c),
            _ => None,
        }
    }

    /// Returns the integer constant if this operand is an immediate integer.
    #[inline]
    pub fn as_int(self) -> Option<i64> {
        match self {
            Value::Const(Const::Int(v)) => Some(v),
            _ => None,
        }
    }

    /// Returns the defining instruction, if any.
    #[inline]
    pub fn as_inst(self) -> Option<InstId> {
        match self {
            Value::Inst(id) => Some(id),
            _ => None,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::float(v)
    }
}

impl From<InstId> for Value {
    fn from(id: InstId) -> Self {
        Value::Inst(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_types() {
        assert_eq!(Const::Int(3).ty(), crate::Type::I64);
        assert_eq!(Const::Float(1.5).ty(), crate::Type::F64);
        assert_eq!(Const::Bool(true).ty(), crate::Type::Bool);
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::int(7).as_int(), Some(7));
        assert_eq!(Value::float(1.0).as_int(), None);
        assert!(Value::int(7).as_inst().is_none());
        let v: Value = 42i64.into();
        assert_eq!(v.as_int(), Some(42));
    }

    #[test]
    fn const_display() {
        assert_eq!(Const::Int(-3).to_string(), "-3");
        assert_eq!(Const::Float(2.0).to_string(), "2.0");
        assert_eq!(Const::Float(2.5).to_string(), "2.5");
        assert_eq!(Const::Bool(true).to_string(), "true");
    }
}
