//! # pt-ir — a compact SSA-style compiler IR
//!
//! This crate provides the intermediate representation that the rest of
//! perf-taint-rs analyzes and executes. It plays the role LLVM IR plays in the
//! original Perf-Taint system (PPoPP'21): programs are expressed as modules of
//! functions built from basic blocks; the dynamic taint analysis
//! ([`pt-taint`](https://docs.rs/pt-taint)) interprets this IR while
//! propagating taint labels exactly the way DataFlowSanitizer instruments
//! LLVM IR.
//!
//! The IR is deliberately minimal but complete enough to express realistic
//! HPC mini-applications:
//!
//! * integer/float scalar arithmetic and comparisons,
//! * stack allocation (`alloca`), word-granular `load`/`store`, and pointer
//!   arithmetic (`gep`),
//! * direct calls to other functions in the module and to *external* symbols
//!   (the MPI simulator and the measurement runtime resolve those),
//! * `phi` nodes, conditional and unconditional branches, and returns.
//!
//! Structured construction is done through [`builder::FunctionBuilder`], which
//! offers loop helpers that emit the canonical `phi`/`add`/`icmp`/`br`
//! induction pattern recognized by the scalar-evolution analysis in
//! `pt-analysis`.
//!
//! A textual [printer](printer) and [parser](parser) round-trip the IR, and a
//! structural [verifier](verify) checks well-formedness (every block
//! terminated, operands in range, phi arity consistent with predecessors).
//! Full SSA dominance verification lives in `pt-analysis`, which owns the
//! dominator tree.

pub mod builder;
pub mod fingerprint;
pub mod function;
pub mod inst;
pub mod module;
pub mod parser;
pub mod printer;
pub mod types;
pub mod value;
pub mod verify;

pub use builder::FunctionBuilder;
pub use function::{BasicBlock, BlockId, Function, FunctionId, ParamId};
pub use inst::{BinOp, Callee, CmpPred, Inst, InstId, InstKind, Terminator, UnOp};
pub use module::Module;
pub use types::Type;
pub use value::{Const, Value};
pub use verify::{verify_function, verify_module, VerifyError};
