//! Textual form of the IR.
//!
//! The format round-trips through [`crate::parser`]:
//!
//! ```text
//! func @axpy(%a: f64, %x: ptr, %y: ptr, %n: i64) -> void {
//! bb0:
//!   br bb1
//! bb1:
//!   %0 = phi i64 [bb0 -> 0, bb2 -> %5]
//!   %1 = cmp lt %0, %n
//!   cond_br %1, bb2, bb3
//! bb2:
//!   %2 = load f64, %x[%0 * 1]
//!   ...
//! }
//! ```

use crate::function::Function;
use crate::inst::{Callee, InstKind, Terminator};
use crate::module::Module;
use crate::value::Value;
use std::fmt::Write;

fn fmt_value(v: Value, func: &Function) -> String {
    match v {
        Value::Const(c) => c.to_string(),
        Value::Param(p) => format!("%{}", func.params[p.index()].0),
        Value::Inst(i) => format!("%{}", i.0),
    }
}

fn fmt_callee(c: &Callee, module: Option<&Module>) -> String {
    match c {
        Callee::Internal(fid) => match module {
            Some(m) => format!("@{}", m.function(*fid).name),
            None => format!("@#{}", fid.0),
        },
        Callee::External(name) => format!("@{name}"),
    }
}

/// Print one instruction (without result assignment).
fn fmt_inst_kind(kind: &InstKind, func: &Function, module: Option<&Module>) -> String {
    let v = |x: Value| fmt_value(x, func);
    match kind {
        InstKind::Bin { op, lhs, rhs } => {
            format!("{} {}, {}", op.mnemonic(), v(*lhs), v(*rhs))
        }
        InstKind::Un { op, operand } => format!("{} {}", op.mnemonic(), v(*operand)),
        InstKind::Cmp { pred, lhs, rhs } => {
            format!("cmp {} {}, {}", pred.mnemonic(), v(*lhs), v(*rhs))
        }
        InstKind::Select {
            cond,
            then_v,
            else_v,
        } => format!("select {}, {}, {}", v(*cond), v(*then_v), v(*else_v)),
        InstKind::Alloca { words } => format!("alloca {}", v(*words)),
        InstKind::Load { addr, ty } => format!("load {ty}, {}", v(*addr)),
        InstKind::Store { addr, value } => format!("store {}, {}", v(*value), v(*addr)),
        InstKind::Gep {
            base,
            index,
            stride,
        } => format!("gep {}[{} * {}]", v(*base), v(*index), stride),
        InstKind::Call {
            callee,
            args,
            ret_ty,
        } => {
            let args: Vec<String> = args.iter().map(|a| v(*a)).collect();
            format!(
                "call {ret_ty} {}({})",
                fmt_callee(callee, module),
                args.join(", ")
            )
        }
        InstKind::Phi { ty, incomings } => {
            let inc: Vec<String> = incomings
                .iter()
                .map(|(b, val)| format!("{b} -> {}", v(*val)))
                .collect();
            format!("phi {ty} [{}]", inc.join(", "))
        }
    }
}

fn fmt_terminator(t: &Terminator, func: &Function) -> String {
    match t {
        Terminator::Br(b) => format!("br {b}"),
        Terminator::CondBr {
            cond,
            then_bb,
            else_bb,
        } => format!("cond_br {}, {then_bb}, {else_bb}", fmt_value(*cond, func)),
        Terminator::Ret(None) => "ret".into(),
        Terminator::Ret(Some(v)) => format!("ret {}", fmt_value(*v, func)),
        Terminator::Unreachable => "unreachable".into(),
    }
}

/// Render a function to its textual form.
pub fn print_function(func: &Function, module: Option<&Module>) -> String {
    let mut out = String::new();
    let params: Vec<String> = func
        .params
        .iter()
        .map(|(n, t)| format!("%{n}: {t}"))
        .collect();
    writeln!(
        out,
        "func @{}({}) -> {} {{",
        func.name,
        params.join(", "),
        func.ret_ty
    )
    .unwrap();
    for bid in func.block_ids() {
        let block = func.block(bid);
        match &block.name {
            Some(n) => writeln!(out, "{bid}: ; {n}").unwrap(),
            None => writeln!(out, "{bid}:").unwrap(),
        }
        for &iid in &block.insts {
            let inst = func.inst(iid);
            let text = fmt_inst_kind(&inst.kind, func, module);
            let produces = inst.result_type(|v| func.value_type(v)) != crate::Type::Void;
            if produces {
                writeln!(out, "  %{} = {text}", iid.0).unwrap();
            } else {
                writeln!(out, "  {text}").unwrap();
            }
        }
        match &block.term {
            Some(t) => writeln!(out, "  {}", fmt_terminator(t, func)).unwrap(),
            None => writeln!(out, "  <unterminated>").unwrap(),
        }
    }
    out.push_str("}\n");
    out
}

/// Render a whole module.
pub fn print_module(module: &Module) -> String {
    let mut out = String::new();
    writeln!(out, "; module {}", module.name).unwrap();
    for e in &module.externals {
        writeln!(out, "extern @{}({}) -> {}", e.name, e.arity, e.ret_ty).unwrap();
    }
    if !module.externals.is_empty() {
        out.push('\n');
    }
    for f in &module.functions {
        out.push_str(&print_function(f, Some(module)));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::CmpPred;
    use crate::types::Type;

    #[test]
    fn prints_loop() {
        let mut b = FunctionBuilder::new("count", vec![("n".into(), Type::I64)], Type::I64);
        let acc = b.alloca(1i64);
        b.store(acc, Value::int(0));
        b.for_loop(0i64, b.param(0), 1i64, |b, iv| {
            let cur = b.load(acc, Type::I64);
            let nxt = b.add(cur, iv);
            b.store(acc, nxt);
        });
        let r = b.load(acc, Type::I64);
        b.ret(Some(r));
        let f = b.finish();
        let text = print_function(&f, None);
        assert!(text.contains("func @count(%n: i64) -> i64 {"));
        assert!(text.contains("phi i64 [bb0 -> 0, bb2 -> %"));
        assert!(text.contains("cmp lt"));
        assert!(text.contains("cond_br"));
        assert!(text.contains("store"));
    }

    #[test]
    fn prints_module_with_externs() {
        let mut m = Module::new("m");
        m.declare_external("pt_work_flops", 1, Type::Void);
        let mut b = FunctionBuilder::new("main", vec![], Type::Void);
        let c = b.cmp(CmpPred::Lt, Value::int(1), Value::int(2));
        b.if_then(c, |b| {
            b.call_external("pt_work_flops", vec![Value::int(5)], Type::Void);
        });
        b.ret(None);
        m.add_function(b.finish());
        let text = print_module(&m);
        assert!(text.contains("extern @pt_work_flops(1) -> void"));
        assert!(text.contains("call void @pt_work_flops(5)"));
    }
}
