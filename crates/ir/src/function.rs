//! Functions and basic blocks.

use crate::inst::{Inst, InstId, InstKind, Terminator};
use crate::types::Type;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a basic block within its function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockId(pub u32);

impl BlockId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Index of a function within its module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FunctionId(pub u32);

impl FunctionId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Index of a formal parameter of a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ParamId(pub u32);

impl ParamId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A basic block: an ordered run of instructions plus one terminator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BasicBlock {
    /// Instructions in execution order. Phi nodes, if any, come first.
    pub insts: Vec<InstId>,
    /// The terminator. `None` only transiently during construction;
    /// the verifier rejects unterminated blocks.
    pub term: Option<Terminator>,
    /// Optional label for diagnostics and the textual format.
    pub name: Option<String>,
}

impl BasicBlock {
    pub fn new() -> Self {
        BasicBlock {
            insts: Vec::new(),
            term: None,
            name: None,
        }
    }

    /// The terminator; panics if the block is unterminated.
    #[inline]
    pub fn terminator(&self) -> &Terminator {
        self.term.as_ref().expect("unterminated basic block")
    }
}

impl Default for BasicBlock {
    fn default() -> Self {
        Self::new()
    }
}

/// A function: parameters, a return type, and a CFG of basic blocks over an
/// instruction arena.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Function {
    pub name: String,
    pub params: Vec<(String, Type)>,
    pub ret_ty: Type,
    pub blocks: Vec<BasicBlock>,
    pub insts: Vec<Inst>,
    /// Entry block; always `BlockId(0)` for builder-produced functions.
    pub entry: BlockId,
}

impl Function {
    pub fn new(name: impl Into<String>, params: Vec<(String, Type)>, ret_ty: Type) -> Self {
        Function {
            name: name.into(),
            params,
            ret_ty,
            blocks: Vec::new(),
            insts: Vec::new(),
            entry: BlockId(0),
        }
    }

    #[inline]
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    #[inline]
    pub fn block_mut(&mut self, id: BlockId) -> &mut BasicBlock {
        &mut self.blocks[id.index()]
    }

    #[inline]
    pub fn inst(&self, id: InstId) -> &Inst {
        &self.insts[id.index()]
    }

    #[inline]
    pub fn inst_mut(&mut self, id: InstId) -> &mut Inst {
        &mut self.insts[id.index()]
    }

    /// Iterator over all block ids in numeric order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Number of instructions (a proxy for function "size" used by the
    /// default-instrumentation inlining heuristic in `pt-measure`).
    #[inline]
    pub fn size(&self) -> usize {
        self.insts.len()
    }

    /// The type of an operand value in the context of this function.
    pub fn value_type(&self, v: Value) -> Type {
        match v {
            Value::Const(c) => c.ty(),
            Value::Param(p) => self.params[p.index()].1,
            Value::Inst(id) => {
                let inst = self.inst(id);
                inst.result_type(|op| self.operand_type_shallow(op))
            }
        }
    }

    /// Non-recursive operand typing: enough because `result_type` only ever
    /// inspects direct operands, and instruction results are cached through
    /// one level of lookup here.
    fn operand_type_shallow(&self, v: Value) -> Type {
        match v {
            Value::Const(c) => c.ty(),
            Value::Param(p) => self.params[p.index()].1,
            Value::Inst(id) => {
                // One more level; `Bin`/`Un`/`Select` chains terminate because
                // the recursion follows the first operand only and functions
                // are finite DAGs of definitions.
                self.inst(id).result_type(|op| self.value_type(op))
            }
        }
    }

    /// Successor blocks of `b`.
    pub fn successors(&self, b: BlockId) -> Vec<BlockId> {
        match &self.block(b).term {
            Some(t) => t.successors().collect(),
            None => Vec::new(),
        }
    }

    /// Predecessor map for all blocks (index = block index).
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for b in self.block_ids() {
            for s in self.successors(b) {
                preds[s.index()].push(b);
            }
        }
        preds
    }

    /// All call sites in this function.
    pub fn call_sites(&self) -> Vec<(InstId, &crate::inst::Callee)> {
        let mut out = Vec::new();
        for (i, inst) in self.insts.iter().enumerate() {
            if let InstKind::Call { callee, .. } = &inst.kind {
                out.push((InstId(i as u32), callee));
            }
        }
        out
    }

    /// Whether any block of the function contains a phi node.
    pub fn has_phis(&self) -> bool {
        self.insts
            .iter()
            .any(|i| matches!(i.kind, InstKind::Phi { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::BinOp;

    #[test]
    fn value_typing() {
        let mut b = FunctionBuilder::new(
            "f",
            vec![("a".into(), Type::I64), ("x".into(), Type::F64)],
            Type::I64,
        );
        let a = b.param(0);
        let s = b.bin(BinOp::Add, a, Value::int(1));
        let c = b.cmp(crate::inst::CmpPred::Lt, s, Value::int(10));
        b.ret(Some(s));
        let f = b.finish();
        assert_eq!(f.value_type(a), Type::I64);
        assert_eq!(f.value_type(s), Type::I64);
        assert_eq!(f.value_type(c), Type::Bool);
        assert_eq!(f.value_type(Value::Param(ParamId(1))), Type::F64);
    }

    #[test]
    fn predecessors_and_successors() {
        let mut b = FunctionBuilder::new("g", vec![("n".into(), Type::I64)], Type::Void);
        let then_bb = b.new_block();
        let else_bb = b.new_block();
        let join = b.new_block();
        let c = b.cmp(crate::inst::CmpPred::Lt, b.param(0), Value::int(5));
        b.cond_br(c, then_bb, else_bb);
        b.switch_to(then_bb);
        b.br(join);
        b.switch_to(else_bb);
        b.br(join);
        b.switch_to(join);
        b.ret(None);
        let f = b.finish();
        assert_eq!(f.successors(BlockId(0)).len(), 2);
        let preds = f.predecessors();
        assert_eq!(preds[join.index()].len(), 2);
        assert!(preds[0].is_empty());
    }
}
