//! Instructions and terminators.

use crate::function::{BlockId, FunctionId};
use crate::types::Type;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of an instruction inside its function's instruction arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct InstId(pub u32);

impl InstId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for InstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// Binary arithmetic / bitwise operations.
///
/// Integer division and remainder trap on a zero divisor at interpretation
/// time, matching hardware semantics rather than LLVM's poison values.
///
/// Shifts are defined over the sole integer type, `i64` (pt-ir has **no**
/// 32-bit integer type): the amount is reduced modulo 64 — like x86's
/// 64-bit `shl`/`sar`, and unlike LLVM where an amount ≥ the bit width is
/// poison — so 64 shifts by 0, 65 by 1, and negative amounts reduce
/// through the same mask. `Shr` is arithmetic (sign-propagating). The
/// executable definition both engines share is `pt_taint::ops`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    /// Left shift; amount reduced modulo 64.
    Shl,
    /// Arithmetic right shift; amount reduced modulo 64.
    Shr,
    Min,
    Max,
}

impl BinOp {
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
            BinOp::Min => "min",
            BinOp::Max => "max",
        }
    }

    pub fn from_mnemonic(s: &str) -> Option<BinOp> {
        Some(match s {
            "add" => BinOp::Add,
            "sub" => BinOp::Sub,
            "mul" => BinOp::Mul,
            "div" => BinOp::Div,
            "rem" => BinOp::Rem,
            "and" => BinOp::And,
            "or" => BinOp::Or,
            "xor" => BinOp::Xor,
            "shl" => BinOp::Shl,
            "shr" => BinOp::Shr,
            "min" => BinOp::Min,
            "max" => BinOp::Max,
            _ => return None,
        })
    }
}

/// Unary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Bitwise / logical not.
    Not,
    /// i64 → f64 conversion.
    IntToFloat,
    /// f64 → i64 conversion (truncation toward zero).
    FloatToInt,
    /// Square root (f64).
    Sqrt,
    /// Absolute value.
    Abs,
}

impl UnOp {
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnOp::Neg => "neg",
            UnOp::Not => "not",
            UnOp::IntToFloat => "itof",
            UnOp::FloatToInt => "ftoi",
            UnOp::Sqrt => "sqrt",
            UnOp::Abs => "abs",
        }
    }

    pub fn from_mnemonic(s: &str) -> Option<UnOp> {
        Some(match s {
            "neg" => UnOp::Neg,
            "not" => UnOp::Not,
            "itof" => UnOp::IntToFloat,
            "ftoi" => UnOp::FloatToInt,
            "sqrt" => UnOp::Sqrt,
            "abs" => UnOp::Abs,
            _ => return None,
        })
    }
}

/// Comparison predicates (signed integer or ordered float semantics,
/// depending on the operand type).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpPred {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpPred {
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpPred::Eq => "eq",
            CmpPred::Ne => "ne",
            CmpPred::Lt => "lt",
            CmpPred::Le => "le",
            CmpPred::Gt => "gt",
            CmpPred::Ge => "ge",
        }
    }

    pub fn from_mnemonic(s: &str) -> Option<CmpPred> {
        Some(match s {
            "eq" => CmpPred::Eq,
            "ne" => CmpPred::Ne,
            "lt" => CmpPred::Lt,
            "le" => CmpPred::Le,
            "gt" => CmpPred::Gt,
            "ge" => CmpPred::Ge,
            _ => return None,
        })
    }

    /// Evaluate the predicate on two ordered values.
    #[inline]
    pub fn eval<T: PartialOrd>(self, a: T, b: T) -> bool {
        match self {
            CmpPred::Eq => a == b,
            CmpPred::Ne => a != b,
            CmpPred::Lt => a < b,
            CmpPred::Le => a <= b,
            CmpPred::Gt => a > b,
            CmpPred::Ge => a >= b,
        }
    }
}

/// Target of a call.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Callee {
    /// A function defined in the same module.
    Internal(FunctionId),
    /// An external runtime symbol resolved by the interpreter host
    /// (taint intrinsics, MPI routines, work-charging primitives).
    External(String),
}

/// The operation performed by an instruction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum InstKind {
    /// Binary operation on two numeric operands of equal type.
    Bin { op: BinOp, lhs: Value, rhs: Value },
    /// Unary operation.
    Un { op: UnOp, operand: Value },
    /// Comparison; result type is `Bool`.
    Cmp {
        pred: CmpPred,
        lhs: Value,
        rhs: Value,
    },
    /// `cond ? then_v : else_v` without control flow.
    Select {
        cond: Value,
        then_v: Value,
        else_v: Value,
    },
    /// Allocate `words` contiguous words in the frame; result is a `Ptr` to
    /// the first word. `words` may be a dynamic value.
    Alloca { words: Value },
    /// Load one word from `addr`, interpreting it as `ty`.
    Load { addr: Value, ty: Type },
    /// Store `value` to `addr`.
    Store { addr: Value, value: Value },
    /// Address arithmetic: `base + index * stride` (word units).
    Gep {
        base: Value,
        index: Value,
        stride: u32,
    },
    /// Direct call. `ret_ty` caches the callee's return type so the result
    /// type is known without module context.
    Call {
        callee: Callee,
        args: Vec<Value>,
        ret_ty: Type,
    },
    /// SSA phi node; one incoming value per predecessor block.
    Phi {
        ty: Type,
        incomings: Vec<(BlockId, Value)>,
    },
}

/// An instruction: its kind plus the block it belongs to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Inst {
    pub kind: InstKind,
    pub block: BlockId,
}

impl Inst {
    /// The result type of this instruction given a lookup for operand types.
    ///
    /// `Bin`/`Un` results follow their operand; callers that need exact
    /// operand typing use [`crate::function::Function::value_type`].
    pub fn result_type(&self, operand_ty: impl Fn(Value) -> Type) -> Type {
        match &self.kind {
            InstKind::Bin { lhs, .. } => operand_ty(*lhs),
            InstKind::Un { op, operand } => match op {
                UnOp::IntToFloat => Type::F64,
                UnOp::FloatToInt => Type::I64,
                UnOp::Sqrt => Type::F64,
                UnOp::Not => operand_ty(*operand),
                _ => operand_ty(*operand),
            },
            InstKind::Cmp { .. } => Type::Bool,
            InstKind::Select { then_v, .. } => operand_ty(*then_v),
            InstKind::Alloca { .. } => Type::Ptr,
            InstKind::Load { ty, .. } => *ty,
            InstKind::Store { .. } => Type::Void,
            InstKind::Gep { .. } => Type::Ptr,
            InstKind::Call { ret_ty, .. } => *ret_ty,
            InstKind::Phi { ty, .. } => *ty,
        }
    }

    /// Visit every operand of the instruction.
    pub fn for_each_operand(&self, mut f: impl FnMut(Value)) {
        match &self.kind {
            InstKind::Bin { lhs, rhs, .. } | InstKind::Cmp { lhs, rhs, .. } => {
                f(*lhs);
                f(*rhs);
            }
            InstKind::Un { operand, .. } => f(*operand),
            InstKind::Select {
                cond,
                then_v,
                else_v,
            } => {
                f(*cond);
                f(*then_v);
                f(*else_v);
            }
            InstKind::Alloca { words } => f(*words),
            InstKind::Load { addr, .. } => f(*addr),
            InstKind::Store { addr, value } => {
                f(*addr);
                f(*value);
            }
            InstKind::Gep { base, index, .. } => {
                f(*base);
                f(*index);
            }
            InstKind::Call { args, .. } => {
                for a in args {
                    f(*a);
                }
            }
            InstKind::Phi { incomings, .. } => {
                for (_, v) in incomings {
                    f(*v);
                }
            }
        }
    }
}

/// Block terminators. Every basic block ends in exactly one terminator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Terminator {
    /// Unconditional branch.
    Br(BlockId),
    /// Two-way conditional branch; `cond` must be `Bool`.
    CondBr {
        cond: Value,
        then_bb: BlockId,
        else_bb: BlockId,
    },
    /// Return from the function.
    Ret(Option<Value>),
    /// Marks statically unreachable code (e.g. after a trap).
    Unreachable,
}

impl Terminator {
    /// Successor blocks of this terminator.
    pub fn successors(&self) -> impl Iterator<Item = BlockId> + '_ {
        let (a, b) = match self {
            Terminator::Br(t) => (Some(*t), None),
            Terminator::CondBr {
                then_bb, else_bb, ..
            } => (Some(*then_bb), Some(*else_bb)),
            Terminator::Ret(_) | Terminator::Unreachable => (None, None),
        };
        a.into_iter().chain(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_mnemonics_round_trip() {
        for op in [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Rem,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Shl,
            BinOp::Shr,
            BinOp::Min,
            BinOp::Max,
        ] {
            assert_eq!(BinOp::from_mnemonic(op.mnemonic()), Some(op));
        }
    }

    #[test]
    fn cmp_eval() {
        assert!(CmpPred::Lt.eval(1, 2));
        assert!(!CmpPred::Lt.eval(2, 2));
        assert!(CmpPred::Le.eval(2, 2));
        assert!(CmpPred::Ne.eval(1.0, 2.0));
        assert!(CmpPred::Ge.eval(3, 3));
        assert!(CmpPred::Gt.eval(4, 3));
        assert!(CmpPred::Eq.eval("a", "a"));
    }

    #[test]
    fn terminator_successors() {
        let t = Terminator::CondBr {
            cond: Value::bool(true),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        };
        let succ: Vec<_> = t.successors().collect();
        assert_eq!(succ, vec![BlockId(1), BlockId(2)]);
        assert_eq!(Terminator::Ret(None).successors().count(), 0);
        assert_eq!(Terminator::Br(BlockId(0)).successors().count(), 1);
    }

    #[test]
    fn operand_visit() {
        let inst = Inst {
            kind: InstKind::Bin {
                op: BinOp::Add,
                lhs: Value::int(1),
                rhs: Value::int(2),
            },
            block: BlockId(0),
        };
        let mut n = 0;
        inst.for_each_operand(|_| n += 1);
        assert_eq!(n, 2);
    }
}
