//! Parser for the textual IR format produced by [`crate::printer`].
//!
//! The grammar is line-oriented; see the printer docs for examples. The
//! parser is used by tests (round-trip properties) and by the quickstart
//! example, which builds a program from embedded IR text.

use crate::function::{BasicBlock, BlockId, Function, ParamId};
use crate::inst::{BinOp, Callee, CmpPred, Inst, InstId, InstKind, Terminator, UnOp};
use crate::module::Module;
use crate::types::Type;
use crate::value::{Const, Value};
use std::collections::HashMap;
use std::fmt;

/// A parse failure with a 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

/// Parse a whole module.
pub fn parse_module(text: &str) -> Result<Module, ParseError> {
    let mut module = Module::new("parsed");
    let lines: Vec<&str> = text.lines().collect();
    let mut i = 0;
    while i < lines.len() {
        let raw = lines[i];
        // The printer emits the module name as a `; module NAME` header.
        if let Some(name) = raw.trim().strip_prefix("; module ") {
            module.name = name.trim().to_string();
            i += 1;
            continue;
        }
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            i += 1;
            continue;
        }
        if let Some(rest) = line.strip_prefix("extern @") {
            // extern @name(arity) -> ty
            let (name, rest) = rest.split_once('(').ok_or_else(|| ParseError {
                line: i + 1,
                message: "malformed extern".into(),
            })?;
            let (arity_s, rest) = rest.split_once(')').ok_or_else(|| ParseError {
                line: i + 1,
                message: "malformed extern".into(),
            })?;
            let arity: usize = arity_s.trim().parse().map_err(|_| ParseError {
                line: i + 1,
                message: "bad extern arity".into(),
            })?;
            let ty_s = rest.trim().strip_prefix("->").ok_or_else(|| ParseError {
                line: i + 1,
                message: "extern missing ->".into(),
            })?;
            let ret_ty = Type::from_mnemonic(ty_s.trim()).ok_or_else(|| ParseError {
                line: i + 1,
                message: format!("unknown type {ty_s}"),
            })?;
            module.declare_external(name.trim(), arity, ret_ty);
            i += 1;
        } else if line.starts_with("func @") {
            let (func, consumed) = parse_function(&lines, i)?;
            module.add_function(func);
            i = consumed;
        } else {
            return err(i + 1, format!("unexpected line: {line}"));
        }
    }
    resolve_callees(&mut module);
    Ok(module)
}

/// Parse a single function (convenience for tests).
pub fn parse_function_text(text: &str) -> Result<Function, ParseError> {
    let lines: Vec<&str> = text.lines().collect();
    let mut start = 0;
    while start < lines.len() && strip_comment(lines[start]).trim().is_empty() {
        start += 1;
    }
    let (f, _) = parse_function(&lines, start)?;
    Ok(f)
}

fn strip_comment(line: &str) -> &str {
    match line.find(';') {
        Some(pos) => &line[..pos],
        None => line,
    }
}

/// One not-yet-resolved instruction occurrence.
struct PendingInst {
    printed_id: Option<u32>,
    kind_text: String,
    block: BlockId,
    line: usize,
}

enum PendingTermKind {
    Br(BlockId),
    CondBr {
        cond: String,
        then_bb: BlockId,
        else_bb: BlockId,
    },
    Ret(Option<String>),
    Unreachable,
}

struct PendingTerm {
    kind: PendingTermKind,
    block: BlockId,
    line: usize,
}

fn parse_function(lines: &[&str], start: usize) -> Result<(Function, usize), ParseError> {
    let header = strip_comment(lines[start]).trim();
    let rest = header.strip_prefix("func @").ok_or_else(|| ParseError {
        line: start + 1,
        message: "expected func".into(),
    })?;
    let (name, rest) = rest.split_once('(').ok_or_else(|| ParseError {
        line: start + 1,
        message: "func missing (".into(),
    })?;
    let (params_s, rest) = rest.rsplit_once(')').ok_or_else(|| ParseError {
        line: start + 1,
        message: "func missing )".into(),
    })?;
    let mut params = Vec::new();
    for p in params_s.split(',') {
        let p = p.trim();
        if p.is_empty() {
            continue;
        }
        let p = p.strip_prefix('%').ok_or_else(|| ParseError {
            line: start + 1,
            message: format!("param missing %: {p}"),
        })?;
        let (pname, pty) = p.split_once(':').ok_or_else(|| ParseError {
            line: start + 1,
            message: format!("param missing type: {p}"),
        })?;
        let ty = Type::from_mnemonic(pty.trim()).ok_or_else(|| ParseError {
            line: start + 1,
            message: format!("unknown type {pty}"),
        })?;
        params.push((pname.trim().to_string(), ty));
    }
    let rest = rest.trim();
    let ret_s = rest
        .strip_prefix("->")
        .ok_or_else(|| ParseError {
            line: start + 1,
            message: "func missing ->".into(),
        })?
        .trim()
        .trim_end_matches('{')
        .trim();
    let ret_ty = Type::from_mnemonic(ret_s).ok_or_else(|| ParseError {
        line: start + 1,
        message: format!("unknown return type {ret_s}"),
    })?;

    let mut func = Function::new(name.trim(), params, ret_ty);
    let mut pending: Vec<PendingInst> = Vec::new();
    let mut terms: Vec<PendingTerm> = Vec::new();
    let mut current: Option<BlockId> = None;
    let mut max_block: i64 = -1;

    let mut i = start + 1;
    loop {
        if i >= lines.len() {
            return err(start + 1, "unterminated function body");
        }
        let lineno = i + 1;
        let line = strip_comment(lines[i]).trim().to_string();
        i += 1;
        if line.is_empty() {
            continue;
        }
        if line == "}" {
            break;
        }
        if let Some(label) = line.strip_suffix(':') {
            let bid = parse_block_label(label.trim(), lineno)?;
            while func.blocks.len() <= bid.index() {
                func.blocks.push(BasicBlock::new());
            }
            max_block = max_block.max(bid.0 as i64);
            current = Some(bid);
            continue;
        }
        let block = current.ok_or_else(|| ParseError {
            line: lineno,
            message: "instruction before first block label".into(),
        })?;

        // Terminators.
        if let Some(t) = line.strip_prefix("br ") {
            let target = parse_block_label(t.trim(), lineno)?;
            max_block = max_block.max(target.0 as i64);
            terms.push(PendingTerm {
                kind: PendingTermKind::Br(target),
                block,
                line: lineno,
            });
            continue;
        }
        if let Some(t) = line.strip_prefix("cond_br ") {
            let parts: Vec<&str> = t.split(',').map(str::trim).collect();
            if parts.len() != 3 {
                return err(lineno, "cond_br expects cond, then, else");
            }
            let then_bb = parse_block_label(parts[1], lineno)?;
            let else_bb = parse_block_label(parts[2], lineno)?;
            max_block = max_block.max(then_bb.0.max(else_bb.0) as i64);
            terms.push(PendingTerm {
                kind: PendingTermKind::CondBr {
                    cond: parts[0].to_string(),
                    then_bb,
                    else_bb,
                },
                block,
                line: lineno,
            });
            continue;
        }
        if line == "ret" {
            terms.push(PendingTerm {
                kind: PendingTermKind::Ret(None),
                block,
                line: lineno,
            });
            continue;
        }
        if let Some(v) = line.strip_prefix("ret ") {
            terms.push(PendingTerm {
                kind: PendingTermKind::Ret(Some(v.trim().to_string())),
                block,
                line: lineno,
            });
            continue;
        }
        if line == "unreachable" {
            terms.push(PendingTerm {
                kind: PendingTermKind::Unreachable,
                block,
                line: lineno,
            });
            continue;
        }

        // Instructions, possibly with result assignment.
        let (printed_id, kind_text) = match line.split_once('=') {
            Some((lhs, rhs)) if lhs.trim().starts_with('%') => {
                let id_s = lhs.trim().trim_start_matches('%');
                let id: u32 = id_s.parse().map_err(|_| ParseError {
                    line: lineno,
                    message: format!("bad result id %{id_s}"),
                })?;
                (Some(id), rhs.trim().to_string())
            }
            _ => (None, line),
        };
        pending.push(PendingInst {
            printed_id,
            kind_text,
            block,
            line: lineno,
        });
    }

    while func.blocks.len() <= max_block as usize {
        func.blocks.push(BasicBlock::new());
    }

    // Map printed ids to arena ids (text order defines the new arena order).
    let mut id_map: HashMap<u32, InstId> = HashMap::new();
    for (idx, p) in pending.iter().enumerate() {
        if let Some(pid) = p.printed_id {
            id_map.insert(pid, InstId(idx as u32));
        }
    }
    let param_index: HashMap<String, ParamId> = func
        .params
        .iter()
        .enumerate()
        .map(|(i, (n, _))| (n.clone(), ParamId(i as u32)))
        .collect();

    let parse_value = |tok: &str, lineno: usize| -> Result<Value, ParseError> {
        parse_value_token(tok, &id_map, &param_index, lineno)
    };

    for p in &pending {
        let kind = parse_inst_kind(&p.kind_text, p.line, &parse_value)?;
        let iid = InstId(func.insts.len() as u32);
        func.insts.push(Inst {
            kind,
            block: p.block,
        });
        func.blocks[p.block.index()].insts.push(iid);
    }
    for t in terms {
        let term = match t.kind {
            PendingTermKind::Br(b) => Terminator::Br(b),
            PendingTermKind::CondBr {
                cond,
                then_bb,
                else_bb,
            } => Terminator::CondBr {
                cond: parse_value(&cond, t.line)?,
                then_bb,
                else_bb,
            },
            PendingTermKind::Ret(None) => Terminator::Ret(None),
            PendingTermKind::Ret(Some(v)) => Terminator::Ret(Some(parse_value(&v, t.line)?)),
            PendingTermKind::Unreachable => Terminator::Unreachable,
        };
        let blk = func.block_mut(t.block);
        if blk.term.is_some() {
            return err(t.line, format!("block {} terminated twice", t.block));
        }
        blk.term = Some(term);
    }
    Ok((func, i))
}

fn parse_block_label(s: &str, line: usize) -> Result<BlockId, ParseError> {
    let n = s.strip_prefix("bb").ok_or_else(|| ParseError {
        line,
        message: format!("expected block label, got {s}"),
    })?;
    let id: u32 = n.parse().map_err(|_| ParseError {
        line,
        message: format!("bad block id {s}"),
    })?;
    Ok(BlockId(id))
}

fn parse_value_token(
    tok: &str,
    id_map: &HashMap<u32, InstId>,
    params: &HashMap<String, ParamId>,
    line: usize,
) -> Result<Value, ParseError> {
    let tok = tok.trim();
    if tok == "true" {
        return Ok(Value::bool(true));
    }
    if tok == "false" {
        return Ok(Value::bool(false));
    }
    if let Some(name) = tok.strip_prefix('%') {
        if let Ok(pid) = name.parse::<u32>() {
            return id_map
                .get(&pid)
                .copied()
                .map(Value::Inst)
                .ok_or_else(|| ParseError {
                    line,
                    message: format!("undefined value %{pid}"),
                });
        }
        return params
            .get(name)
            .copied()
            .map(Value::Param)
            .ok_or_else(|| ParseError {
                line,
                message: format!("unknown parameter %{name}"),
            });
    }
    if tok.contains('.') || tok.contains('e') || tok.contains("inf") || tok.contains("nan") {
        if let Ok(f) = tok.parse::<f64>() {
            return Ok(Value::Const(Const::Float(f)));
        }
    }
    tok.parse::<i64>()
        .map(|v| Value::Const(Const::Int(v)))
        .map_err(|_| ParseError {
            line,
            message: format!("bad value token: {tok}"),
        })
}

fn parse_inst_kind(
    text: &str,
    line: usize,
    parse_value: &impl Fn(&str, usize) -> Result<Value, ParseError>,
) -> Result<InstKind, ParseError> {
    let (op, rest) = text
        .split_once(' ')
        .map(|(a, b)| (a, b.trim()))
        .unwrap_or((text, ""));
    if let Some(bop) = BinOp::from_mnemonic(op) {
        let (a, b) = split2(rest, line)?;
        return Ok(InstKind::Bin {
            op: bop,
            lhs: parse_value(a, line)?,
            rhs: parse_value(b, line)?,
        });
    }
    if let Some(uop) = UnOp::from_mnemonic(op) {
        return Ok(InstKind::Un {
            op: uop,
            operand: parse_value(rest, line)?,
        });
    }
    match op {
        "cmp" => {
            let (pred_s, rest) = rest.split_once(' ').ok_or_else(|| ParseError {
                line,
                message: "cmp missing predicate".into(),
            })?;
            let pred = CmpPred::from_mnemonic(pred_s).ok_or_else(|| ParseError {
                line,
                message: format!("unknown predicate {pred_s}"),
            })?;
            let (a, b) = split2(rest.trim(), line)?;
            Ok(InstKind::Cmp {
                pred,
                lhs: parse_value(a, line)?,
                rhs: parse_value(b, line)?,
            })
        }
        "select" => {
            let parts: Vec<&str> = rest.split(',').map(str::trim).collect();
            if parts.len() != 3 {
                return err(line, "select expects 3 operands");
            }
            Ok(InstKind::Select {
                cond: parse_value(parts[0], line)?,
                then_v: parse_value(parts[1], line)?,
                else_v: parse_value(parts[2], line)?,
            })
        }
        "alloca" => Ok(InstKind::Alloca {
            words: parse_value(rest, line)?,
        }),
        "load" => {
            let (ty_s, addr_s) = rest.split_once(',').ok_or_else(|| ParseError {
                line,
                message: "load expects type, addr".into(),
            })?;
            let ty = Type::from_mnemonic(ty_s.trim()).ok_or_else(|| ParseError {
                line,
                message: format!("unknown type {ty_s}"),
            })?;
            Ok(InstKind::Load {
                addr: parse_value(addr_s.trim(), line)?,
                ty,
            })
        }
        "store" => {
            let (v, addr) = split2(rest, line)?;
            Ok(InstKind::Store {
                addr: parse_value(addr, line)?,
                value: parse_value(v, line)?,
            })
        }
        "gep" => {
            // gep base[index * stride]
            let (base_s, rest) = rest.split_once('[').ok_or_else(|| ParseError {
                line,
                message: "gep missing [".into(),
            })?;
            let inner = rest.trim_end_matches(']');
            let (idx_s, stride_s) = inner.split_once('*').ok_or_else(|| ParseError {
                line,
                message: "gep missing stride".into(),
            })?;
            let stride: u32 = stride_s.trim().parse().map_err(|_| ParseError {
                line,
                message: "bad gep stride".into(),
            })?;
            Ok(InstKind::Gep {
                base: parse_value(base_s.trim(), line)?,
                index: parse_value(idx_s.trim(), line)?,
                stride,
            })
        }
        "call" => {
            // call ty @name(args)
            let (ty_s, rest) = rest.split_once(' ').ok_or_else(|| ParseError {
                line,
                message: "call missing type".into(),
            })?;
            let ret_ty = Type::from_mnemonic(ty_s.trim()).ok_or_else(|| ParseError {
                line,
                message: format!("unknown type {ty_s}"),
            })?;
            let rest = rest.trim();
            let name = rest.strip_prefix('@').ok_or_else(|| ParseError {
                line,
                message: "call missing @callee".into(),
            })?;
            let (name, args_s) = name.split_once('(').ok_or_else(|| ParseError {
                line,
                message: "call missing (".into(),
            })?;
            let args_s = args_s.trim_end_matches(')');
            let mut args = Vec::new();
            for a in args_s.split(',') {
                let a = a.trim();
                if a.is_empty() {
                    continue;
                }
                args.push(parse_value(a, line)?);
            }
            // All callees parse as external; `resolve_callees` rewrites
            // references to functions defined in the module.
            Ok(InstKind::Call {
                callee: Callee::External(name.trim().to_string()),
                args,
                ret_ty,
            })
        }
        "phi" => {
            // phi ty [bbA -> v, bbB -> v]
            let (ty_s, rest) = rest.split_once(' ').ok_or_else(|| ParseError {
                line,
                message: "phi missing type".into(),
            })?;
            let ty = Type::from_mnemonic(ty_s.trim()).ok_or_else(|| ParseError {
                line,
                message: format!("unknown type {ty_s}"),
            })?;
            let inner = rest.trim().trim_start_matches('[').trim_end_matches(']');
            let mut incomings = Vec::new();
            for part in inner.split(',') {
                let part = part.trim();
                if part.is_empty() {
                    continue;
                }
                let (b, v) = part.split_once("->").ok_or_else(|| ParseError {
                    line,
                    message: "phi incoming missing ->".into(),
                })?;
                incomings.push((
                    parse_block_label(b.trim(), line)?,
                    parse_value(v.trim(), line)?,
                ));
            }
            Ok(InstKind::Phi { ty, incomings })
        }
        other => err(line, format!("unknown instruction {other}")),
    }
}

fn split2(s: &str, line: usize) -> Result<(&str, &str), ParseError> {
    s.split_once(',')
        .map(|(a, b)| (a.trim(), b.trim()))
        .ok_or_else(|| ParseError {
            line,
            message: format!("expected two operands: {s}"),
        })
}

/// Rewrite `Callee::External(name)` to `Callee::Internal` where the module
/// defines a function of that name.
fn resolve_callees(module: &mut Module) {
    let names: HashMap<String, crate::function::FunctionId> = module
        .functions
        .iter()
        .enumerate()
        .map(|(i, f)| (f.name.clone(), crate::function::FunctionId(i as u32)))
        .collect();
    for f in &mut module.functions {
        for inst in &mut f.insts {
            if let InstKind::Call { callee, .. } = &mut inst.kind {
                if let Callee::External(name) = callee {
                    if let Some(&fid) = names.get(name.as_str()) {
                        *callee = Callee::Internal(fid);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::printer::{print_function, print_module};

    #[test]
    fn round_trip_simple() {
        let mut b = FunctionBuilder::new(
            "f",
            vec![("a".into(), Type::I64), ("b".into(), Type::I64)],
            Type::I64,
        );
        let s = b.add(b.param(0), b.param(1));
        let t = b.mul(s, 3i64);
        b.ret(Some(t));
        let f = b.finish();
        let text = print_function(&f, None);
        let parsed = parse_function_text(&text).unwrap();
        assert_eq!(print_function(&parsed, None), text);
    }

    #[test]
    fn round_trip_loop_with_memory() {
        let mut b = FunctionBuilder::new("sum", vec![("n".into(), Type::I64)], Type::I64);
        let buf = b.alloca(b.param(0));
        b.for_loop(0i64, b.param(0), 1i64, |b, iv| {
            let slot = b.gep(buf, iv, 1);
            b.store(slot, iv);
        });
        let first = b.load(buf, Type::I64);
        b.ret(Some(first));
        let f = b.finish();
        let text = print_function(&f, None);
        let parsed = parse_function_text(&text).unwrap();
        crate::verify::verify_function(&parsed).unwrap();
        assert_eq!(print_function(&parsed, None), text);
    }

    #[test]
    fn round_trip_module_calls() {
        let mut m = Module::new("m");
        m.declare_external("pt_work_flops", 1, Type::Void);
        let mut b = FunctionBuilder::new("leaf", vec![("x".into(), Type::I64)], Type::I64);
        let d = b.mul(b.param(0), b.param(0));
        b.ret(Some(d));
        let leaf = m.add_function(b.finish());
        let mut b = FunctionBuilder::new("main", vec![], Type::Void);
        let r = b.call(leaf, vec![Value::int(4)], Type::I64);
        b.call_external("pt_work_flops", vec![r], Type::Void);
        b.ret(None);
        m.add_function(b.finish());
        let text = print_module(&m);
        let parsed = parse_module(&text).unwrap();
        crate::verify::verify_module(&parsed).unwrap();
        // Call to `leaf` must resolve to an internal function again.
        let main = parsed.function_by_name("main").unwrap();
        let callees = parsed.callees(main);
        assert_eq!(callees.len(), 1);
        assert_eq!(parsed.function(callees[0]).name, "leaf");
        assert_eq!(print_module(&parsed), text);
    }

    #[test]
    fn parse_errors_are_located() {
        let text = "func @f() -> void {\nbb0:\n  bogus %1, %2\n  ret\n}\n";
        let e = parse_module(text).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("unknown instruction"));
    }

    #[test]
    fn parse_if_then_else() {
        let mut b = FunctionBuilder::new("sel", vec![("a".into(), Type::I64)], Type::I64);
        let slot = b.alloca(1i64);
        let c = b.cmp(CmpPred::Lt, b.param(0), 10i64);
        b.if_then_else(
            c,
            |b| b.store(slot, Value::int(1)),
            |b| b.store(slot, Value::int(2)),
        );
        let v = b.load(slot, Type::I64);
        b.ret(Some(v));
        let f = b.finish();
        let text = print_function(&f, None);
        let parsed = parse_function_text(&text).unwrap();
        crate::verify::verify_function(&parsed).unwrap();
        assert_eq!(print_function(&parsed, None), text);
    }

    #[test]
    fn float_and_bool_constants() {
        let text = "func @g() -> f64 {\nbb0:\n  %0 = select true, 1.5, 2.5\n  ret %0\n}\n";
        let f = parse_function_text(text).unwrap();
        crate::verify::verify_function(&f).unwrap();
    }
}
