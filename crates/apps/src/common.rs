//! Shared machinery for building the mini-applications.
//!
//! Both mini-apps follow the same conventions:
//!
//! * a single "domain" memory block whose header holds scalar state and the
//!   base addresses of dynamically sized field arrays (pointer indirection
//!   through memory — exactly the abstraction pattern §3.1 of the paper
//!   argues defeats static analysis);
//! * marked parameters read through `pt_param_i64` (the paper's
//!   `register_variable` idiom) and the implicit `p` obtained from
//!   `MPI_Comm_size`;
//! * work charged through `pt_work_flops` (compute-bound) and
//!   `pt_work_mem` (memory-bound; subject to the §C1 contention model).

use pt_ir::{BinOp, FunctionBuilder, FunctionId, Module, Type, Value};

/// A parameter of an application.
#[derive(Debug, Clone)]
pub struct ParamSpec {
    pub name: String,
    /// Value used during the dynamic taint run (small, representative —
    /// §6: "size 5 and 8 MPI ranks" for LULESH).
    pub taint_run_value: i64,
    /// Default value for measurement sweeps when the parameter is not
    /// being varied.
    pub default: i64,
}

impl ParamSpec {
    pub fn new(name: &str, taint_run_value: i64, default: i64) -> ParamSpec {
        ParamSpec {
            name: name.into(),
            taint_run_value,
            default,
        }
    }
}

/// A fully built application.
pub struct AppSpec {
    pub name: String,
    pub module: Module,
    pub entry: String,
    /// All marked parameters, in registration (taint-index) order. The
    /// implicit `p` must be included so parameter indices are stable.
    pub params: Vec<ParamSpec>,
    /// The parameters used as modeling axes (a typical study: `p`, `size`).
    pub model_params: Vec<String>,
}

impl AppSpec {
    /// `(name, value)` pairs for the taint run.
    pub fn taint_run_params(&self) -> Vec<(String, i64)> {
        self.params
            .iter()
            .map(|p| (p.name.clone(), p.taint_run_value))
            .collect()
    }

    /// `(name, value)` pairs with defaults, overridden by `overrides`.
    pub fn sweep_params(&self, overrides: &[(&str, i64)]) -> Vec<(String, i64)> {
        self.params
            .iter()
            .map(|p| {
                let v = overrides
                    .iter()
                    .find(|(n, _)| *n == p.name)
                    .map(|(_, v)| *v)
                    .unwrap_or(p.default);
                (p.name.clone(), v)
            })
            .collect()
    }

    /// Index of a parameter in taint order.
    pub fn param_index(&self, name: &str) -> Option<usize> {
        self.params.iter().position(|p| p.name == name)
    }
}

/// Emit the canonical field getter `name(d: ptr, i: i64) -> f64`:
/// `return *(d[slot] + i)` — base pointer loaded from the header.
pub fn add_field_getter(module: &mut Module, name: &str, slot: i64) -> FunctionId {
    let mut b = FunctionBuilder::new(
        name,
        vec![("d".into(), Type::Ptr), ("i".into(), Type::I64)],
        Type::F64,
    );
    let base_slot = b.gep(b.param(0), Value::int(slot), 1);
    let base = b.load(base_slot, Type::Ptr);
    let addr = b.gep(base, b.param(1), 1);
    let v = b.load(addr, Type::F64);
    b.ret(Some(v));
    module.add_function(b.finish())
}

/// Emit the canonical field setter `name(d: ptr, i: i64, v: f64)`.
pub fn add_field_setter(module: &mut Module, name: &str, slot: i64) -> FunctionId {
    let mut b = FunctionBuilder::new(
        name,
        vec![
            ("d".into(), Type::Ptr),
            ("i".into(), Type::I64),
            ("v".into(), Type::F64),
        ],
        Type::Void,
    );
    let base_slot = b.gep(b.param(0), Value::int(slot), 1);
    let base = b.load(base_slot, Type::Ptr);
    let addr = b.gep(base, b.param(1), 1);
    b.store(addr, b.param(2));
    b.ret(None);
    module.add_function(b.finish())
}

/// Emit a field accumulator `name(d, i, v)`: `field[i] += v`.
pub fn add_field_accumulator(module: &mut Module, name: &str, slot: i64) -> FunctionId {
    let mut b = FunctionBuilder::new(
        name,
        vec![
            ("d".into(), Type::Ptr),
            ("i".into(), Type::I64),
            ("v".into(), Type::F64),
        ],
        Type::Void,
    );
    let base_slot = b.gep(b.param(0), Value::int(slot), 1);
    let base = b.load(base_slot, Type::Ptr);
    let addr = b.gep(base, b.param(1), 1);
    let old = b.load(addr, Type::F64);
    let new = b.add(old, b.param(2));
    b.store(addr, new);
    b.ret(None);
    module.add_function(b.finish())
}

/// Emit a scalar header getter `name(d: ptr) -> i64`.
pub fn add_scalar_getter(module: &mut Module, name: &str, slot: i64) -> FunctionId {
    let mut b = FunctionBuilder::new(name, vec![("d".into(), Type::Ptr)], Type::I64);
    let addr = b.gep(b.param(0), Value::int(slot), 1);
    let v = b.load(addr, Type::I64);
    b.ret(Some(v));
    module.add_function(b.finish())
}

/// Emit a scalar header setter `name(d: ptr, v: i64)`.
pub fn add_scalar_setter(module: &mut Module, name: &str, slot: i64) -> FunctionId {
    let mut b = FunctionBuilder::new(
        name,
        vec![("d".into(), Type::Ptr), ("v".into(), Type::I64)],
        Type::Void,
    );
    let addr = b.gep(b.param(0), Value::int(slot), 1);
    b.store(addr, b.param(1));
    b.ret(None);
    module.add_function(b.finish())
}

/// Emit a small pure element-math helper with a fixed-trip loop (statically
/// constant cost — the kind of function the static analysis prunes, §5.1).
/// `trips` iterations charging `flops_per_trip` each; returns a float.
pub fn add_elem_math(
    module: &mut Module,
    name: &str,
    trips: i64,
    flops_per_trip: i64,
) -> FunctionId {
    let mut b = FunctionBuilder::new(name, vec![("x".into(), Type::F64)], Type::F64);
    let acc = b.alloca(1i64);
    b.store(acc, b.param(0));
    b.for_loop(0i64, trips, 1i64, |b, iv| {
        let cur = b.load(acc, Type::F64);
        let ivf = b.un(pt_ir::UnOp::IntToFloat, iv);
        let nxt = b.add(cur, ivf);
        b.store(acc, nxt);
        b.call_external(
            "pt_work_flops",
            vec![Value::int(flops_per_trip)],
            Type::Void,
        );
    });
    let out = b.load(acc, Type::F64);
    b.ret(Some(out));
    module.add_function(b.finish())
}

/// Emit a trivial loop-free helper (constant; padding families mirroring
/// the accessor-heavy structure of real C++ codes).
pub fn add_tiny_helper(module: &mut Module, name: &str, flops: i64) -> FunctionId {
    let mut b = FunctionBuilder::new(name, vec![("x".into(), Type::F64)], Type::F64);
    let y = b.mul(b.param(0), Value::float(1.0000001));
    let z = b.add(y, Value::float(0.5));
    if flops > 0 {
        b.call_external("pt_work_flops", vec![Value::int(flops)], Type::Void);
    }
    b.ret(Some(z));
    module.add_function(b.finish())
}

/// Emit an *uncalled* function with a parametric-looking loop: the static
/// analysis cannot prune it (unknown trip count), but the taint run never
/// executes it — "pruned dynamically" in Table 2.
pub fn add_dead_parametric(module: &mut Module, name: &str) -> FunctionId {
    let mut b = FunctionBuilder::new(name, vec![("n".into(), Type::I64)], Type::Void);
    b.for_loop(0i64, b.param(0), 1i64, |b, _| {
        b.call_external("pt_work_flops", vec![Value::int(10)], Type::Void);
    });
    b.ret(None);
    module.add_function(b.finish())
}

/// Emit an integer-array getter `name(d: ptr, i: i64) -> i64` (e.g.
/// `regElemSize` / `regNumList` in LULESH).
pub fn add_iarray_getter(module: &mut Module, name: &str, slot: i64) -> FunctionId {
    let mut b = FunctionBuilder::new(
        name,
        vec![("d".into(), Type::Ptr), ("i".into(), Type::I64)],
        Type::I64,
    );
    let base_slot = b.gep(b.param(0), Value::int(slot), 1);
    let base = b.load(base_slot, Type::Ptr);
    let addr = b.gep(base, b.param(1), 1);
    let v = b.load(addr, Type::I64);
    b.ret(Some(v));
    module.add_function(b.finish())
}

/// Emit an integer-array setter `name(d: ptr, i: i64, v: i64)`.
pub fn add_iarray_setter(module: &mut Module, name: &str, slot: i64) -> FunctionId {
    let mut b = FunctionBuilder::new(
        name,
        vec![
            ("d".into(), Type::Ptr),
            ("i".into(), Type::I64),
            ("v".into(), Type::I64),
        ],
        Type::Void,
    );
    let base_slot = b.gep(b.param(0), Value::int(slot), 1);
    let base = b.load(base_slot, Type::Ptr);
    let addr = b.gep(base, b.param(1), 1);
    b.store(addr, b.param(2));
    b.ret(None);
    module.add_function(b.finish())
}

/// Integer helper: `a*b` via builder (readability in app code).
pub fn imul(b: &mut FunctionBuilder, x: Value, y: Value) -> Value {
    b.bin(BinOp::Mul, x, y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_verify() {
        let mut m = Module::new("t");
        add_field_getter(&mut m, "Domain_x", 16);
        add_field_setter(&mut m, "Domain_set_x", 16);
        add_field_accumulator(&mut m, "Domain_add_x", 16);
        add_scalar_getter(&mut m, "Domain_numElem", 0);
        add_scalar_setter(&mut m, "Domain_set_numElem", 0);
        add_elem_math(&mut m, "CalcElemVolume", 8, 12);
        add_tiny_helper(&mut m, "CBRT", 2);
        add_dead_parametric(&mut m, "VerifyAndWriteFinalOutput");
        assert!(pt_ir::verify_module(&m).is_ok());
        assert_eq!(m.functions.len(), 8);
    }

    #[test]
    fn param_spec_overrides() {
        let spec = AppSpec {
            name: "t".into(),
            module: Module::new("t"),
            entry: "main".into(),
            params: vec![ParamSpec::new("size", 5, 30), ParamSpec::new("p", 8, 8)],
            model_params: vec!["p".into(), "size".into()],
        };
        assert_eq!(
            spec.taint_run_params(),
            vec![("size".to_string(), 5), ("p".to_string(), 8)]
        );
        let sweep = spec.sweep_params(&[("size", 40)]);
        assert_eq!(sweep[0], ("size".to_string(), 40));
        assert_eq!(sweep[1], ("p".to_string(), 8));
        assert_eq!(spec.param_index("p"), Some(1));
        assert_eq!(spec.param_index("nope"), None);
    }
}
