//! Mini-SecSrv: a request-processing service workload for the security
//! taint policy (source/sink/sanitizer lattice).
//!
//! The HPC mini-apps exercise the paper's parameter-label policy; this app
//! exercises the *pluggable* side of the policy seam. It is a small
//! network-service skeleton: `requests` incoming messages are parsed
//! (every payload passes through the `pt_taint_source` intrinsic — the
//! "untrusted input" source, id 1), alternately sanitized
//! (`pt_sanitize` on even request indices) or forwarded raw, and every
//! message reaches the audit sink (`pt_sink_check`, sink id 1). A second
//! sink (id 2) checks a value derived from the *marked parameter*
//! `requests` joined with source id 2 — its record shows a parameter base
//! and a source base meeting in one label.
//!
//! Ground truth under the security policy with an even taint-run
//! `requests = R`:
//!
//! * sink 1: `checks == R`, `violations == R/2` (the unsanitized odd
//!   indices), params = `{src#1}`;
//! * sink 2: `checks == 1`, `violations == 1`, params =
//!   `{requests, src#2}`.
//!
//! Under the default param-set policy all three intrinsics are identity
//! pass-throughs, no sink records exist, and the run is bit-identical to
//! a build of the same module without the intrinsic calls' label effects —
//! the zero-carve-out contract the differential suites enforce.
//!
//! The work content stays parametric so the perf-model side is
//! non-trivial: the per-request kernel loops over `payload`, and the
//! batch aggregation does an `MPI_Allreduce` — so both marked parameters
//! and the implicit `p` appear in the model exactly as in the HPC apps.
//!
//! Parameter indices (taint order): 0 = requests, 1 = payload,
//! 2 = p (implicit).

use crate::common::{add_dead_parametric, add_scalar_getter, add_tiny_helper, AppSpec, ParamSpec};
use pt_ir::{BinOp, CmpPred, FunctionBuilder, Module, Type, Value};

// ---- service header layout (word offsets) --------------------------------
const REQS: i64 = 0;
const PAYLOAD: i64 = 1;
const P_SLOT: i64 = 2;
const RANK: i64 = 3;
const HEADER_WORDS: i64 = 16;

/// Audit sink for request payloads (every request, sanitized or not).
pub const SINK_AUDIT: i64 = 1;
/// Config sink checked once with a parameter-tainted value.
pub const SINK_CONFIG: i64 = 2;
/// Source id for untrusted request payloads.
pub const SOURCE_REQUEST: i64 = 1;
/// Source id joined into the config value.
pub const SOURCE_CONFIG: i64 = 2;

/// Build the mini security-service application.
pub fn build() -> AppSpec {
    let mut m = Module::new("mini-secsrv");

    let srv_requests = add_scalar_getter(&mut m, "srv_requests", REQS);
    let srv_payload = add_scalar_getter(&mut m, "srv_payload", PAYLOAD);
    // Small pure helpers (statically constant — pruned by the static
    // stage, mirroring the accessor families of the HPC apps).
    for h in ["hash_fnv", "checksum16", "hex_decode", "header_len"] {
        add_tiny_helper(&mut m, h, 2);
    }
    // Linked-but-unused administration paths (pruned dynamically).
    for dead in ["admin_console", "debug_dump", "replay_journal"] {
        add_dead_parametric(&mut m, dead);
    }

    // parse_request(d, i) -> i64: synthesize the i-th payload word and
    // mark it untrusted at the trust boundary (source id 1).
    let parse_request = {
        let mut b = FunctionBuilder::new(
            "parse_request",
            vec![("d".into(), Type::Ptr), ("i".into(), Type::I64)],
            Type::I64,
        );
        let i = b.param(1);
        let scaled = b.bin(BinOp::Mul, i, 31i64);
        let raw = b.add(scaled, 7i64);
        let tainted = b.call_external(
            "pt_taint_source",
            vec![raw, Value::int(SOURCE_REQUEST)],
            Type::I64,
        );
        b.call_external("pt_work_flops", vec![Value::int(12)], Type::Void);
        b.ret(Some(tainted));
        m.add_function(b.finish())
    };

    // sanitize_field(x) -> i64: the validator — under the security policy
    // the returned value's label is bottom.
    let sanitize_field = {
        let mut b =
            FunctionBuilder::new("sanitize_field", vec![("x".into(), Type::I64)], Type::I64);
        let clean = b.call_external("pt_sanitize", vec![b.param(0)], Type::I64);
        b.call_external("pt_work_flops", vec![Value::int(8)], Type::Void);
        b.ret(Some(clean));
        m.add_function(b.finish())
    };

    // audit_sink(x) -> i64: the audit log write — the sink every request
    // payload must reach.
    let audit_sink = {
        let mut b = FunctionBuilder::new("audit_sink", vec![("x".into(), Type::I64)], Type::I64);
        let out = b.call_external(
            "pt_sink_check",
            vec![b.param(0), Value::int(SINK_AUDIT)],
            Type::I64,
        );
        b.call_external("pt_work_mem", vec![Value::int(4)], Type::Void);
        b.ret(Some(out));
        m.add_function(b.finish())
    };

    // handle_request(d): the per-request kernel — `payload` loop trips, so
    // the model in `payload` is linear per request.
    let handle_request = {
        let mut b =
            FunctionBuilder::new("handle_request", vec![("d".into(), Type::Ptr)], Type::Void);
        let d = b.param(0);
        let payload = b.call(srv_payload, vec![d], Type::I64);
        b.for_loop(0i64, payload, 1i64, |b, _| {
            b.call_external("pt_work_flops", vec![Value::int(64)], Type::Void);
            b.call_external("pt_work_mem", vec![Value::int(16)], Type::Void);
        });
        b.ret(None);
        m.add_function(b.finish())
    };

    // aggregate(d): end-of-batch reduction across ranks (the `p` term).
    let aggregate = {
        let mut b = FunctionBuilder::new("aggregate", vec![("d".into(), Type::Ptr)], Type::Void);
        b.call_external("MPI_Allreduce", vec![Value::int(1)], Type::Void);
        b.ret(None);
        m.add_function(b.finish())
    };

    // ---- main ---------------------------------------------------------------
    {
        let mut b = FunctionBuilder::new("main", vec![], Type::Void);
        let requests = b.call_external("pt_param_i64", vec![Value::int(0)], Type::I64);
        let payload = b.call_external("pt_param_i64", vec![Value::int(1)], Type::I64);

        let d = b.alloca(HEADER_WORDS);
        let pslot = b.gep(d, Value::int(P_SLOT), 1);
        b.call_external("MPI_Comm_size", vec![pslot], Type::Void);
        let rslot = b.gep(d, Value::int(RANK), 1);
        b.call_external("MPI_Comm_rank", vec![rslot], Type::Void);
        for (slot, v) in [(REQS, requests), (PAYLOAD, payload)] {
            let addr = b.gep(d, Value::int(slot), 1);
            b.store(addr, v);
        }

        let n = b.call(srv_requests, vec![d], Type::I64);
        b.for_loop(0i64, n, 1i64, |b, i| {
            let v = b.call(parse_request, vec![d, i], Type::I64);
            // Even request indices go through the validator; odd ones are
            // forwarded raw — the audit sink sees both kinds, so its
            // violation count is exactly the unsanitized half.
            let clean = b.call(sanitize_field, vec![v], Type::I64);
            let parity = b.bin(BinOp::Rem, i, 2i64);
            let even = b.cmp(CmpPred::Eq, parity, 0i64);
            let picked = b.select(even, clean, v);
            b.call(audit_sink, vec![picked], Type::I64);
            b.call(handle_request, vec![d], Type::Void);
        });

        // Config sink: a value carrying both a *parameter* base (requests
        // taints it through `pt_param_i64`) and a *source* base (id 2) —
        // the two halves of the security lattice meeting in one label.
        let cfg = b.call_external(
            "pt_taint_source",
            vec![requests, Value::int(SOURCE_CONFIG)],
            Type::I64,
        );
        b.call_external(
            "pt_sink_check",
            vec![cfg, Value::int(SINK_CONFIG)],
            Type::I64,
        );

        b.call(aggregate, vec![d], Type::Void);
        b.ret(None);
        m.add_function(b.finish());
    }

    pt_ir::verify_module(&m).expect("mini-secsrv verifies");

    AppSpec {
        name: "mini-secsrv".into(),
        module: m,
        entry: "main".into(),
        params: vec![
            // Even taint-run request count: the audit sink's ground-truth
            // violation count is exactly requests/2.
            ParamSpec::new("requests", 8, 64),
            ParamSpec::new("payload", 6, 32),
            ParamSpec::new("p", 4, 4),
        ],
        model_params: vec!["p".into(), "requests".into(), "payload".into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_verifies() {
        let app = build();
        assert!(app.module.function_by_name("parse_request").is_some());
        assert!(app.module.function_by_name("sanitize_field").is_some());
        assert!(app.module.function_by_name("audit_sink").is_some());
        let externs = app.module.used_externals();
        for intrinsic in ["pt_taint_source", "pt_sanitize", "pt_sink_check"] {
            assert!(externs.contains(&intrinsic), "{intrinsic} not referenced");
        }
    }

    #[test]
    fn taint_run_request_count_is_even() {
        let app = build();
        let r = app.params.iter().find(|p| p.name == "requests").unwrap();
        assert_eq!(r.taint_run_value % 2, 0, "ground truth needs an even count");
    }
}
