//! Mini-MILC: a structural reproduction of the `su3_rmd` application from
//! the MIMD Lattice Computation suite (Bernard et al.), built in `pt-ir`.
//!
//! What the evaluation needs from MILC (§6, Tables 2/3, Figure 4, §C2):
//!
//! * a 4-D space-time lattice `nx·ny·nz·nt` distributed over `p` ranks —
//!   nearly every loop runs over the *local volume* `nx·ny·nz·nt / p`, so
//!   both the size parameters and the implicit `p` taint most loops
//!   (Table 3: `p` affects 54 functions, the sizes 53);
//! * the R-algorithm trajectory structure: `warms` warmup and `trajecs`
//!   measured trajectories of `steps` MD steps, each ending in a CG solve
//!   bounded by `niter` — with an `MPI_Allreduce` per CG iteration
//!   (`log p` communication on the critical path);
//! * numerical parameters `mass`, `beta`, `u0` that flow through *data*
//!   only — the taint analysis must prove they never influence control
//!   flow (the paper: findings "identical with the ground truth" of the
//!   manual Bauer/Gottlieb/Hoefler study);
//! * a **gather** whose algorithm switches with the communicator size —
//!   the §C2 qualitative-behavior-change detection case;
//! * a large body of linked-but-unused suite code (188 functions pruned
//!   *dynamically* in Table 2) and hundreds of tiny su3/complex algebra
//!   helpers (pruned statically).
//!
//! Parameter indices (taint order): 0 = nx, 1 = ny, 2 = nz, 3 = nt,
//! 4 = warms, 5 = trajecs, 6 = steps, 7 = niter, 8 = mass, 9 = beta,
//! 10 = u0, 11 = p (implicit).

use crate::common::{
    add_dead_parametric, add_elem_math, add_scalar_getter, add_tiny_helper, AppSpec, ParamSpec,
};
use pt_ir::{CmpPred, FunctionBuilder, FunctionId, Module, Type, Value};
use std::collections::HashMap;

// ---- lattice header layout (word offsets) --------------------------------
const SITES: i64 = 0; // local volume per rank
const NX: i64 = 1;
const NY: i64 = 2;
const NZ: i64 = 3;
const NT: i64 = 4;
const P_SLOT: i64 = 5;
const RANK: i64 = 6;
const NITER: i64 = 7;
const STEPS: i64 = 8;
const WARMS: i64 = 9;
const TRAJECS: i64 = 10;
const MASS: i64 = 11;
const BETA: i64 = 12;
const U0: i64 = 13;
const HEADER_WORDS: i64 = 48;

struct Reg {
    ids: HashMap<String, FunctionId>,
}

impl Reg {
    fn new() -> Reg {
        Reg {
            ids: HashMap::new(),
        }
    }
    fn put(&mut self, name: &str, id: FunctionId) {
        self.ids.insert(name.to_string(), id);
    }
    fn get(&self, name: &str) -> FunctionId {
        *self
            .ids
            .get(name)
            .unwrap_or_else(|| panic!("function {name} not built yet"))
    }
}

/// Emit a site-loop kernel: `helper(); for i < sites { work }`. Unlike
/// LULESH's C++ accessor style, MILC's C kernels inline their su3 algebra
/// (macros and compiler inlining), so the per-site body makes *no* calls —
/// which is exactly why MILC's full-instrumentation overhead is ~23%
/// instead of 45× (Figure 4 vs Figure 3). The helper call outside the loop
/// keeps the call-graph edge (and the census) intact.
fn add_site_kernel(
    m: &mut Module,
    reg: &mut Reg,
    name: &str,
    flops: i64,
    mem: i64,
    helper: Option<&str>,
) -> FunctionId {
    let mut b = FunctionBuilder::new(name, vec![("d".into(), Type::Ptr)], Type::Void);
    let d = b.param(0);
    let sites = b.call(reg.get("lattice_sites"), vec![d], Type::I64);
    if let Some(h) = helper {
        b.call(reg.get(h), vec![Value::float(1.0)], Type::F64);
    }
    b.for_loop(0i64, sites, 1i64, |b, _| {
        if flops > 0 {
            b.call_external("pt_work_flops", vec![Value::int(flops)], Type::Void);
        }
        if mem > 0 {
            b.call_external("pt_work_mem", vec![Value::int(mem)], Type::Void);
        }
    });
    b.ret(None);
    let id = m.add_function(b.finish());
    reg.put(name, id);
    id
}

/// Build the complete mini-MILC su3_rmd application.
pub fn build() -> AppSpec {
    let mut m = Module::new("mini-milc");
    let mut reg = Reg::new();

    // ---- scalar accessors --------------------------------------------------
    for (name, slot) in [
        ("lattice_sites", SITES),
        ("lattice_nx", NX),
        ("lattice_ny", NY),
        ("lattice_nz", NZ),
        ("lattice_nt", NT),
        ("lattice_p", P_SLOT),
        ("lattice_rank", RANK),
        ("lattice_niter", NITER),
        ("lattice_steps", STEPS),
        ("lattice_warms", WARMS),
        ("lattice_trajecs", TRAJECS),
        ("lattice_mass", MASS),
        ("lattice_beta", BETA),
        ("lattice_u0", U0),
    ] {
        reg.put(name, add_scalar_getter(&mut m, name, slot));
    }

    // ---- su3 / complex algebra (statically constant; Table 2's 364) -------
    let su3_ops = [
        "mult_su3_nn",
        "mult_su3_na",
        "mult_su3_an",
        "mult_su3_mat_vec",
        "mult_adj_su3_mat_vec",
        "mult_su3_mat_vec_sum_4dir",
        "add_su3_matrix",
        "sub_su3_matrix",
        "scalar_mult_su3_matrix",
        "scalar_mult_add_su3_matrix",
        "scalar_mult_sub_su3_matrix",
        "scalar_add_diag_su3",
        "su3_adjoint",
        "su3mat_copy",
        "clear_su3mat",
        "make_ahmat",
        "random_anti_hermitian",
        "uncompress_anti_hermitian",
        "compress_anti_hermitian",
        "realtrace_su3",
        "complextrace_su3",
        "det_su3",
        "add_su3_vector",
        "sub_su3_vector",
        "scalar_mult_su3_vector",
        "scalar_mult_add_su3_vector",
        "scalar_mult_sum_su3_vector",
        "magsq_su3vec",
        "su3_rdot",
        "su3vec_copy",
        "clearvec",
        "dumpmat",
        "dumpvec",
        "su3_projector",
        "mult_su3_lr",
        "left_su3_mat",
        "right_su3_mat",
        "make_su3_matrix",
        "rand_su3_matrix",
        "reunit_su3",
    ];
    for op in su3_ops {
        // 3×3 complex matrix kernels: 9-trip inner loops.
        reg.put(op, add_elem_math(&mut m, op, 9, 8));
        let field = format!("{op}_field");
        reg.put(&field, add_tiny_helper(&mut m, &field, 4));
        let site = format!("{op}_site");
        reg.put(&site, add_tiny_helper(&mut m, &site, 4));
    }
    for c in [
        "cadd",
        "csub",
        "cmul",
        "cdiv",
        "conjg",
        "cexp",
        "clog",
        "csqrt",
        "cmplx",
        "ce_itheta",
        "cmul_j",
        "cnegate",
    ] {
        reg.put(c, add_tiny_helper(&mut m, c, 2));
    }
    // Layout / geometry helpers.
    for g in [
        "node_number",
        "node_index",
        "num_sites",
        "lex_coords",
        "lex_rank",
        "io_node",
        "sites_on_node_helper",
        "setup_hyper_prime",
        "coord_parity",
        "neighbor_coords_special",
        "get_logical_dimensions",
        "get_coords",
    ] {
        reg.put(g, add_tiny_helper(&mut m, g, 1));
    }
    for r in [
        "myrand",
        "initialize_prn",
        "grand",
        "z2rand",
        "gaussian_rand_no",
        "exponential_rand_no",
    ] {
        reg.put(r, add_tiny_helper(&mut m, r, 3));
    }
    // Direction/gather bookkeeping helpers.
    for k in 0..16 {
        let name = format!("dir_helper_{k}");
        reg.put(&name, add_tiny_helper(&mut m, &name, 1));
    }
    for k in 0..20 {
        let name = format!("qio_helper_{k}");
        reg.put(&name, add_tiny_helper(&mut m, &name, 1));
    }
    // Constant-trip staple/path tables (fixed paths of the asqtad action).
    for k in 0..16 {
        let name = format!("path_table_{k}");
        reg.put(&name, add_elem_math(&mut m, &name, 6, 5));
    }
    // Generic small utilities to reach MILC's function census.
    for k in 0..153 {
        let name = format!("util_{k}");
        reg.put(&name, add_tiny_helper(&mut m, &name, 1));
    }

    // ---- linked-but-unused suite code (pruned dynamically: 188) -----------
    let dead_families: [(&str, usize); 7] = [
        ("wilson", 40),
        ("hybrid", 30),
        ("io_lat", 30),
        ("meson", 30),
        ("baryon", 20),
        ("heatbath", 20),
        ("ape_smear", 18),
    ];
    for (family, count) in dead_families {
        for k in 0..count {
            let name = format!("{family}_{k}");
            reg.put(&name, add_dead_parametric(&mut m, &name));
        }
    }

    // ---- communication routines (13; Table 2) ------------------------------
    // do_gather: the §C2 algorithm selection — linear exchange on small
    // communicators, a collective on large ones. The branch condition is
    // tainted by `p`; across the modeling domain both paths execute.
    {
        let mut b = FunctionBuilder::new(
            "do_gather",
            vec![("d".into(), Type::Ptr), ("msg".into(), Type::I64)],
            Type::Void,
        );
        let d = b.param(0);
        let msg = b.param(1);
        let p = b.call(reg.get("lattice_p"), vec![d], Type::I64);
        let small = b.cmp(CmpPred::Le, p, 8i64);
        b.if_then_else(
            small,
            |b| {
                // Linear neighbor exchange: one message per rank.
                b.for_loop(0i64, 8i64, 1i64, |b, _| {
                    b.call_external("MPI_Isend", vec![msg], Type::Void);
                    b.call_external("MPI_Irecv", vec![msg], Type::Void);
                });
                b.call_external("MPI_Waitall", vec![Value::int(16)], Type::Void);
            },
            |b| {
                // Tree-based collective path.
                b.call_external("MPI_Allgather", vec![msg], Type::Void);
            },
        );
        b.ret(None);
        let id = m.add_function(b.finish());
        reg.put("do_gather", id);
    }
    // Gather wrappers used by dslash: message = surface of the local volume.
    for name in ["start_gather_site", "start_gather_field", "restart_gather"] {
        let mut b = FunctionBuilder::new(name, vec![("d".into(), Type::Ptr)], Type::Void);
        let d = b.param(0);
        let sites = b.call(reg.get("lattice_sites"), vec![d], Type::I64);
        let msg = b.div(sites, 4i64);
        let msg1 = b.add(msg, 1i64);
        b.call(reg.get("do_gather"), vec![d, msg1], Type::Void);
        b.ret(None);
        let id = m.add_function(b.finish());
        reg.put(name, id);
    }
    {
        let mut b = FunctionBuilder::new("wait_gather", vec![("d".into(), Type::Ptr)], Type::Void);
        b.call_external("MPI_Waitall", vec![Value::int(8)], Type::Void);
        b.ret(None);
        let id = m.add_function(b.finish());
        reg.put("wait_gather", id);
    }
    {
        let mut b =
            FunctionBuilder::new("cleanup_gather", vec![("d".into(), Type::Ptr)], Type::Void);
        b.call_external("MPI_Barrier", vec![], Type::Void);
        b.ret(None);
        let id = m.add_function(b.finish());
        reg.put("cleanup_gather", id);
    }
    {
        let mut b = FunctionBuilder::new("g_sync", vec![("d".into(), Type::Ptr)], Type::Void);
        b.call_external("MPI_Barrier", vec![], Type::Void);
        b.ret(None);
        let id = m.add_function(b.finish());
        reg.put("g_sync", id);
    }
    for (name, mpi, count) in [
        ("g_doublesum", "MPI_Allreduce", 1i64),
        ("g_floatsum", "MPI_Allreduce", 1),
        ("g_vecdoublesum", "MPI_Allreduce", 8),
        ("g_complexsum", "MPI_Allreduce", 2),
        ("reduce_double_vector", "MPI_Reduce", 8),
        ("broadcast_float", "MPI_Bcast", 1),
        ("broadcast_bytes", "MPI_Bcast", 16),
    ] {
        let mut b = FunctionBuilder::new(name, vec![("d".into(), Type::Ptr)], Type::Void);
        b.call_external(mpi, vec![Value::int(count)], Type::Void);
        b.ret(None);
        let id = m.add_function(b.finish());
        reg.put(name, id);
    }

    // ---- computational kernels (56; Table 2) --------------------------------
    // Additional named site kernels to match su3_rmd's kernel census.
    for (name, flops, mem, helper) in [
        ("smear_level_1", 192i64, 64i64, Some("mult_su3_nn")),
        ("smear_level_2", 16, 8, Some("mult_su3_nn")),
        ("add_force_to_mom", 12, 8, Some("uncompress_anti_hermitian")),
        ("momentum_twist", 8, 4, None),
        ("make_anti_hermitian_field", 10, 6, Some("make_ahmat")),
        ("ranmom", 8, 4, Some("gaussian_rand_no")),
        ("d_plaquette", 20, 8, Some("mult_su3_na")),
        ("hvy_pot", 14, 6, Some("mult_su3_nn")),
        ("gauge_force_imp_dir", 22, 10, Some("mult_su3_an")),
        ("fn_fermion_force_dir", 26, 12, Some("su3_projector")),
        ("sum_staples", 12, 8, Some("add_su3_matrix")),
        ("rephase_field_offset", 4, 4, None),
        ("custom_gauge_action", 18, 6, Some("mult_su3_nn")),
        ("apply_fn_matrix", 30, 14, Some("mult_su3_mat_vec")),
        ("residue_norm", 6, 3, None),
        ("relax_lattice", 10, 6, Some("reunit_su3")),
        ("boundary_twist", 4, 2, None),
        ("gauge_fix_step", 16, 8, Some("mult_su3_nn")),
    ] {
        add_site_kernel(&mut m, &mut reg, name, flops, mem, helper);
    }

    // Setup kernels.
    {
        // setup_layout: find the per-dimension decomposition of p — a loop
        // whose trip count depends on the implicit parameter (Table 3 `p`).
        let mut b = FunctionBuilder::new("setup_layout", vec![("d".into(), Type::Ptr)], Type::Void);
        let d = b.param(0);
        let p = b.call(reg.get("lattice_p"), vec![d], Type::I64);
        let t = b.alloca(1i64);
        b.store(t, Value::int(1));
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(header);
        b.switch_to(header);
        let tv = b.load(t, Type::I64);
        let doubled = b.mul(tv, 2i64);
        let c = b.cmp(CmpPred::Le, doubled, p);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let tv2 = b.load(t, Type::I64);
        let next = b.mul(tv2, 2i64);
        b.store(t, next);
        b.br(header);
        b.switch_to(exit);
        b.ret(None);
        let id = m.add_function(b.finish());
        reg.put("setup_layout", id);
    }
    add_site_kernel(&mut m, &mut reg, "make_lattice", 72, 32, Some("node_index"));
    add_site_kernel(
        &mut m,
        &mut reg,
        "make_nn_gathers",
        48,
        16,
        Some("neighbor_coords_special"),
    );
    add_site_kernel(&mut m, &mut reg, "coordinate_fill", 36, 16, None);
    add_site_kernel(&mut m, &mut reg, "set_lattice_fields", 48, 48, None);
    // The numerical parameters flow into field *data* here — never into
    // control flow. The taint analysis must keep them out of every model.
    {
        let mut b = FunctionBuilder::new(
            "initialize_fields",
            vec![("d".into(), Type::Ptr)],
            Type::Void,
        );
        let d = b.param(0);
        let sites = b.call(reg.get("lattice_sites"), vec![d], Type::I64);
        let mass = b.call(reg.get("lattice_mass"), vec![d], Type::I64);
        let beta = b.call(reg.get("lattice_beta"), vec![d], Type::I64);
        let u0 = b.call(reg.get("lattice_u0"), vec![d], Type::I64);
        let acc = b.alloca(1i64);
        let mb = b.add(mass, beta);
        let mbu = b.add(mb, u0);
        b.store(acc, mbu);
        b.for_loop(0i64, sites, 1i64, |b, _| {
            let cur = b.load(acc, Type::I64);
            let nxt = b.add(cur, 1i64);
            b.store(acc, nxt);
            b.call_external("pt_work_flops", vec![Value::int(5)], Type::Void);
        });
        b.ret(None);
        let id = m.add_function(b.finish());
        reg.put("initialize_fields", id);
    }
    add_site_kernel(&mut m, &mut reg, "rephase", 36, 32, None);
    add_site_kernel(
        &mut m,
        &mut reg,
        "grsource_imp",
        96,
        32,
        Some("gaussian_rand_no"),
    );

    // Link smearing (asqtad): fat and long links.
    add_site_kernel(
        &mut m,
        &mut reg,
        "compute_gen_staple",
        288,
        80,
        Some("mult_su3_nn"),
    );
    {
        let mut b =
            FunctionBuilder::new("load_fatlinks", vec![("d".into(), Type::Ptr)], Type::Void);
        let d = b.param(0);
        b.for_loop(0i64, 4i64, 1i64, |b, _| {
            b.call(reg.get("compute_gen_staple"), vec![d], Type::Void);
        });
        b.ret(None);
        let id = m.add_function(b.finish());
        reg.put("load_fatlinks", id);
    }
    add_site_kernel(
        &mut m,
        &mut reg,
        "path_product",
        216,
        64,
        Some("mult_su3_na"),
    );
    {
        let mut b =
            FunctionBuilder::new("load_longlinks", vec![("d".into(), Type::Ptr)], Type::Void);
        let d = b.param(0);
        b.for_loop(0i64, 4i64, 1i64, |b, _| {
            b.call(reg.get("path_product"), vec![d], Type::Void);
        });
        b.ret(None);
        let id = m.add_function(b.finish());
        reg.put("load_longlinks", id);
    }

    // Dslash: gathers + per-site su3 matrix-vector products (memory-bound).
    {
        let mut b =
            FunctionBuilder::new("dslash_fn_field", vec![("d".into(), Type::Ptr)], Type::Void);
        let d = b.param(0);
        b.call(reg.get("start_gather_site"), vec![d], Type::Void);
        b.call(reg.get("start_gather_field"), vec![d], Type::Void);
        let sites = b.call(reg.get("lattice_sites"), vec![d], Type::I64);
        b.call(
            reg.get("mult_su3_mat_vec_sum_4dir"),
            vec![Value::float(1.0)],
            Type::F64,
        );
        b.for_loop(0i64, sites, 1i64, |b, _| {
            b.call_external("pt_work_flops", vec![Value::int(1146)], Type::Void);
            b.call_external("pt_work_mem", vec![Value::int(180)], Type::Void);
        });
        b.call(reg.get("wait_gather"), vec![d], Type::Void);
        b.call(reg.get("cleanup_gather"), vec![d], Type::Void);
        b.ret(None);
        let id = m.add_function(b.finish());
        reg.put("dslash_fn_field", id);
    }

    // CG vector kernels.
    add_site_kernel(&mut m, &mut reg, "clear_latvec", 0, 24, None);
    add_site_kernel(&mut m, &mut reg, "copy_latvec", 0, 48, None);
    add_site_kernel(&mut m, &mut reg, "scalar_mult_latvec", 72, 48, None);
    add_site_kernel(&mut m, &mut reg, "scalar_mult_add_latvec", 144, 72, None);
    {
        // dot product: site loop + global reduction.
        let mut b =
            FunctionBuilder::new("dot_product_lat", vec![("d".into(), Type::Ptr)], Type::Void);
        let d = b.param(0);
        let sites = b.call(reg.get("lattice_sites"), vec![d], Type::I64);
        b.for_loop(0i64, sites, 1i64, |b, _| {
            b.call_external("pt_work_flops", vec![Value::int(6)], Type::Void);
        });
        b.call(reg.get("g_doublesum"), vec![d], Type::Void);
        b.ret(None);
        let id = m.add_function(b.finish());
        reg.put("dot_product_lat", id);
    }
    // ks_congrad: the CG solver — `niter` iterations of dslash + vector ops
    // + a global residual reduction.
    {
        let mut b = FunctionBuilder::new("ks_congrad", vec![("d".into(), Type::Ptr)], Type::Void);
        let d = b.param(0);
        let niter = b.call(reg.get("lattice_niter"), vec![d], Type::I64);
        b.call(reg.get("clear_latvec"), vec![d], Type::Void);
        b.call(reg.get("copy_latvec"), vec![d], Type::Void);
        b.call(reg.get("apply_fn_matrix"), vec![d], Type::Void);
        b.for_loop(0i64, niter, 1i64, |b, _| {
            b.call(reg.get("dslash_fn_field"), vec![d], Type::Void);
            b.call(reg.get("dslash_fn_field"), vec![d], Type::Void);
            b.call(reg.get("scalar_mult_latvec"), vec![d], Type::Void);
            b.call(reg.get("scalar_mult_add_latvec"), vec![d], Type::Void);
            b.call(reg.get("residue_norm"), vec![d], Type::Void);
            b.call(reg.get("dot_product_lat"), vec![d], Type::Void);
        });
        b.ret(None);
        let id = m.add_function(b.finish());
        reg.put("ks_congrad", id);
    }

    // Forces and field updates.
    add_site_kernel(
        &mut m,
        &mut reg,
        "imp_gauge_force",
        480,
        128,
        Some("mult_su3_nn"),
    );
    add_site_kernel(
        &mut m,
        &mut reg,
        "eo_fermion_force_oneterm",
        32,
        12,
        Some("su3_projector"),
    );
    add_site_kernel(
        &mut m,
        &mut reg,
        "eo_fermion_force_twoterms",
        48,
        18,
        Some("su3_projector"),
    );
    add_site_kernel(
        &mut m,
        &mut reg,
        "update_u",
        240,
        80,
        Some("scalar_mult_add_su3_matrix"),
    );
    {
        let mut b = FunctionBuilder::new("update_h", vec![("d".into(), Type::Ptr)], Type::Void);
        let d = b.param(0);
        b.call(reg.get("smear_level_1"), vec![d], Type::Void);
        b.call(reg.get("smear_level_2"), vec![d], Type::Void);
        b.call(reg.get("load_fatlinks"), vec![d], Type::Void);
        b.call(reg.get("load_longlinks"), vec![d], Type::Void);
        b.call(reg.get("imp_gauge_force"), vec![d], Type::Void);
        b.call(reg.get("gauge_force_imp_dir"), vec![d], Type::Void);
        b.call(reg.get("sum_staples"), vec![d], Type::Void);
        b.call(reg.get("eo_fermion_force_oneterm"), vec![d], Type::Void);
        b.call(reg.get("eo_fermion_force_twoterms"), vec![d], Type::Void);
        b.call(reg.get("fn_fermion_force_dir"), vec![d], Type::Void);
        b.call(reg.get("add_force_to_mom"), vec![d], Type::Void);
        b.ret(None);
        let id = m.add_function(b.finish());
        reg.put("update_h", id);
    }
    add_site_kernel(&mut m, &mut reg, "reunitarize", 168, 64, Some("reunit_su3"));
    add_site_kernel(
        &mut m,
        &mut reg,
        "check_unitarity",
        120,
        32,
        Some("realtrace_su3"),
    );

    // Measurements.
    {
        let mut b = FunctionBuilder::new("plaquette", vec![("d".into(), Type::Ptr)], Type::Void);
        let d = b.param(0);
        let sites = b.call(reg.get("lattice_sites"), vec![d], Type::I64);
        b.call(reg.get("mult_su3_nn"), vec![Value::float(1.0)], Type::F64);
        b.for_loop(0i64, sites, 1i64, |b, _| {
            b.call_external("pt_work_flops", vec![Value::int(792)], Type::Void);
        });
        b.call(reg.get("g_doublesum"), vec![d], Type::Void);
        b.ret(None);
        let id = m.add_function(b.finish());
        reg.put("plaquette", id);
    }
    {
        let mut b = FunctionBuilder::new("ploop", vec![("d".into(), Type::Ptr)], Type::Void);
        let d = b.param(0);
        let sites = b.call(reg.get("lattice_sites"), vec![d], Type::I64);
        let nt = b.call(reg.get("lattice_nt"), vec![d], Type::I64);
        let slice = b.div(sites, nt);
        let slice1 = b.add(slice, 1i64);
        b.for_loop(0i64, slice1, 1i64, |b, _| {
            b.call_external("pt_work_flops", vec![Value::int(12)], Type::Void);
        });
        b.call(reg.get("g_complexsum"), vec![d], Type::Void);
        b.ret(None);
        let id = m.add_function(b.finish());
        reg.put("ploop", id);
    }
    {
        let mut b = FunctionBuilder::new("f_meas_imp", vec![("d".into(), Type::Ptr)], Type::Void);
        let d = b.param(0);
        b.call(reg.get("grsource_imp"), vec![d], Type::Void);
        b.call(reg.get("restart_gather"), vec![d], Type::Void);
        b.call(reg.get("ks_congrad"), vec![d], Type::Void);
        b.call(reg.get("g_vecdoublesum"), vec![d], Type::Void);
        b.call(reg.get("g_complexsum"), vec![d], Type::Void);
        b.ret(None);
        let id = m.add_function(b.finish());
        reg.put("f_meas_imp", id);
    }
    add_site_kernel(&mut m, &mut reg, "gauge_field_copy", 0, 96, None);

    // The MD trajectory driver.
    {
        let mut b = FunctionBuilder::new("update", vec![("d".into(), Type::Ptr)], Type::Void);
        let d = b.param(0);
        let steps = b.call(reg.get("lattice_steps"), vec![d], Type::I64);
        b.call(reg.get("ranmom"), vec![d], Type::Void);
        b.call(reg.get("make_anti_hermitian_field"), vec![d], Type::Void);
        b.call(reg.get("grsource_imp"), vec![d], Type::Void);
        b.for_loop(0i64, steps, 1i64, |b, _| {
            b.call(reg.get("update_h"), vec![d], Type::Void);
            b.call(reg.get("update_u"), vec![d], Type::Void);
            b.call(reg.get("ks_congrad"), vec![d], Type::Void);
        });
        b.call(reg.get("reunitarize"), vec![d], Type::Void);
        b.call(reg.get("check_unitarity"), vec![d], Type::Void);
        b.ret(None);
        let id = m.add_function(b.finish());
        reg.put("update", id);
    }

    // ---- main ---------------------------------------------------------------
    {
        let mut b = FunctionBuilder::new("main", vec![], Type::Void);
        let nx = b.call_external("pt_param_i64", vec![Value::int(0)], Type::I64);
        let ny = b.call_external("pt_param_i64", vec![Value::int(1)], Type::I64);
        let nz = b.call_external("pt_param_i64", vec![Value::int(2)], Type::I64);
        let nt = b.call_external("pt_param_i64", vec![Value::int(3)], Type::I64);
        let warms = b.call_external("pt_param_i64", vec![Value::int(4)], Type::I64);
        let trajecs = b.call_external("pt_param_i64", vec![Value::int(5)], Type::I64);
        let steps = b.call_external("pt_param_i64", vec![Value::int(6)], Type::I64);
        let niter = b.call_external("pt_param_i64", vec![Value::int(7)], Type::I64);
        let mass = b.call_external("pt_param_i64", vec![Value::int(8)], Type::I64);
        let beta = b.call_external("pt_param_i64", vec![Value::int(9)], Type::I64);
        let u0 = b.call_external("pt_param_i64", vec![Value::int(10)], Type::I64);

        let d = b.alloca(HEADER_WORDS);
        let pslot = b.gep(d, Value::int(P_SLOT), 1);
        b.call_external("MPI_Comm_size", vec![pslot], Type::Void);
        let rslot = b.gep(d, Value::int(RANK), 1);
        b.call_external("MPI_Comm_rank", vec![rslot], Type::Void);
        let p = b.load(pslot, Type::I64);

        // Local volume: sites = nx·ny·nz·nt / p — every site loop therefore
        // depends on the four extents *and* on p (Table 3's MILC rows).
        let v1 = b.mul(nx, ny);
        let v2 = b.mul(v1, nz);
        let volume = b.mul(v2, nt);
        let sites = b.div(volume, p);
        for (slot, v) in [
            (SITES, sites),
            (NX, nx),
            (NY, ny),
            (NZ, nz),
            (NT, nt),
            (NITER, niter),
            (STEPS, steps),
            (WARMS, warms),
            (TRAJECS, trajecs),
            (MASS, mass),
            (BETA, beta),
            (U0, u0),
        ] {
            let addr = b.gep(d, Value::int(slot), 1);
            b.store(addr, v);
        }

        for setup in [
            "setup_layout",
            "make_lattice",
            "make_nn_gathers",
            "coordinate_fill",
            "set_lattice_fields",
            "initialize_fields",
            "rephase",
            "rephase_field_offset",
            "gauge_field_copy",
            "boundary_twist",
            "momentum_twist",
        ] {
            b.call(reg.get(setup), vec![d], Type::Void);
        }
        b.call(reg.get("broadcast_float"), vec![d], Type::Void);
        b.call(reg.get("broadcast_bytes"), vec![d], Type::Void);

        // Warmup trajectories.
        b.for_loop(0i64, warms, 1i64, |b, _| {
            b.call(reg.get("update"), vec![d], Type::Void);
        });
        // Measured trajectories with observables.
        b.for_loop(0i64, trajecs, 1i64, |b, _| {
            b.call(reg.get("update"), vec![d], Type::Void);
            b.call(reg.get("plaquette"), vec![d], Type::Void);
            b.call(reg.get("d_plaquette"), vec![d], Type::Void);
            b.call(reg.get("ploop"), vec![d], Type::Void);
            b.call(reg.get("hvy_pot"), vec![d], Type::Void);
            b.call(reg.get("f_meas_imp"), vec![d], Type::Void);
        });
        b.call(reg.get("relax_lattice"), vec![d], Type::Void);
        b.call(reg.get("gauge_fix_step"), vec![d], Type::Void);
        b.call(reg.get("custom_gauge_action"), vec![d], Type::Void);
        b.call(reg.get("g_floatsum"), vec![d], Type::Void);
        b.call(reg.get("reduce_double_vector"), vec![d], Type::Void);
        b.call(reg.get("g_sync"), vec![d], Type::Void);
        b.ret(None);
        let id = m.add_function(b.finish());
        reg.put("main", id);
    }

    pt_ir::verify_module(&m).expect("mini-milc verifies");

    AppSpec {
        name: "mini-milc".into(),
        module: m,
        entry: "main".into(),
        params: vec![
            ParamSpec::new("nx", 8, 64),
            ParamSpec::new("ny", 4, 4),
            ParamSpec::new("nz", 4, 4),
            ParamSpec::new("nt", 4, 4),
            ParamSpec::new("warms", 1, 1),
            ParamSpec::new("trajecs", 2, 2),
            ParamSpec::new("steps", 2, 2),
            ParamSpec::new("niter", 5, 5),
            ParamSpec::new("mass", 75, 75),
            ParamSpec::new("beta", 5, 5),
            ParamSpec::new("u0", 80, 80),
            // The paper's taint run: size 128 on 32 ranks.
            ParamSpec::new("p", 32, 32),
        ],
        model_params: vec!["p".into(), "nx".into()],
    }
}

/// Kernels discussed in §6 (harnesses and tests refer to these by name).
pub fn known_kernels() -> Vec<&'static str> {
    vec![
        "ks_congrad",
        "dslash_fn_field",
        "load_fatlinks",
        "load_longlinks",
        "imp_gauge_force",
        "update_h",
        "update_u",
        "plaquette",
        "f_meas_imp",
        "do_gather",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_verifies() {
        let app = build();
        let n = app.module.functions.len();
        // Paper scale: 629 functions total (incl. 8 MPI routines).
        assert!(
            (550..700).contains(&n),
            "function count {n} out of MILC-like range"
        );
    }

    #[test]
    fn mpi_census_matches_paper() {
        let app = build();
        let externs = app.module.used_externals();
        let mpi: Vec<&&str> = externs.iter().filter(|e| e.starts_with("MPI_")).collect();
        // Paper reports 8 MPI functions for MILC; our gather/reduction
        // wrappers use 10 (superset including nonblocking p2p).
        assert!(
            (8..=10).contains(&mpi.len()),
            "MPI routine count {}: {mpi:?}",
            mpi.len()
        );
    }

    #[test]
    fn taint_run_config_matches_paper() {
        let app = build();
        let p = app.params.iter().find(|p| p.name == "p").unwrap();
        assert_eq!(p.taint_run_value, 32, "taint run on 32 ranks");
        assert_eq!(app.params[0].name, "nx");
        for numeric in ["mass", "beta", "u0"] {
            assert!(app.params.iter().any(|p| p.name == numeric));
        }
    }

    #[test]
    fn known_kernels_exist() {
        let app = build();
        for k in known_kernels() {
            assert!(
                app.module.function_by_name(k).is_some(),
                "kernel {k} missing"
            );
        }
    }

    #[test]
    fn dead_suite_code_is_uncalled() {
        let app = build();
        let dead = app.module.function_by_name("wilson_0").unwrap();
        for f in app.module.function_ids() {
            assert!(!app.module.callees(f).contains(&dead));
        }
        let dead_count = app
            .module
            .functions
            .iter()
            .filter(|f| {
                [
                    "wilson_",
                    "hybrid_",
                    "io_lat_",
                    "meson_",
                    "baryon_",
                    "heatbath_",
                    "ape_smear_",
                ]
                .iter()
                .any(|p| f.name.starts_with(p))
            })
            .count();
        assert_eq!(dead_count, 188);
    }
}
