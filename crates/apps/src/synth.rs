//! Synthetic workloads with known ground truth.
//!
//! Generates random programs made of loop nests whose bounds are either
//! marked parameters or compile-time constants, together with the *exact*
//! dependency structure (the set of parameter monomials per function) that
//! a correct Perf-Taint pipeline must recover:
//!
//! * nesting of parametric loops ⇒ a multiplicative monomial (§4.2),
//! * sequencing ⇒ separate (additive) monomials,
//! * constant-trip loops ⇒ no contribution (§5.1).
//!
//! Property tests drive the whole pipeline over hundreds of generated
//! programs and compare against this ground truth.

use crate::common::{AppSpec, ParamSpec};
use pt_ir::{FunctionBuilder, Module, Type, Value};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeMap;

/// One node of a generated loop nest.
#[derive(Debug, Clone)]
pub enum LoopTree {
    /// A loop bounded by parameter `param` (index into the parameter list)
    /// containing a sequence of children.
    Param(usize, Vec<LoopTree>),
    /// A constant-trip loop containing children.
    Const(i64, Vec<LoopTree>),
    /// Straight-line work (flops).
    Work(i64),
}

impl LoopTree {
    /// The ground-truth monomials of this tree: for every parametric loop,
    /// the set of parameters on its path from the root.
    pub fn monomials(&self) -> Vec<u64> {
        let mut out = Vec::new();
        self.collect(0, &mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect(&self, path: u64, out: &mut Vec<u64>) {
        match self {
            LoopTree::Param(k, children) => {
                let mask = path | (1u64 << k);
                out.push(mask);
                for c in children {
                    c.collect(mask, out);
                }
            }
            LoopTree::Const(_, children) => {
                for c in children {
                    c.collect(path, out);
                }
            }
            LoopTree::Work(_) => {}
        }
    }

    /// Total number of loops in the tree.
    pub fn loop_count(&self) -> usize {
        match self {
            LoopTree::Param(_, cs) | LoopTree::Const(_, cs) => {
                1 + cs.iter().map(|c| c.loop_count()).sum::<usize>()
            }
            LoopTree::Work(_) => 0,
        }
    }

    /// Exact iteration count of the outermost loops' bodies, given
    /// parameter values (for trip-count validation).
    pub fn body_iterations(&self, values: &[i64]) -> u64 {
        match self {
            LoopTree::Param(k, cs) => {
                let n = values[*k].max(0) as u64;
                n + n * cs.iter().map(|c| c.body_iterations(values)).sum::<u64>()
            }
            LoopTree::Const(n, cs) => {
                let n = (*n).max(0) as u64;
                n + n * cs.iter().map(|c| c.body_iterations(values)).sum::<u64>()
            }
            LoopTree::Work(_) => 0,
        }
    }
}

/// A generated application plus its ground truth.
pub struct SynthApp {
    pub app: AppSpec,
    /// Per kernel function: the exact monomial set.
    pub truth: BTreeMap<String, Vec<u64>>,
    /// Per kernel function: the generated loop tree.
    pub trees: BTreeMap<String, LoopTree>,
}

/// Configuration of the generator.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    pub seed: u64,
    /// Number of marked parameters (≤ 6 keeps programs small).
    pub num_params: usize,
    /// Number of kernel functions.
    pub num_kernels: usize,
    /// Maximum loop-nest depth.
    pub max_depth: usize,
    /// Parameter values used when running (small: interpretation cost).
    pub param_values: Vec<i64>,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            seed: 0,
            num_params: 3,
            num_kernels: 4,
            max_depth: 3,
            param_values: vec![3, 4, 5],
        }
    }
}

fn gen_tree(rng: &mut StdRng, cfg: &SynthConfig, depth: usize) -> LoopTree {
    if depth >= cfg.max_depth || rng.random_range(0..4) == 0 {
        return LoopTree::Work(1 + rng.random_range(0..8i64));
    }
    let nchildren = rng.random_range(1..=2usize);
    let children: Vec<LoopTree> = (0..nchildren)
        .map(|_| gen_tree(rng, cfg, depth + 1))
        .collect();
    if rng.random_range(0..3) == 0 {
        LoopTree::Const(2 + rng.random_range(0..3i64), children)
    } else {
        LoopTree::Param(rng.random_range(0..cfg.num_params), children)
    }
}

fn emit_tree(b: &mut FunctionBuilder, tree: &LoopTree) {
    match tree {
        LoopTree::Param(k, children) => {
            let bound = b.param(*k as u32);
            let ctx = b.begin_loop(0i64, bound, 1i64);
            for c in children {
                emit_tree(b, c);
            }
            b.end_loop(ctx);
        }
        LoopTree::Const(n, children) => {
            let ctx = b.begin_loop(0i64, Value::int(*n), 1i64);
            for c in children {
                emit_tree(b, c);
            }
            b.end_loop(ctx);
        }
        LoopTree::Work(flops) => {
            b.call_external("pt_work_flops", vec![Value::int(*flops)], Type::Void);
        }
    }
}

/// Generate a synthetic application with known ground truth.
pub fn generate(cfg: &SynthConfig) -> SynthApp {
    assert_eq!(cfg.param_values.len(), cfg.num_params);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut m = Module::new(format!("synth-{}", cfg.seed));
    let mut truth = BTreeMap::new();
    let mut trees = BTreeMap::new();
    let param_names: Vec<String> = (0..cfg.num_params).map(|k| format!("q{k}")).collect();

    let mut kernel_ids = Vec::new();
    for kid in 0..cfg.num_kernels {
        let name = format!("kernel_{kid}");
        let tree = gen_tree(&mut rng, cfg, 0);
        let sig: Vec<(String, Type)> = param_names.iter().map(|n| (n.clone(), Type::I64)).collect();
        let mut b = FunctionBuilder::new(&name, sig, Type::Void);
        emit_tree(&mut b, &tree);
        b.ret(None);
        let id = m.add_function(b.finish());
        truth.insert(name.clone(), tree.monomials());
        trees.insert(name, tree);
        kernel_ids.push(id);
    }

    let mut b = FunctionBuilder::new("main", vec![], Type::Void);
    let args: Vec<Value> = (0..cfg.num_params)
        .map(|k| b.call_external("pt_param_i64", vec![Value::int(k as i64)], Type::I64))
        .collect();
    for id in kernel_ids {
        b.call(id, args.clone(), Type::Void);
    }
    b.ret(None);
    m.add_function(b.finish());
    pt_ir::verify_module(&m).expect("synthetic module verifies");

    let params: Vec<ParamSpec> = param_names
        .iter()
        .zip(&cfg.param_values)
        .map(|(n, &v)| ParamSpec::new(n, v, v))
        .collect();
    SynthApp {
        app: AppSpec {
            name: format!("synth-{}", cfg.seed),
            module: m,
            entry: "main".into(),
            params,
            model_params: param_names,
        },
        truth,
        trees,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monomials_of_known_trees() {
        // for i < q0 { for j < q1 { W } }; for k < q2 { W }
        let t = LoopTree::Param(0, vec![LoopTree::Param(1, vec![LoopTree::Work(1)])]);
        assert_eq!(t.monomials(), vec![0b01, 0b11]);
        let seq = LoopTree::Const(
            1,
            vec![
                LoopTree::Param(0, vec![LoopTree::Work(1)]),
                LoopTree::Param(2, vec![LoopTree::Work(1)]),
            ],
        );
        assert_eq!(seq.monomials(), vec![0b001, 0b100]);
        // Constant loops contribute nothing on the path.
        let c = LoopTree::Const(8, vec![LoopTree::Param(1, vec![LoopTree::Work(1)])]);
        assert_eq!(c.monomials(), vec![0b010]);
    }

    #[test]
    fn body_iteration_math() {
        // for i < 3 { for j < 2 { W } } -> 3 outer + 6 inner bodies
        let t = LoopTree::Const(3, vec![LoopTree::Const(2, vec![LoopTree::Work(1)])]);
        assert_eq!(t.body_iterations(&[]), 3 + 6);
        let p = LoopTree::Param(0, vec![LoopTree::Work(1)]);
        assert_eq!(p.body_iterations(&[5]), 5);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = SynthConfig::default();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.truth, b.truth);
        assert_eq!(
            pt_ir::printer::print_module(&a.app.module),
            pt_ir::printer::print_module(&b.app.module)
        );
        let cfg2 = SynthConfig {
            seed: 1,
            ..SynthConfig::default()
        };
        let c = generate(&cfg2);
        assert!(
            a.truth != c.truth
                || pt_ir::printer::print_module(&a.app.module)
                    != pt_ir::printer::print_module(&c.app.module)
        );
    }

    #[test]
    fn generated_modules_verify_across_seeds() {
        for seed in 0..30 {
            let cfg = SynthConfig {
                seed,
                ..SynthConfig::default()
            };
            let s = generate(&cfg);
            assert!(pt_ir::verify_module(&s.app.module).is_ok(), "seed {seed}");
            assert_eq!(s.truth.len(), cfg.num_kernels);
        }
    }
}
