//! # pt-apps — the evaluation applications, built in `pt-ir`
//!
//! Structural reproductions of the two benchmarks the paper evaluates on
//! (§6, Table 2), plus a synthetic-workload generator for property testing:
//!
//! * [`lulesh`] — mini-LULESH: C++-style Domain accessors, `size³` stencil
//!   kernels, region/material loops (`regions`, `balance`, `cost`), a
//!   time-stepping loop (`iters`), halo exchange + dt allreduce.
//! * [`milc`] — mini-MILC su3_rmd: 4-D lattice (`nx·ny·nz·nt`), local
//!   volume divided by `p`, CG solver (`niter`), trajectory structure
//!   (`warms`, `trajecs`, `steps`), numerical parameters that must *not*
//!   appear in models (`mass`, `beta`, `u0`), and a gather collective that
//!   switches algorithm with `p` (the §C2 validation case).
//! * [`synth`] — random loop-nest programs with known ground-truth
//!   dependency structure (for property-based tests of the pipeline).
//! * [`security`] — mini-SecSrv: a request-processing service exercising
//!   the security taint policy (sources, sanitizers, sink checks) with
//!   parametric work so the perf model stays non-trivial.
pub mod common;
pub mod lulesh;
pub mod milc;
pub mod security;
pub mod synth;

pub use common::{AppSpec, ParamSpec};
