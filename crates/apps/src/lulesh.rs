//! Mini-LULESH: a structural reproduction of the LULESH 2.0 shock
//! hydrodynamics proxy app (Karlin et al.), built directly in `pt-ir`.
//!
//! What the evaluation needs from LULESH (§6, Tables 2/3, Figures 3/5):
//!
//! * a C++-style **Domain** object with hundreds of tiny accessor methods —
//!   the reason full instrumentation costs up to 45× (§A3) and ~86% of all
//!   functions are provably constant;
//! * **stencil kernels** iterating over `size³` elements / `(size+1)³`
//!   nodes, several of them memory-bound (they exhibit the §C1 contention);
//! * **region-based material loops** controlled by `regions`, `balance`
//!   (region assignment) and `cost` (EOS repetition count) — including the
//!   `regElemSize` histogram whose loop-carried control dependence motivates
//!   the control-flow taint extension (§5.2);
//! * a main time-stepping loop over `iters` that multiplies everything
//!   (§A2's dimensionality-reduction example);
//! * MPI: a halo exchange (message size `size²`, the library database's
//!   count-argument dependency) and a `dt` allreduce (`log p`);
//! * functions with parametric loops that never execute (pruned
//!   *dynamically*, Table 2) — I/O and diagnostics paths.
//!
//! Parameter indices (taint order): 0 = size, 1 = regions, 2 = balance,
//! 3 = cost, 4 = iters, 5 = p (implicit, sourced by `MPI_Comm_size`).

use crate::common::{
    add_dead_parametric, add_elem_math, add_field_accumulator, add_field_getter, add_field_setter,
    add_iarray_getter, add_iarray_setter, add_scalar_getter, add_scalar_setter, add_tiny_helper,
    AppSpec, ParamSpec,
};
use pt_ir::{BinOp, CmpPred, FunctionBuilder, FunctionId, Module, Type, Value};
use std::collections::HashMap;

// ---- Domain header layout (word offsets) --------------------------------
const NUM_ELEM: i64 = 0;
const NUM_NODE: i64 = 1;
const NUM_REG: i64 = 2;
const COST: i64 = 3;
const BALANCE: i64 = 4;
const P_SLOT: i64 = 5;
const RANK: i64 = 6;
const DTIME: i64 = 7;
const TIME: i64 = 8;
const CYCLE: i64 = 9;
const SIZE: i64 = 10;
const FIELD0: i64 = 16;

/// Nodal/element fields of the Domain, in slot order.
const FIELDS: &[&str] = &[
    "x",
    "y",
    "z",
    "xd",
    "yd",
    "zd",
    "xdd",
    "ydd",
    "zdd",
    "fx",
    "fy",
    "fz",
    "e",
    "pres",
    "q",
    "ql",
    "qq",
    "v",
    "volo",
    "delv",
    "ss",
    "arealg",
    "elemMass",
    "nodalMass",
];

fn field_slot(name: &str) -> i64 {
    FIELD0
        + FIELDS
            .iter()
            .position(|f| *f == name)
            .unwrap_or_else(|| panic!("unknown field {name}")) as i64
}

fn reg_elem_size_slot() -> i64 {
    FIELD0 + FIELDS.len() as i64
}

fn reg_num_list_slot() -> i64 {
    FIELD0 + FIELDS.len() as i64 + 1
}

const HEADER_WORDS: i64 = 64;

/// Registry of already-built functions.
struct Reg {
    ids: HashMap<String, FunctionId>,
}

impl Reg {
    fn new() -> Reg {
        Reg {
            ids: HashMap::new(),
        }
    }

    fn put(&mut self, name: &str, id: FunctionId) {
        self.ids.insert(name.to_string(), id);
    }

    fn get(&self, name: &str) -> FunctionId {
        *self
            .ids
            .get(name)
            .unwrap_or_else(|| panic!("function {name} not built yet"))
    }
}

/// Work profile of an element/node kernel.
struct KernelWork {
    /// Flops charged per innermost iteration.
    flops: i64,
    /// Memory words charged per innermost iteration (contention-sensitive).
    mem: i64,
    /// Fixed inner loop trips (e.g. 8 nodes per element); 0 = none.
    inner: i64,
    /// Field getters called once per element.
    getters: Vec<&'static str>,
    /// Field accumulators called once per element.
    accums: Vec<&'static str>,
    /// Constant math helpers called once per element.
    helpers: Vec<&'static str>,
}

impl KernelWork {
    fn compute(flops: i64) -> KernelWork {
        KernelWork {
            flops,
            mem: 0,
            inner: 0,
            getters: vec![],
            accums: vec![],
            helpers: vec![],
        }
    }

    fn memory(flops: i64, mem: i64) -> KernelWork {
        KernelWork {
            flops,
            mem,
            inner: 0,
            getters: vec![],
            accums: vec![],
            helpers: vec![],
        }
    }
}

/// Emit one loop iteration body: getters, helpers, work, accumulators.
fn emit_work(b: &mut FunctionBuilder, reg: &Reg, iv: Value, w: &KernelWork) {
    let d = b.param(0);
    let mut acc = Value::float(1.0);
    for g in &w.getters {
        let name = format!("Domain_{g}");
        let v = b.call(reg.get(&name), vec![d, iv], Type::F64);
        acc = b.add(acc, v);
    }
    for h in &w.helpers {
        acc = b.call(reg.get(h), vec![acc], Type::F64);
    }
    let body = |b: &mut FunctionBuilder| {
        if w.flops > 0 {
            b.call_external("pt_work_flops", vec![Value::int(w.flops)], Type::Void);
        }
        if w.mem > 0 {
            b.call_external("pt_work_mem", vec![Value::int(w.mem)], Type::Void);
        }
    };
    if w.inner > 0 {
        b.for_loop(0i64, w.inner, 1i64, |b, _| body(b));
    } else {
        body(b);
    }
    for a in &w.accums {
        let name = format!("Domain_add_{a}");
        b.call(reg.get(&name), vec![d, iv, acc], Type::Void);
    }
}

/// Emit a kernel `name(d)` looping over a scalar count read through the
/// accessor `count_getter` ("Domain_numElem" / "Domain_numNode").
fn add_counted_kernel(
    m: &mut Module,
    reg: &mut Reg,
    name: &str,
    count_getter: &str,
    w: KernelWork,
) -> FunctionId {
    let mut b = FunctionBuilder::new(name, vec![("d".into(), Type::Ptr)], Type::Void);
    let d = b.param(0);
    let n = b.call(reg.get(count_getter), vec![d], Type::I64);
    b.for_loop(0i64, n, 1i64, |b, iv| emit_work(b, reg, iv, &w));
    b.ret(None);
    let id = m.add_function(b.finish());
    reg.put(name, id);
    id
}

/// Emit a region kernel `name(d, r)` looping over `regElemSize[r]`.
fn add_region_kernel(m: &mut Module, reg: &mut Reg, name: &str, w: KernelWork) -> FunctionId {
    let mut b = FunctionBuilder::new(
        name,
        vec![("d".into(), Type::Ptr), ("r".into(), Type::I64)],
        Type::Void,
    );
    let d = b.param(0);
    let len = b.call(
        reg.get("Domain_regElemSize"),
        vec![d, b.param(1)],
        Type::I64,
    );
    b.for_loop(0i64, len, 1i64, |b, iv| emit_work(b, reg, iv, &w));
    b.ret(None);
    let id = m.add_function(b.finish());
    reg.put(name, id);
    id
}

/// Emit a driver `name(d)` that calls each callee once (with `(d)`).
fn add_driver(m: &mut Module, reg: &mut Reg, name: &str, callees: &[&str]) -> FunctionId {
    let mut b = FunctionBuilder::new(name, vec![("d".into(), Type::Ptr)], Type::Void);
    let d = b.param(0);
    for c in callees {
        b.call(reg.get(c), vec![d], Type::Void);
    }
    b.ret(None);
    let id = m.add_function(b.finish());
    reg.put(name, id);
    id
}

/// Emit a region driver `name(d)`: `for r < numReg { callee(d, r) }`.
fn add_region_driver(m: &mut Module, reg: &mut Reg, name: &str, callees: &[&str]) -> FunctionId {
    let mut b = FunctionBuilder::new(name, vec![("d".into(), Type::Ptr)], Type::Void);
    let d = b.param(0);
    let nr = b.call(reg.get("Domain_numReg"), vec![d], Type::I64);
    b.for_loop(0i64, nr, 1i64, |b, r| {
        for c in callees {
            b.call(reg.get(c), vec![d, r], Type::Void);
        }
    });
    b.ret(None);
    let id = m.add_function(b.finish());
    reg.put(name, id);
    id
}

/// Build the complete mini-LULESH application.
pub fn build() -> AppSpec {
    let mut m = Module::new("mini-lulesh");
    let mut reg = Reg::new();

    // ---- accessors (statically constant; the 86% of Table 2) ------------
    for f in FIELDS {
        let slot = field_slot(f);
        reg.put(
            &format!("Domain_{f}"),
            add_field_getter(&mut m, &format!("Domain_{f}"), slot),
        );
        reg.put(
            &format!("Domain_set_{f}"),
            add_field_setter(&mut m, &format!("Domain_set_{f}"), slot),
        );
    }
    for f in ["fx", "fy", "fz", "xd", "yd", "zd", "e", "q"] {
        let name = format!("Domain_add_{f}");
        reg.put(&name, add_field_accumulator(&mut m, &name, field_slot(f)));
    }
    for (name, slot) in [
        ("Domain_numElem", NUM_ELEM),
        ("Domain_numNode", NUM_NODE),
        ("Domain_numReg", NUM_REG),
        ("Domain_cost", COST),
        ("Domain_balance", BALANCE),
        ("Domain_p", P_SLOT),
        ("Domain_rank", RANK),
        ("Domain_cycle", CYCLE),
        ("Domain_size", SIZE),
        ("Domain_dtime", DTIME),
        ("Domain_time", TIME),
    ] {
        reg.put(name, add_scalar_getter(&mut m, name, slot));
    }
    for (name, slot) in [
        ("Domain_set_cycle", CYCLE),
        ("Domain_set_dtime", DTIME),
        ("Domain_set_time", TIME),
        ("Domain_set_numElem", NUM_ELEM),
        ("Domain_set_numNode", NUM_NODE),
    ] {
        reg.put(name, add_scalar_setter(&mut m, name, slot));
    }
    reg.put(
        "Domain_regElemSize",
        add_iarray_getter(&mut m, "Domain_regElemSize", reg_elem_size_slot()),
    );
    reg.put(
        "Domain_set_regElemSize",
        add_iarray_setter(&mut m, "Domain_set_regElemSize", reg_elem_size_slot()),
    );
    reg.put(
        "Domain_regNumList",
        add_iarray_getter(&mut m, "Domain_regNumList", reg_num_list_slot()),
    );
    reg.put(
        "Domain_set_regNumList",
        add_iarray_setter(&mut m, "Domain_set_regNumList", reg_num_list_slot()),
    );

    // ---- element-math helpers (constant-trip loops; pruned statically) --
    for (name, trips, flops) in [
        ("CalcElemVolume", 8, 12),
        ("AreaFace", 4, 9),
        ("TripleProduct", 1, 6),
        ("VoluDer", 6, 10),
        ("CalcElemCharacteristicLength", 6, 8),
        ("CalcElemShapeFunctionDerivatives", 8, 14),
        ("CalcElemNodeNormals", 6, 9),
        ("SumElemFaceNormal", 4, 7),
        ("SumElemStressesToNodeForces", 8, 9),
        ("CalcElemFBHourglassForce", 4, 16),
        ("CalcElemVelocityGradient", 6, 11),
        ("CalcMonotonicQHelper", 2, 8),
    ] {
        reg.put(name, add_elem_math(&mut m, name, trips, flops));
    }
    for (name, flops) in [
        ("CalcPressureEOSHelper", 5),
        ("CalcSoundSpeedHelper", 4),
        ("FMax", 0),
        ("FMin", 0),
        ("Cbrt", 3),
        ("SqrtHelper", 1),
        ("ClampVolume", 1),
        ("InitialGuess", 1),
        ("VDovScale", 1),
        ("CourantScale", 2),
        ("HydroScale", 2),
        ("RegionDtScale", 1),
    ] {
        reg.put(name, add_tiny_helper(&mut m, name, flops));
    }

    // ---- accessor-adjacent helper families (constant padding mirroring
    // the template/inline bloat of the real C++ code) ----------------------
    for f in FIELDS {
        for prefix in ["Gather", "Zero", "ElemMin", "ElemMax", "CopyBlock"] {
            let name = format!("{prefix}_{f}");
            let id = if prefix == "Gather" || prefix == "Zero" {
                add_elem_math(&mut m, &name, 8, 2)
            } else {
                add_tiny_helper(&mut m, &name, 1)
            };
            reg.put(&name, id);
        }
    }
    for f in ["fx", "fy", "fz", "xd", "yd", "zd", "x", "y", "z"] {
        for dir in ["Pack", "Unpack"] {
            let name = format!("CommBuf{dir}_{f}");
            reg.put(&name, add_tiny_helper(&mut m, &name, 2));
        }
    }
    for k in 0..12 {
        let name = format!("EOSHelper_{k}");
        reg.put(&name, add_tiny_helper(&mut m, &name, 3));
    }

    // ---- never-executed parametric functions (pruned dynamically) --------
    for name in [
        "VerifyAndWriteFinalOutput",
        "DumpToFile",
        "DumpDomainToFile",
        "WriteSiloFile",
        "ReadRestartFile",
        "ValidateMesh",
        "PrintDiagnostics",
        "ComputeChecksum",
        "DebugDumpRegions",
        "EnergyAudit",
        "TimingDump",
    ] {
        reg.put(name, add_dead_parametric(&mut m, name));
    }

    // ---- communication routines ------------------------------------------
    // Halo exchange: 6 faces, message size = size² words. The count argument
    // is tainted by `size` — the §5.3 count-argument dependency.
    {
        let mut b = FunctionBuilder::new("CommSBN", vec![("d".into(), Type::Ptr)], Type::Void);
        let d = b.param(0);
        let size = b.call(reg.get("Domain_size"), vec![d], Type::I64);
        let face = b.mul(size, size);
        b.for_loop(0i64, 6i64, 1i64, |b, _| {
            b.call_external("MPI_Isend", vec![face], Type::Void);
            b.call_external("MPI_Irecv", vec![face], Type::Void);
        });
        b.call_external("MPI_Waitall", vec![Value::int(12)], Type::Void);
        b.ret(None);
        let id = m.add_function(b.finish());
        reg.put("CommSBN", id);
    }
    {
        let mut b = FunctionBuilder::new("CommReduceDt", vec![("d".into(), Type::Ptr)], Type::Void);
        b.call_external("MPI_Allreduce", vec![Value::int(1)], Type::Void);
        b.ret(None);
        let id = m.add_function(b.finish());
        reg.put("CommReduceDt", id);
    }

    // ---- setup kernels ----------------------------------------------------
    // InitMeshDecomposition: iterate the cube root of p — a loop whose trip
    // count depends on the implicit parameter (Table 3's `p` column).
    {
        let mut b = FunctionBuilder::new(
            "InitMeshDecomposition",
            vec![("d".into(), Type::Ptr)],
            Type::Void,
        );
        let d = b.param(0);
        let p = b.call(reg.get("Domain_p"), vec![d], Type::I64);
        let t = b.alloca(1i64);
        b.store(t, Value::int(1));
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(header);
        b.switch_to(header);
        let tv = b.load(t, Type::I64);
        let sq = b.mul(tv, tv);
        let cube = b.mul(sq, tv);
        let c = b.cmp(CmpPred::Lt, cube, p);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let tv2 = b.load(t, Type::I64);
        let inc = b.add(tv2, 1i64);
        b.store(t, inc);
        b.br(header);
        b.switch_to(exit);
        b.ret(None);
        let id = m.add_function(b.finish());
        reg.put("InitMeshDecomposition", id);
    }
    // SetupCommBuffers: size² boundary buffer preparation (also p-relevant
    // through the neighbor count; loop bound is size²).
    {
        let mut b = FunctionBuilder::new(
            "SetupCommBuffers",
            vec![("d".into(), Type::Ptr)],
            Type::Void,
        );
        let d = b.param(0);
        let size = b.call(reg.get("Domain_size"), vec![d], Type::I64);
        let face = b.mul(size, size);
        b.for_loop(0i64, face, 1i64, |b, _| {
            b.call_external("pt_work_mem", vec![Value::int(16)], Type::Void);
        });
        b.ret(None);
        let id = m.add_function(b.finish());
        reg.put("SetupCommBuffers", id);
    }
    add_counted_kernel(
        &mut m,
        &mut reg,
        "BuildMesh",
        "Domain_numNode",
        KernelWork {
            flops: 9,
            mem: 24,
            inner: 0,
            getters: vec![],
            accums: vec![],
            helpers: vec!["Cbrt"],
        },
    );
    add_counted_kernel(
        &mut m,
        &mut reg,
        "SetupElementConnectivities",
        "Domain_numElem",
        KernelWork::memory(4, 64),
    );
    add_counted_kernel(
        &mut m,
        &mut reg,
        "SetupBoundaryConditions",
        "Domain_numElem",
        KernelWork::compute(3),
    );
    // SetupRegionIndexSet: the regElemSize histogram (§5.2 example). The
    // region of each element depends on `balance` and `regions`; the number
    // of increments of regElemSize[r] depends on `size` via control flow.
    {
        let mut b = FunctionBuilder::new(
            "SetupRegionIndexSet",
            vec![("d".into(), Type::Ptr)],
            Type::Void,
        );
        let d = b.param(0);
        let num_elem = b.call(reg.get("Domain_numElem"), vec![d], Type::I64);
        let num_reg = b.call(reg.get("Domain_numReg"), vec![d], Type::I64);
        let balance = b.call(reg.get("Domain_balance"), vec![d], Type::I64);
        b.for_loop(0i64, num_reg, 1i64, |b, r| {
            b.call(
                reg.get("Domain_set_regElemSize"),
                vec![d, r, Value::int(0)],
                Type::Void,
            );
        });
        b.for_loop(0i64, num_elem, 1i64, |b, i| {
            let stride = b.add(balance, 1i64);
            let mixed = b.mul(i, stride);
            let r = b.bin(BinOp::Rem, mixed, num_reg);
            b.call(reg.get("Domain_set_regNumList"), vec![d, i, r], Type::Void);
            let cur = b.call(reg.get("Domain_regElemSize"), vec![d, r], Type::I64);
            let next = b.add(cur, 1i64);
            b.call(
                reg.get("Domain_set_regElemSize"),
                vec![d, r, next],
                Type::Void,
            );
        });
        b.ret(None);
        let id = m.add_function(b.finish());
        reg.put("SetupRegionIndexSet", id);
    }
    add_counted_kernel(
        &mut m,
        &mut reg,
        "CalcNodalMass",
        "Domain_numNode",
        KernelWork {
            flops: 6,
            mem: 16,
            inner: 0,
            getters: vec!["elemMass"],
            accums: vec![],
            helpers: vec![],
        },
    );
    add_counted_kernel(
        &mut m,
        &mut reg,
        "InitStressTermsForElems",
        "Domain_numElem",
        KernelWork {
            flops: 4,
            mem: 16,
            inner: 0,
            getters: vec!["pres", "q"],
            accums: vec![],
            helpers: vec![],
        },
    );
    add_counted_kernel(
        &mut m,
        &mut reg,
        "InitialConditionsForElems",
        "Domain_numElem",
        KernelWork::compute(5),
    );

    // ---- time-stepping kernels --------------------------------------------
    add_counted_kernel(
        &mut m,
        &mut reg,
        "IntegrateStressForElems",
        "Domain_numElem",
        KernelWork {
            flops: 12,
            mem: 40,
            inner: 8,
            getters: vec!["x", "y", "z"],
            accums: vec!["fx", "fy", "fz"],
            helpers: vec!["CalcElemShapeFunctionDerivatives"],
        },
    );
    add_counted_kernel(
        &mut m,
        &mut reg,
        "CalcHourglassControlForElems",
        "Domain_numElem",
        KernelWork {
            flops: 10,
            mem: 64,
            inner: 8,
            getters: vec!["x", "y", "z", "v"],
            accums: vec![],
            helpers: vec!["VoluDer"],
        },
    );
    add_counted_kernel(
        &mut m,
        &mut reg,
        "CalcFBHourglassForceForElems",
        "Domain_numElem",
        KernelWork {
            flops: 16,
            mem: 48,
            inner: 4,
            getters: vec!["xd", "yd", "zd"],
            accums: vec!["fx", "fy", "fz"],
            helpers: vec!["CalcElemFBHourglassForce"],
        },
    );
    add_driver(
        &mut m,
        &mut reg,
        "CalcVolumeForceForElems",
        &[
            "InitStressTermsForElems",
            "IntegrateStressForElems",
            "CalcHourglassControlForElems",
            "CalcFBHourglassForceForElems",
        ],
    );
    // CalcForceForNodes: zero the force arrays (memory-bound), compute
    // volume forces, then exchange halos.
    {
        let mut b = FunctionBuilder::new(
            "CalcForceForNodes",
            vec![("d".into(), Type::Ptr)],
            Type::Void,
        );
        let d = b.param(0);
        let n = b.call(reg.get("Domain_numNode"), vec![d], Type::I64);
        b.for_loop(0i64, n, 1i64, |b, _| {
            b.call_external("pt_work_mem", vec![Value::int(24)], Type::Void);
        });
        b.call(reg.get("CalcVolumeForceForElems"), vec![d], Type::Void);
        b.call(reg.get("CommSBN"), vec![d], Type::Void);
        b.ret(None);
        let id = m.add_function(b.finish());
        reg.put("CalcForceForNodes", id);
    }
    add_counted_kernel(
        &mut m,
        &mut reg,
        "CalcAccelerationForNodes",
        "Domain_numNode",
        KernelWork {
            flops: 6,
            mem: 32,
            inner: 0,
            getters: vec!["fx", "fy", "fz", "nodalMass"],
            accums: vec![],
            helpers: vec![],
        },
    );
    // Boundary conditions touch only the size² symmetry planes.
    {
        let mut b = FunctionBuilder::new(
            "ApplyAccelerationBoundaryConditionsForNodes",
            vec![("d".into(), Type::Ptr)],
            Type::Void,
        );
        let d = b.param(0);
        let size = b.call(reg.get("Domain_size"), vec![d], Type::I64);
        let face = b.mul(size, size);
        b.for_loop(0i64, face, 1i64, |b, _| {
            b.call_external("pt_work_mem", vec![Value::int(24)], Type::Void);
        });
        b.ret(None);
        let id = m.add_function(b.finish());
        reg.put("ApplyAccelerationBoundaryConditionsForNodes", id);
    }
    add_counted_kernel(
        &mut m,
        &mut reg,
        "CalcVelocityForNodes",
        "Domain_numNode",
        KernelWork {
            flops: 6,
            mem: 24,
            inner: 0,
            getters: vec!["xdd", "ydd", "zdd"],
            accums: vec!["xd", "yd", "zd"],
            helpers: vec![],
        },
    );
    add_counted_kernel(
        &mut m,
        &mut reg,
        "CalcPositionForNodes",
        "Domain_numNode",
        KernelWork {
            flops: 6,
            mem: 24,
            inner: 0,
            getters: vec!["xd", "yd", "zd"],
            accums: vec![],
            helpers: vec![],
        },
    );
    add_driver(
        &mut m,
        &mut reg,
        "LagrangeNodal",
        &[
            "CalcForceForNodes",
            "CalcAccelerationForNodes",
            "ApplyAccelerationBoundaryConditionsForNodes",
            "CalcVelocityForNodes",
            "CalcPositionForNodes",
        ],
    );

    add_counted_kernel(
        &mut m,
        &mut reg,
        "CalcKinematicsForElems",
        "Domain_numElem",
        KernelWork {
            flops: 14,
            mem: 48,
            inner: 8,
            getters: vec!["x", "y", "z", "xd", "yd", "zd"],
            accums: vec![],
            helpers: vec!["CalcElemVolume", "CalcElemVelocityGradient"],
        },
    );
    add_counted_kernel(
        &mut m,
        &mut reg,
        "CalcCharacteristicLengthForElems",
        "Domain_numElem",
        KernelWork {
            flops: 8,
            mem: 16,
            inner: 0,
            getters: vec!["v"],
            accums: vec![],
            helpers: vec!["CalcElemCharacteristicLength"],
        },
    );
    add_driver(
        &mut m,
        &mut reg,
        "CalcLagrangeElements",
        &["CalcKinematicsForElems", "CalcCharacteristicLengthForElems"],
    );
    add_counted_kernel(
        &mut m,
        &mut reg,
        "CalcMonotonicQGradientsForElems",
        "Domain_numElem",
        KernelWork {
            flops: 12,
            mem: 64,
            inner: 0,
            getters: vec!["x", "y", "z", "xd", "yd", "zd"],
            accums: vec![],
            helpers: vec![],
        },
    );
    add_region_kernel(
        &mut m,
        &mut reg,
        "CalcMonotonicQRegionForElems",
        KernelWork {
            flops: 18,
            mem: 32,
            inner: 0,
            getters: vec!["delv"],
            accums: vec![],
            helpers: vec!["CalcMonotonicQHelper"],
        },
    );
    add_region_driver(
        &mut m,
        &mut reg,
        "CalcMonotonicQForElems",
        &["CalcMonotonicQRegionForElems"],
    );
    // CalcQForElems (the §B2 kernel): gradients, per-region q, halo.
    {
        let mut b =
            FunctionBuilder::new("CalcQForElems", vec![("d".into(), Type::Ptr)], Type::Void);
        let d = b.param(0);
        b.call(
            reg.get("CalcMonotonicQGradientsForElems"),
            vec![d],
            Type::Void,
        );
        b.call(reg.get("CalcMonotonicQForElems"), vec![d], Type::Void);
        b.call(reg.get("CommSBN"), vec![d], Type::Void);
        b.ret(None);
        let id = m.add_function(b.finish());
        reg.put("CalcQForElems", id);
    }
    add_region_kernel(
        &mut m,
        &mut reg,
        "CalcPressureForElems",
        KernelWork {
            flops: 10,
            mem: 0,
            inner: 0,
            getters: vec!["e"],
            accums: vec![],
            helpers: vec!["CalcPressureEOSHelper"],
        },
    );
    add_region_kernel(
        &mut m,
        &mut reg,
        "CalcSoundSpeedForElems",
        KernelWork {
            flops: 8,
            mem: 0,
            inner: 0,
            getters: vec!["pres"],
            accums: vec![],
            helpers: vec!["CalcSoundSpeedHelper"],
        },
    );
    add_region_kernel(
        &mut m,
        &mut reg,
        "CalcEnergyForElems",
        KernelWork {
            flops: 22,
            mem: 0,
            inner: 0,
            getters: vec!["e", "delv"],
            accums: vec![],
            helpers: vec![],
        },
    );
    // EvalEOSForElems: region loop body repeated 1 + cost times (the `cost`
    // parameter of Table 3).
    {
        let mut b = FunctionBuilder::new(
            "EvalEOSForElems",
            vec![("d".into(), Type::Ptr), ("r".into(), Type::I64)],
            Type::Void,
        );
        let d = b.param(0);
        let r = b.param(1);
        let cost = b.call(reg.get("Domain_cost"), vec![d], Type::I64);
        let reps = b.add(cost, 1i64);
        b.for_loop(0i64, reps, 1i64, |b, _| {
            b.call(reg.get("CalcEnergyForElems"), vec![d, r], Type::Void);
        });
        b.call(reg.get("CalcPressureForElems"), vec![d, r], Type::Void);
        b.call(reg.get("CalcSoundSpeedForElems"), vec![d, r], Type::Void);
        b.ret(None);
        let id = m.add_function(b.finish());
        reg.put("EvalEOSForElems", id);
    }
    add_region_driver(
        &mut m,
        &mut reg,
        "ApplyMaterialPropertiesForElems",
        &["EvalEOSForElems"],
    );
    add_counted_kernel(
        &mut m,
        &mut reg,
        "UpdateVolumesForElems",
        "Domain_numElem",
        KernelWork {
            flops: 3,
            mem: 16,
            inner: 0,
            getters: vec!["v"],
            accums: vec![],
            helpers: vec!["ClampVolume"],
        },
    );
    add_driver(
        &mut m,
        &mut reg,
        "LagrangeElements",
        &[
            "CalcLagrangeElements",
            "CalcQForElems",
            "ApplyMaterialPropertiesForElems",
            "UpdateVolumesForElems",
        ],
    );
    add_region_kernel(
        &mut m,
        &mut reg,
        "CalcCourantConstraintForElems",
        KernelWork {
            flops: 9,
            mem: 0,
            inner: 0,
            getters: vec!["ss"],
            accums: vec![],
            helpers: vec!["CourantScale"],
        },
    );
    add_region_kernel(
        &mut m,
        &mut reg,
        "CalcHydroConstraintForElems",
        KernelWork {
            flops: 7,
            mem: 0,
            inner: 0,
            getters: vec!["delv"],
            accums: vec![],
            helpers: vec!["HydroScale"],
        },
    );
    add_region_driver(
        &mut m,
        &mut reg,
        "CalcTimeConstraintsForElems",
        &[
            "CalcCourantConstraintForElems",
            "CalcHydroConstraintForElems",
        ],
    );
    add_counted_kernel(
        &mut m,
        &mut reg,
        "CalcKineticEnergy",
        "Domain_numNode",
        KernelWork {
            flops: 8,
            mem: 16,
            inner: 0,
            getters: vec!["xd", "yd", "zd"],
            accums: vec![],
            helpers: vec![],
        },
    );
    // TimeIncrement: dt reduction plus cycle bookkeeping.
    {
        let mut b =
            FunctionBuilder::new("TimeIncrement", vec![("d".into(), Type::Ptr)], Type::Void);
        let d = b.param(0);
        b.call(reg.get("CommReduceDt"), vec![d], Type::Void);
        let cyc = b.call(reg.get("Domain_cycle"), vec![d], Type::I64);
        let next = b.add(cyc, 1i64);
        b.call(reg.get("Domain_set_cycle"), vec![d, next], Type::Void);
        b.call_external("pt_work_flops", vec![Value::int(20)], Type::Void);
        b.ret(None);
        let id = m.add_function(b.finish());
        reg.put("TimeIncrement", id);
    }
    add_driver(
        &mut m,
        &mut reg,
        "LagrangeLeapFrog",
        &[
            "LagrangeNodal",
            "LagrangeElements",
            "CalcTimeConstraintsForElems",
            "CalcKineticEnergy",
        ],
    );

    // ---- main --------------------------------------------------------------
    {
        let mut b = FunctionBuilder::new("main", vec![], Type::Void);
        let size = b.call_external("pt_param_i64", vec![Value::int(0)], Type::I64);
        let regions = b.call_external("pt_param_i64", vec![Value::int(1)], Type::I64);
        let balance = b.call_external("pt_param_i64", vec![Value::int(2)], Type::I64);
        let cost = b.call_external("pt_param_i64", vec![Value::int(3)], Type::I64);
        let iters = b.call_external("pt_param_i64", vec![Value::int(4)], Type::I64);

        let d = b.alloca(HEADER_WORDS);
        let sq = b.mul(size, size);
        let num_elem = b.mul(sq, size);
        let sp1 = b.add(size, 1i64);
        let sp1sq = b.mul(sp1, sp1);
        let num_node = b.mul(sp1sq, sp1);
        for (slot, v) in [
            (NUM_ELEM, num_elem),
            (NUM_NODE, num_node),
            (NUM_REG, regions),
            (COST, cost),
            (BALANCE, balance),
            (SIZE, size),
            (CYCLE, Value::int(0)),
        ] {
            let addr = b.gep(d, Value::int(slot), 1);
            b.store(addr, v);
        }
        let pslot = b.gep(d, Value::int(P_SLOT), 1);
        b.call_external("MPI_Comm_size", vec![pslot], Type::Void);
        let rslot = b.gep(d, Value::int(RANK), 1);
        b.call_external("MPI_Comm_rank", vec![rslot], Type::Void);

        // Field arrays: sized by numNode (≥ numElem), base pointers in the
        // header — the §3.1 indirection pattern.
        for f in FIELDS {
            let base = b.alloca(num_node);
            let addr = b.gep(d, Value::int(field_slot(f)), 1);
            b.store(addr, base);
        }
        let reg_es = b.alloca(regions);
        let addr = b.gep(d, Value::int(reg_elem_size_slot()), 1);
        b.store(addr, reg_es);
        let reg_nl = b.alloca(num_elem);
        let addr = b.gep(d, Value::int(reg_num_list_slot()), 1);
        b.store(addr, reg_nl);

        for setup in [
            "InitMeshDecomposition",
            "SetupCommBuffers",
            "BuildMesh",
            "SetupElementConnectivities",
            "SetupBoundaryConditions",
            "SetupRegionIndexSet",
            "CalcNodalMass",
            "InitStressTermsForElems",
            "InitialConditionsForElems",
        ] {
            b.call(reg.get(setup), vec![d], Type::Void);
        }
        b.for_loop(0i64, iters, 1i64, |b, _| {
            b.call(reg.get("TimeIncrement"), vec![d], Type::Void);
            b.call(reg.get("LagrangeLeapFrog"), vec![d], Type::Void);
        });
        b.call_external("MPI_Barrier", vec![], Type::Void);
        b.ret(None);
        let id = m.add_function(b.finish());
        reg.put("main", id);
    }

    pt_ir::verify_module(&m).expect("mini-lulesh verifies");

    AppSpec {
        name: "mini-lulesh".into(),
        module: m,
        entry: "main".into(),
        params: vec![
            ParamSpec::new("size", 5, 16),
            ParamSpec::new("regions", 11, 11),
            ParamSpec::new("balance", 1, 1),
            ParamSpec::new("cost", 1, 1),
            ParamSpec::new("iters", 3, 2),
            // The implicit parameter: its value must match the machine's
            // rank count in every run (the paper's taint run uses 8 ranks).
            ParamSpec::new("p", 8, 8),
        ],
        model_params: vec!["p".into(), "size".into()],
    }
}

/// The kernels of the §6 discussion by name (used by harnesses and tests).
pub fn known_kernels() -> Vec<&'static str> {
    vec![
        "IntegrateStressForElems",
        "CalcHourglassControlForElems",
        "CalcFBHourglassForceForElems",
        "CalcForceForNodes",
        "CalcQForElems",
        "CalcKinematicsForElems",
        "EvalEOSForElems",
        "CalcEnergyForElems",
        "SetupRegionIndexSet",
        "LagrangeLeapFrog",
        "TimeIncrement",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_verifies() {
        let app = build();
        assert_eq!(app.entry, "main");
        assert!(app.module.function_by_name("main").is_some());
        // Paper scale: LULESH has 356 functions; ours must land in the same
        // regime (hundreds, overwhelmingly tiny accessors).
        let n = app.module.functions.len();
        assert!(
            (300..400).contains(&n),
            "function count {n} out of LULESH-like range"
        );
    }

    #[test]
    fn uses_the_papers_mpi_routines() {
        let app = build();
        let externs = app.module.used_externals();
        for mpi in [
            "MPI_Comm_size",
            "MPI_Comm_rank",
            "MPI_Isend",
            "MPI_Irecv",
            "MPI_Waitall",
            "MPI_Allreduce",
        ] {
            assert!(externs.contains(&mpi), "{mpi} missing");
        }
        // 7 MPI functions in Table 2 (6 here + work primitives excluded).
        let mpi_count = externs.iter().filter(|e| e.starts_with("MPI_")).count();
        assert!(
            (5..=8).contains(&mpi_count),
            "MPI routine count {mpi_count}"
        );
    }

    #[test]
    fn param_spec_matches_paper_taint_run() {
        let app = build();
        assert_eq!(app.params[0].name, "size");
        assert_eq!(app.params[0].taint_run_value, 5, "taint run uses size 5");
        let p = app.params.iter().find(|p| p.name == "p").unwrap();
        assert_eq!(p.taint_run_value, 8, "taint run uses 8 ranks");
        assert_eq!(app.model_params, vec!["p".to_string(), "size".to_string()]);
    }

    #[test]
    fn known_kernels_exist() {
        let app = build();
        for k in known_kernels() {
            assert!(
                app.module.function_by_name(k).is_some(),
                "kernel {k} missing"
            );
        }
    }

    #[test]
    fn dead_functions_present_but_uncalled() {
        let app = build();
        let dead = app.module.function_by_name("VerifyAndWriteFinalOutput");
        assert!(dead.is_some());
        // No function calls it.
        let dead = dead.unwrap();
        for f in app.module.function_ids() {
            assert!(
                !app.module.callees(f).contains(&dead),
                "dead function unexpectedly called"
            );
        }
    }
}
