//! The production [`ExternalHandler`]: resolves MPI routines against the
//! analytical cost models and the library database, and charges work
//! primitives against the machine model (including memory contention, §C1).
//!
//! Message counts are in 8-byte words (the IR's word size).

use crate::comm;
use crate::config::MachineConfig;
use crate::libdb::{LibraryDb, TaintEffect};
use pt_taint::{ExternResult, ExternalHandler, HostCtx, TVal};

/// MPI + work-primitive handler over a simulated machine.
pub struct MpiHandler {
    pub config: MachineConfig,
    pub db: LibraryDb,
    /// Values printed via `pt_print_i64` (inspectable by tests).
    pub printed: Vec<i64>,
}

impl MpiHandler {
    pub fn new(config: MachineConfig) -> MpiHandler {
        MpiHandler {
            config,
            db: LibraryDb::mpi_default(),
            printed: Vec::new(),
        }
    }

    fn bytes(words: i64) -> usize {
        (words.max(0) as usize) * 8
    }
}

/// Dense dispatch tokens ([`ExternalHandler::resolve`] /
/// [`ExternalHandler::call_token`]): the decode-once engine resolves each
/// symbol once per run, so the hot path never string-matches a name.
mod token {
    pub const WORK_FLOPS: u32 = 0;
    pub const WORK_MEM: u32 = 1;
    pub const PRINT_I64: u32 = 2;
    pub const COMM_SIZE: u32 = 3;
    pub const COMM_RANK: u32 = 4;
    pub const P2P: u32 = 5;
    pub const WAITALL: u32 = 6;
    pub const BARRIER: u32 = 7;
    pub const ALLREDUCE: u32 = 8;
    pub const REDUCE: u32 = 9;
    pub const BCAST: u32 = 10;
    pub const ALLGATHER: u32 = 11;
    pub const GATHER: u32 = 12;
}

impl ExternalHandler for MpiHandler {
    fn call(&mut self, name: &str, args: &[TVal], ctx: &mut HostCtx<'_>) -> ExternResult {
        match self.resolve(name) {
            Some(t) => self.call_token(t, args, ctx),
            None => Err(format!("MpiHandler: unknown external {name}")),
        }
    }

    fn resolve(&self, name: &str) -> Option<u32> {
        Some(match name {
            "pt_work_flops" => token::WORK_FLOPS,
            "pt_work_mem" => token::WORK_MEM,
            "pt_print_i64" => token::PRINT_I64,
            "MPI_Comm_size" => token::COMM_SIZE,
            "MPI_Comm_rank" => token::COMM_RANK,
            // The four point-to-point routines share one cost model.
            "MPI_Send" | "MPI_Recv" | "MPI_Isend" | "MPI_Irecv" => token::P2P,
            "MPI_Waitall" => token::WAITALL,
            "MPI_Barrier" => token::BARRIER,
            "MPI_Allreduce" => token::ALLREDUCE,
            "MPI_Reduce" => token::REDUCE,
            "MPI_Bcast" => token::BCAST,
            "MPI_Allgather" => token::ALLGATHER,
            "MPI_Gather" => token::GATHER,
            _ => return None,
        })
    }

    fn call_token(&mut self, tok: u32, args: &[TVal], ctx: &mut HostCtx<'_>) -> ExternResult {
        let cfg = &self.config;
        let arg_i64 = |i: usize| args.get(i).map(|a| a.as_i64()).unwrap_or(0);
        match tok {
            // ---- work primitives --------------------------------------
            token::WORK_FLOPS => {
                let n = arg_i64(0).max(0) as f64;
                Ok((TVal::UNTAINTED_ZERO, n * cfg.flop_time))
            }
            token::WORK_MEM => {
                // Memory-bound work experiences node-level contention.
                let n = arg_i64(0).max(0) as f64;
                Ok((TVal::UNTAINTED_ZERO, n * cfg.contended_mem_word_time()))
            }
            token::PRINT_I64 => {
                self.printed.push(arg_i64(0));
                Ok((TVal::UNTAINTED_ZERO, 0.0))
            }

            // ---- MPI environment ---------------------------------------
            token::COMM_SIZE => {
                let addr = args
                    .first()
                    .ok_or("MPI_Comm_size needs a pointer argument")?
                    .as_addr();
                let mut val = TVal::from_i64(cfg.ranks as i64);
                // Library database: this routine is a source of the implicit
                // parameter `p` (§5.3).
                if ctx.taint {
                    if let Some(entry) = self.db.get("MPI_Comm_size") {
                        if let TaintEffect::WritesImplicitParam { arg: 0 } = entry.effect {
                            let label = ctx.labels.base_label("p");
                            val = val.with_label(label);
                        }
                    }
                }
                ctx.mem.store(addr, val).map_err(|e| e.to_string())?;
                Ok((TVal::UNTAINTED_ZERO, 50e-9))
            }
            token::COMM_RANK => {
                let addr = args
                    .first()
                    .ok_or("MPI_Comm_rank needs a pointer argument")?
                    .as_addr();
                ctx.mem
                    .store(addr, TVal::from_i64(cfg.rank as i64))
                    .map_err(|e| e.to_string())?;
                Ok((TVal::UNTAINTED_ZERO, 50e-9))
            }

            // ---- point-to-point ----------------------------------------
            token::P2P => {
                let t = if cfg.ranks <= 1 {
                    0.0
                } else {
                    comm::p2p(cfg, Self::bytes(arg_i64(0)))
                };
                Ok((TVal::UNTAINTED_ZERO, t))
            }
            token::WAITALL => Ok((TVal::UNTAINTED_ZERO, 100e-9)),

            // ---- collectives -------------------------------------------
            token::BARRIER => Ok((TVal::UNTAINTED_ZERO, comm::barrier(cfg))),
            token::ALLREDUCE => Ok((
                TVal::UNTAINTED_ZERO,
                comm::allreduce(cfg, Self::bytes(arg_i64(0))),
            )),
            token::REDUCE => Ok((
                TVal::UNTAINTED_ZERO,
                comm::reduce(cfg, Self::bytes(arg_i64(0))),
            )),
            token::BCAST => Ok((
                TVal::UNTAINTED_ZERO,
                comm::bcast(cfg, Self::bytes(arg_i64(0))),
            )),
            token::ALLGATHER => Ok((
                TVal::UNTAINTED_ZERO,
                comm::allgather(cfg, Self::bytes(arg_i64(0))),
            )),
            token::GATHER => Ok((
                TVal::UNTAINTED_ZERO,
                comm::gather(cfg, Self::bytes(arg_i64(0))),
            )),

            _ => unreachable!("token not produced by resolve()"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_ir::{FunctionBuilder, Module, Type, Value};
    use pt_taint::{InterpConfig, Interpreter, PreparedModule};

    /// Build a program: read p via MPI_Comm_size, loop p times over a
    /// ring send, then allreduce.
    fn mpi_program() -> Module {
        let mut m = Module::new("mpi-test");
        let mut b = FunctionBuilder::new("main", vec![], Type::I64);
        let slot = b.alloca(1i64);
        b.call_external("MPI_Comm_size", vec![slot], Type::Void);
        let p = b.load(slot, Type::I64);
        b.for_loop(0i64, p, 1i64, |b, _| {
            b.call_external("MPI_Send", vec![Value::int(128)], Type::Void);
        });
        b.call_external("MPI_Allreduce", vec![Value::int(1)], Type::Void);
        b.ret(Some(p));
        m.add_function(b.finish());
        m
    }

    fn run(p: u32, params: Vec<(String, i64)>) -> pt_taint::RunOutput {
        let m = mpi_program();
        let prepared = PreparedModule::compute(&m);
        let handler = MpiHandler::new(MachineConfig::default().with_ranks(p));
        Interpreter::new(&m, &prepared, handler, params, InterpConfig::default())
            .run_named("main", &[])
            .expect("run")
    }

    #[test]
    fn comm_size_returns_p_with_implicit_label() {
        let out = run(16, vec![("p".into(), 16)]);
        assert_eq!(out.ret.unwrap().as_i64(), 16);
        // The loop over p must be recorded with the implicit parameter.
        let loops = out.records.loops_by_function();
        assert_eq!(loops.len(), 1);
        let rec = loops.values().next().unwrap();
        assert_eq!(rec.iterations, 16);
        let idx = out.labels.param_index("p").expect("p interned");
        assert!(rec.params.contains(idx), "loop depends on implicit p");
    }

    #[test]
    fn implicit_param_created_even_if_not_preregistered() {
        // "p" not in the params list: the handler still interns a base label.
        let out = run(4, vec![]);
        assert!(out.labels.param_index("p").is_some());
    }

    #[test]
    fn communication_time_scales_with_p() {
        let t8 = run(8, vec![]).time;
        let t64 = run(64, vec![]).time;
        assert!(t64 > t8, "more ranks, more ring sends and deeper trees");
    }

    #[test]
    fn contention_raises_memory_cost_only() {
        let mut m = Module::new("memtest");
        let mut b = FunctionBuilder::new("main", vec![], Type::Void);
        b.call_external("pt_work_mem", vec![Value::int(1_000_000)], Type::Void);
        b.call_external("pt_work_flops", vec![Value::int(1_000_000)], Type::Void);
        b.ret(None);
        m.add_function(b.finish());
        let prepared = PreparedModule::compute(&m);
        let time_at = |r: u32| {
            let cfg = MachineConfig::default()
                .with_ranks(64)
                .with_ranks_per_node(r)
                .with_contention(crate::config::ContentionModel::CALIBRATED);
            let h = MpiHandler::new(cfg);
            Interpreter::new(&m, &prepared, h, vec![], InterpConfig::default())
                .run_named("main", &[])
                .unwrap()
                .time
        };
        let t2 = time_at(2);
        let t18 = time_at(18);
        assert!(t18 > t2 * 1.1, "contention slows memory work: {t2} → {t18}");
    }

    #[test]
    fn mpi_calls_appear_in_profile() {
        let out = run(8, vec![]);
        let by_fn = out.profile.by_function();
        // Pseudo-ids for externals are beyond the module's function count.
        let has_extern_entries = by_fn.keys().any(|id| id.index() >= 1);
        assert!(has_extern_entries, "externals profiled as own entries");
    }

    #[test]
    fn unknown_symbol_rejected() {
        let mut m = Module::new("bad");
        let mut b = FunctionBuilder::new("main", vec![], Type::Void);
        b.call_external("MPI_Alltoallw", vec![], Type::Void);
        b.ret(None);
        m.add_function(b.finish());
        let prepared = PreparedModule::compute(&m);
        let h = MpiHandler::new(MachineConfig::default());
        let r = Interpreter::new(&m, &prepared, h, vec![], InterpConfig::default())
            .run_named("main", &[]);
        assert!(r.is_err());
    }
}
