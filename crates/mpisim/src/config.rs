//! The simulated machine: rank layout, network parameters, per-operation
//! costs, and the node-level memory-contention model of §C1.

use serde::{Deserialize, Serialize};

/// Memory-bandwidth contention among ranks co-located on a node (§C1).
///
/// The paper's experiment shows compute kernels with *no* source-level
/// dependence on the rank count slowing down as more MPI ranks share a
/// socket, with fitted models of the form `a·log2(r) + b·log2²(r) + c`.
/// We model the saturation factor applied to memory-bound work as
/// `1 + a·log2(r) + b·log2²(r)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContentionModel {
    pub lin_log: f64,
    pub sq_log: f64,
}

impl ContentionModel {
    /// No contention (infinite memory bandwidth).
    pub const NONE: ContentionModel = ContentionModel {
        lin_log: 0.0,
        sq_log: 0.0,
    };

    /// Calibrated so that the whole-application slowdown from r=2 to r=18
    /// lands near the paper's ~50% (Figure 5).
    pub const CALIBRATED: ContentionModel = ContentionModel {
        lin_log: 0.01,
        sq_log: 0.032,
    };

    /// Slowdown factor for memory-bound work at `r` ranks per node.
    pub fn factor(&self, ranks_per_node: u32) -> f64 {
        let r = ranks_per_node.max(1) as f64;
        let l = r.log2();
        1.0 + self.lin_log * l + self.sq_log * l * l
    }
}

/// Full machine configuration for one simulated run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Total MPI ranks (the implicit parameter `p`).
    pub ranks: u32,
    /// Ranks per node (the §C1 experiment's `r`).
    pub ranks_per_node: u32,
    /// The representative rank whose execution we simulate.
    pub rank: u32,
    /// Point-to-point latency α (seconds).
    pub latency: f64,
    /// Network time per byte β (seconds/byte); 1/β is the bandwidth.
    pub byte_time: f64,
    /// Seconds per floating-point operation charged by `pt_work_flops`.
    pub flop_time: f64,
    /// Seconds per word of memory traffic charged by `pt_work_mem`
    /// (before contention).
    pub mem_word_time: f64,
    pub contention: ContentionModel,
}

impl Default for MachineConfig {
    fn default() -> Self {
        // Loosely a Skylake-generation cluster: ~1.5 µs MPI latency,
        // ~12 GB/s effective per-rank bandwidth, ~5 GFLOP/s scalar rate.
        MachineConfig {
            ranks: 8,
            ranks_per_node: 8,
            rank: 0,
            latency: 1.5e-6,
            byte_time: 8.0e-11,
            flop_time: 2.0e-10,
            mem_word_time: 6.7e-10,
            contention: ContentionModel::NONE,
        }
    }
}

impl MachineConfig {
    pub fn with_ranks(mut self, p: u32) -> Self {
        self.ranks = p;
        self
    }

    pub fn with_ranks_per_node(mut self, r: u32) -> Self {
        self.ranks_per_node = r;
        self
    }

    pub fn with_contention(mut self, c: ContentionModel) -> Self {
        self.contention = c;
        self
    }

    /// Number of nodes implied by the layout.
    pub fn nodes(&self) -> u32 {
        self.ranks.div_ceil(self.ranks_per_node).max(1)
    }

    /// Effective per-word memory cost including contention.
    pub fn contended_mem_word_time(&self) -> f64 {
        self.mem_word_time * self.contention.factor(self.ranks_per_node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contention_factor_grows_with_r() {
        let c = ContentionModel::CALIBRATED;
        assert!((c.factor(1) - 1.0).abs() < 1e-12);
        let f2 = c.factor(2);
        let f18 = c.factor(18);
        assert!(f2 < f18);
        let increase = f18 / f2;
        assert!(
            (1.3..1.8).contains(&increase),
            "r=2→18 slowdown {increase} should be near the paper's ~1.5×"
        );
    }

    #[test]
    fn no_contention_is_identity() {
        for r in [1, 2, 8, 32] {
            assert_eq!(ContentionModel::NONE.factor(r), 1.0);
        }
    }

    #[test]
    fn node_count() {
        let c = MachineConfig::default()
            .with_ranks(64)
            .with_ranks_per_node(18);
        assert_eq!(c.nodes(), 4);
        let c = MachineConfig::default()
            .with_ranks(8)
            .with_ranks_per_node(8);
        assert_eq!(c.nodes(), 1);
    }

    #[test]
    fn contended_memory_cost() {
        let mut c = MachineConfig::default().with_ranks_per_node(16);
        c.contention = ContentionModel::CALIBRATED;
        assert!(c.contended_mem_word_time() > c.mem_word_time);
        c.contention = ContentionModel::NONE;
        assert_eq!(c.contended_mem_word_time(), c.mem_word_time);
    }
}
