//! # pt-mpisim — the simulated MPI substrate
//!
//! Stands in for the real clusters of the paper's evaluation (Piz Daint /
//! Skylake, Table 1). Three pieces:
//!
//! * [`config`] — the machine model: rank layout (`p`, ranks-per-node `r`),
//!   latency/bandwidth, per-flop and per-word costs, and the §C1 memory-
//!   contention model (`1 + a·log₂r + b·log₂²r` on memory-bound work).
//! * [`comm`] — analytical communication cost models (Hockney point-to-point,
//!   logarithmic-tree collectives per Thakur et al.), the source of the
//!   `log₂ p` shapes the modeler recovers.
//! * [`libdb`] — the §5.3 library database: implicit parameter `p`, message-
//!   count arguments, and taint-source routines (`MPI_Comm_size` writes a
//!   `p`-labeled value).
//! * [`handler`] — the [`pt_taint::ExternalHandler`] gluing it all to the
//!   interpreter. We simulate SPMD execution by running one representative
//!   rank and charging communication analytically; this preserves exactly
//!   the scaling shapes the evaluation studies.

pub mod comm;
pub mod config;
pub mod handler;
pub mod libdb;

pub use config::{ContentionModel, MachineConfig};
pub use handler::MpiHandler;
pub use libdb::{LibFn, LibraryDb, TaintEffect};
