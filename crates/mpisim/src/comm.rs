//! Analytical MPI communication cost models.
//!
//! The paper derives parametric dependencies for MPI routines "from precise
//! analytical models" (§5.3, citing Hoefler/Moor and Thakur et al.). We use
//! the same families: Hockney `α + nβ` for point-to-point and
//! logarithmic-tree models for collectives. These models are what give the
//! simulated communication its `log₂ p` shape — the shape the modeling
//! pipeline is expected to recover.

use crate::config::MachineConfig;

/// Ceil(log2(p)) with log2(1) = 0.
#[inline]
pub fn ceil_log2(p: u32) -> f64 {
    if p <= 1 {
        0.0
    } else {
        (32 - (p - 1).leading_zeros()) as f64
    }
}

/// Hockney model: one point-to-point message of `bytes`.
pub fn p2p(cfg: &MachineConfig, bytes: usize) -> f64 {
    cfg.latency + bytes as f64 * cfg.byte_time
}

/// Barrier: dissemination algorithm, ⌈log₂ p⌉ rounds of latency.
pub fn barrier(cfg: &MachineConfig) -> f64 {
    ceil_log2(cfg.ranks) * cfg.latency
}

/// Broadcast: binomial tree, ⌈log₂ p⌉ · (α + nβ) (Thakur et al.).
pub fn bcast(cfg: &MachineConfig, bytes: usize) -> f64 {
    ceil_log2(cfg.ranks) * (cfg.latency + bytes as f64 * cfg.byte_time)
}

/// Reduce: binomial tree with the same shape as broadcast.
pub fn reduce(cfg: &MachineConfig, bytes: usize) -> f64 {
    ceil_log2(cfg.ranks) * (cfg.latency + bytes as f64 * cfg.byte_time)
}

/// Allreduce: reduce + broadcast (2·⌈log₂ p⌉ rounds); matches the
/// tree-based allreduce bound 2(α + nβ)·log₂ p.
pub fn allreduce(cfg: &MachineConfig, bytes: usize) -> f64 {
    2.0 * ceil_log2(cfg.ranks) * (cfg.latency + bytes as f64 * cfg.byte_time)
}

/// Allgather: recursive doubling — ⌈log₂ p⌉ latency rounds, each rank ends
/// up receiving (p−1)/p of the total payload.
pub fn allgather(cfg: &MachineConfig, bytes_per_rank: usize) -> f64 {
    let p = cfg.ranks.max(1) as f64;
    ceil_log2(cfg.ranks) * cfg.latency + (p - 1.0) * bytes_per_rank as f64 * cfg.byte_time
}

/// Gather to a root: binomial tree latency, linear payload at the root.
pub fn gather(cfg: &MachineConfig, bytes_per_rank: usize) -> f64 {
    let p = cfg.ranks.max(1) as f64;
    ceil_log2(cfg.ranks) * cfg.latency + (p - 1.0) * bytes_per_rank as f64 * cfg.byte_time
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(p: u32) -> MachineConfig {
        MachineConfig::default().with_ranks(p)
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0.0);
        assert_eq!(ceil_log2(2), 1.0);
        assert_eq!(ceil_log2(3), 2.0);
        assert_eq!(ceil_log2(4), 2.0);
        assert_eq!(ceil_log2(27), 5.0);
        assert_eq!(ceil_log2(729), 10.0);
    }

    #[test]
    fn p2p_is_alpha_beta() {
        let c = cfg(8);
        let t = p2p(&c, 1000);
        assert!((t - (c.latency + 1000.0 * c.byte_time)).abs() < 1e-18);
        assert!(p2p(&c, 0) > 0.0, "latency dominates empty messages");
    }

    #[test]
    fn collectives_grow_logarithmically() {
        {
            let f = barrier as fn(&MachineConfig) -> f64;
            let t8 = f(&cfg(8));
            let t64 = f(&cfg(64));
            assert!((t64 / t8 - 2.0).abs() < 1e-9, "log2(64)/log2(8) = 2");
        }
        let a8 = allreduce(&cfg(8), 8);
        let a64 = allreduce(&cfg(64), 8);
        assert!((a64 / a8 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn allreduce_twice_bcast() {
        let c = cfg(16);
        assert!((allreduce(&c, 64) - 2.0 * bcast(&c, 64)).abs() < 1e-15);
    }

    #[test]
    fn gather_payload_linear_in_p() {
        let t4 = gather(&cfg(4), 800);
        let t8 = gather(&cfg(8), 800);
        // Payload term scales with (p-1): from 3 to 7 units.
        let payload4 = t4 - ceil_log2(4) * cfg(4).latency;
        let payload8 = t8 - ceil_log2(8) * cfg(8).latency;
        assert!((payload8 / payload4 - 7.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn single_rank_communication_is_free() {
        let c = cfg(1);
        assert_eq!(barrier(&c), 0.0);
        assert_eq!(allreduce(&c, 100), 0.0);
        assert_eq!(allgather(&c, 100), 0.0);
    }
}
