//! The performance-critical library database (§5.3 of the paper).
//!
//! Loop-based kernels are not the only channel through which parameters
//! affect performance: communication and synchronization routines depend on
//! (1) exchanged tainted values, (2) explicitly passed parameters, and (3)
//! parameters hidden inside the library runtime — above all the size of the
//! global communicator, the implicit parameter `p`. The database declares,
//! per routine:
//!
//! * which *implicit parameters* its cost depends on (`p` for every
//!   collective and point-to-point routine),
//! * which argument is a *message count* whose taint labels become
//!   additional parametric dependencies of the call site,
//! * whether the routine is a *taint source* (e.g. `MPI_Comm_size` writes a
//!   `p`-labeled value through its pointer argument).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// What a library routine does to taint when called.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaintEffect {
    /// No taint interaction.
    None,
    /// Writes a value labeled with the implicit parameter through the
    /// pointer in argument `arg`.
    WritesImplicitParam { arg: usize },
}

/// Database entry for one library routine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LibFn {
    /// Implicit parameters the routine's cost depends on (names).
    pub implicit_params: Vec<String>,
    /// Index of the message-count argument, if any: the taint labels of
    /// this argument become parametric dependencies of the call (§5.3).
    pub count_arg: Option<usize>,
    /// Taint source behavior.
    pub effect: TaintEffect,
}

/// The library database: routine name → entry.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LibraryDb {
    pub functions: HashMap<String, LibFn>,
}

impl LibraryDb {
    /// The MPI database shipped with Perf-Taint: the routines used by the
    /// mini-applications, with `p` as the implicit communicator-size
    /// parameter.
    pub fn mpi_default() -> LibraryDb {
        let mut functions = HashMap::new();
        let dep_p_count = |count_arg: usize| LibFn {
            implicit_params: vec!["p".into()],
            count_arg: Some(count_arg),
            effect: TaintEffect::None,
        };
        functions.insert("MPI_Send".into(), dep_p_count(0));
        functions.insert("MPI_Recv".into(), dep_p_count(0));
        functions.insert("MPI_Isend".into(), dep_p_count(0));
        functions.insert("MPI_Irecv".into(), dep_p_count(0));
        functions.insert("MPI_Allreduce".into(), dep_p_count(0));
        functions.insert("MPI_Reduce".into(), dep_p_count(0));
        functions.insert("MPI_Bcast".into(), dep_p_count(0));
        functions.insert("MPI_Allgather".into(), dep_p_count(0));
        functions.insert("MPI_Gather".into(), dep_p_count(0));
        functions.insert(
            "MPI_Barrier".into(),
            LibFn {
                implicit_params: vec!["p".into()],
                count_arg: None,
                effect: TaintEffect::None,
            },
        );
        functions.insert(
            "MPI_Waitall".into(),
            LibFn {
                implicit_params: vec![],
                count_arg: None,
                effect: TaintEffect::None,
            },
        );
        // MPI_Comm_size is a taint *source* (it writes a p-labeled value),
        // but its own cost is constant — like MPI_Comm_rank, the §B1
        // functions black-box modeling gets wrong under noise.
        functions.insert(
            "MPI_Comm_size".into(),
            LibFn {
                implicit_params: vec![],
                count_arg: None,
                effect: TaintEffect::WritesImplicitParam { arg: 0 },
            },
        );
        functions.insert(
            "MPI_Comm_rank".into(),
            LibFn {
                implicit_params: vec![],
                count_arg: None,
                effect: TaintEffect::None,
            },
        );
        LibraryDb { functions }
    }

    pub fn get(&self, name: &str) -> Option<&LibFn> {
        self.functions.get(name)
    }

    /// Is this routine known to be performance-relevant? (Feeds the static
    /// classification: callers of such routines are never pruned, §5.1.)
    pub fn is_relevant(&self, name: &str) -> bool {
        self.functions
            .get(name)
            .map(|f| !f.implicit_params.is_empty() || f.count_arg.is_some())
            .unwrap_or(false)
    }

    /// All performance-relevant routine names (for
    /// `pt_analysis::classify_module`).
    pub fn relevant_names(&self) -> impl Iterator<Item = &str> {
        self.functions
            .iter()
            .filter(|(_, f)| !f.implicit_params.is_empty() || f.count_arg.is_some())
            .map(|(n, _)| n.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_db_covers_used_routines() {
        let db = LibraryDb::mpi_default();
        for name in [
            "MPI_Send",
            "MPI_Recv",
            "MPI_Allreduce",
            "MPI_Bcast",
            "MPI_Barrier",
            "MPI_Comm_size",
            "MPI_Comm_rank",
            "MPI_Allgather",
        ] {
            assert!(db.get(name).is_some(), "{name} missing");
        }
    }

    #[test]
    fn comm_size_is_a_taint_source_with_constant_cost() {
        let db = LibraryDb::mpi_default();
        let f = db.get("MPI_Comm_size").unwrap();
        assert_eq!(f.effect, TaintEffect::WritesImplicitParam { arg: 0 });
        assert!(f.implicit_params.is_empty(), "cost is p-independent");
        assert!(!db.is_relevant("MPI_Comm_size"));
    }

    #[test]
    fn relevance_classification() {
        let db = LibraryDb::mpi_default();
        assert!(db.is_relevant("MPI_Allreduce"));
        assert!(db.is_relevant("MPI_Barrier"));
        assert!(!db.is_relevant("MPI_Comm_rank"), "rank query is constant");
        assert!(
            !db.is_relevant("pt_print_i64"),
            "unknown symbols irrelevant"
        );
        let names: Vec<&str> = db.relevant_names().collect();
        assert!(names.contains(&"MPI_Send"));
        assert!(!names.contains(&"MPI_Comm_rank"));
    }

    #[test]
    fn count_args_recorded() {
        let db = LibraryDb::mpi_default();
        assert_eq!(db.get("MPI_Send").unwrap().count_arg, Some(0));
        assert_eq!(db.get("MPI_Barrier").unwrap().count_arg, None);
    }
}
