//! Calling-context (call-path) interning.
//!
//! Perf-Taint stores call-path information so the empirical modeler can build
//! calling-context-aware models (§5.2: "We store call-path information to
//! distinguish between function calls that result in different
//! dependencies"). Paths are interned into integer ids: a path is
//! `(parent-path, function)`, forming the calling-context tree.

use pt_ir::FunctionId;
use std::collections::HashMap;

/// Identifier of one node in the calling-context tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PathId(pub u32);

impl PathId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone, Copy)]
struct PathNode {
    parent: Option<PathId>,
    func: FunctionId,
}

/// Interning table for call paths.
#[derive(Debug, Default)]
pub struct CallPathTable {
    nodes: Vec<PathNode>,
    memo: HashMap<(Option<PathId>, FunctionId), PathId>,
}

impl CallPathTable {
    pub fn new() -> CallPathTable {
        CallPathTable::default()
    }

    /// Intern the path `parent → func`.
    pub fn intern(&mut self, parent: Option<PathId>, func: FunctionId) -> PathId {
        if let Some(&id) = self.memo.get(&(parent, func)) {
            return id;
        }
        let id = PathId(self.nodes.len() as u32);
        self.nodes.push(PathNode { parent, func });
        self.memo.insert((parent, func), id);
        id
    }

    /// The function at the end of `path`.
    #[inline]
    pub fn func_of(&self, path: PathId) -> FunctionId {
        self.nodes[path.index()].func
    }

    /// The parent path, if any.
    #[inline]
    pub fn parent_of(&self, path: PathId) -> Option<PathId> {
        self.nodes[path.index()].parent
    }

    /// Depth of the path (root = 1).
    pub fn depth_of(&self, path: PathId) -> usize {
        let mut d = 1;
        let mut cur = path;
        while let Some(p) = self.parent_of(cur) {
            d += 1;
            cur = p;
        }
        d
    }

    /// The full chain of function ids from the root to `path`.
    pub fn chain(&self, path: PathId) -> Vec<FunctionId> {
        let mut out = Vec::new();
        let mut cur = Some(path);
        while let Some(p) = cur {
            out.push(self.func_of(p));
            cur = self.parent_of(p);
        }
        out.reverse();
        out
    }

    /// Human-readable rendering using function names from `names`.
    pub fn render(&self, path: PathId, names: &impl Fn(FunctionId) -> String) -> String {
        self.chain(path)
            .into_iter()
            .map(names)
            .collect::<Vec<_>>()
            .join(" → ")
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterate all interned paths.
    pub fn iter(&self) -> impl Iterator<Item = PathId> {
        (0..self.nodes.len() as u32).map(PathId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let mut t = CallPathTable::new();
        let main = t.intern(None, FunctionId(0));
        let a = t.intern(Some(main), FunctionId(1));
        let a2 = t.intern(Some(main), FunctionId(1));
        assert_eq!(a, a2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.func_of(a), FunctionId(1));
        assert_eq!(t.parent_of(a), Some(main));
        assert_eq!(t.parent_of(main), None);
    }

    #[test]
    fn same_function_different_contexts() {
        let mut t = CallPathTable::new();
        let main = t.intern(None, FunctionId(0));
        let f = t.intern(Some(main), FunctionId(1));
        let g = t.intern(Some(main), FunctionId(2));
        // helper called from f and from g: two distinct paths.
        let h_via_f = t.intern(Some(f), FunctionId(3));
        let h_via_g = t.intern(Some(g), FunctionId(3));
        assert_ne!(h_via_f, h_via_g);
        assert_eq!(t.func_of(h_via_f), t.func_of(h_via_g));
        assert_eq!(t.depth_of(h_via_f), 3);
        assert_eq!(
            t.chain(h_via_f),
            vec![FunctionId(0), FunctionId(1), FunctionId(3)]
        );
    }

    #[test]
    fn render_chain() {
        let mut t = CallPathTable::new();
        let main = t.intern(None, FunctionId(0));
        let f = t.intern(Some(main), FunctionId(1));
        let names = |id: FunctionId| match id.0 {
            0 => "main".to_string(),
            _ => "kernel".to_string(),
        };
        assert_eq!(t.render(f, &names), "main → kernel");
    }
}
