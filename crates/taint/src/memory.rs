//! Word-granular tainted memory: every word carries a value and a shadow
//! taint label, mirroring DataFlowSanitizer's shadow-memory scheme with a
//! 1:1 word mapping.
//!
//! Memory is a single flat arena with stack discipline: each interpreter
//! frame records a watermark on entry and truncates back to it on return,
//! so `alloca` is a bump allocation. Address 0 is reserved as a null page
//! (loads/stores there trap), mirroring the usual guard page.

use crate::label::Label;

/// A runtime value with its taint label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TVal {
    /// Raw 64-bit representation: i64 as-is, f64 via `to_bits`, bool as 0/1,
    /// pointers as word addresses.
    pub bits: u64,
    pub label: Label,
}

impl TVal {
    pub const UNTAINTED_ZERO: TVal = TVal {
        bits: 0,
        label: Label::EMPTY,
    };

    #[inline]
    pub fn from_i64(v: i64) -> TVal {
        TVal {
            bits: v as u64,
            label: Label::EMPTY,
        }
    }

    #[inline]
    pub fn from_f64(v: f64) -> TVal {
        TVal {
            bits: v.to_bits(),
            label: Label::EMPTY,
        }
    }

    #[inline]
    pub fn from_bool(v: bool) -> TVal {
        TVal {
            bits: v as u64,
            label: Label::EMPTY,
        }
    }

    #[inline]
    pub fn with_label(mut self, label: Label) -> TVal {
        self.label = label;
        self
    }

    #[inline]
    pub fn as_i64(self) -> i64 {
        self.bits as i64
    }

    #[inline]
    pub fn as_f64(self) -> f64 {
        f64::from_bits(self.bits)
    }

    #[inline]
    pub fn as_bool(self) -> bool {
        self.bits != 0
    }

    #[inline]
    pub fn as_addr(self) -> usize {
        self.bits as usize
    }
}

/// Errors raised by memory operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// Access below the null guard or beyond the allocated arena.
    OutOfBounds { addr: usize, len: usize },
    /// Access to address 0.
    NullAccess,
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::OutOfBounds { addr, len } => {
                write!(
                    f,
                    "memory access at word {addr} outside arena of {len} words"
                )
            }
            MemError::NullAccess => write!(f, "null memory access"),
        }
    }
}

impl std::error::Error for MemError {}

/// The flat tainted memory arena. Each word stores its value and shadow
/// label together (one [`TVal`]), so a load touches one cache line, not
/// two parallel arrays.
#[derive(Debug)]
pub struct Memory {
    words: Vec<TVal>,
}

impl Default for Memory {
    fn default() -> Self {
        Self::new()
    }
}

impl Memory {
    pub fn new() -> Memory {
        Memory {
            // Word 0 is the null guard.
            words: vec![TVal::UNTAINTED_ZERO],
        }
    }

    /// Current watermark (frame save point).
    #[inline]
    pub fn mark(&self) -> usize {
        self.words.len()
    }

    /// Release everything allocated after `mark`.
    pub fn release_to(&mut self, mark: usize) {
        debug_assert!(mark >= 1 && mark <= self.words.len());
        self.words.truncate(mark);
    }

    /// Allocate `words` zero-initialized, untainted words; returns the
    /// address of the first.
    pub fn alloc(&mut self, words: usize) -> usize {
        let addr = self.words.len();
        self.words.resize(addr + words, TVal::UNTAINTED_ZERO);
        addr
    }

    #[inline]
    fn check(&self, addr: usize) -> Result<(), MemError> {
        if addr == 0 {
            return Err(MemError::NullAccess);
        }
        if addr >= self.words.len() {
            return Err(MemError::OutOfBounds {
                addr,
                len: self.words.len(),
            });
        }
        Ok(())
    }

    /// Load the value and its shadow label at `addr`.
    #[inline]
    pub fn load(&self, addr: usize) -> Result<TVal, MemError> {
        self.check(addr)?;
        Ok(self.words[addr])
    }

    /// Store a value and its label at `addr`.
    #[inline]
    pub fn store(&mut self, addr: usize, v: TVal) -> Result<(), MemError> {
        self.check(addr)?;
        self.words[addr] = v;
        Ok(())
    }

    /// Overwrite only the shadow label at `addr` (the `write_label` taint
    /// source of the paper, §3.2).
    pub fn set_label(&mut self, addr: usize, label: Label) -> Result<(), MemError> {
        self.check(addr)?;
        self.words[addr].label = label;
        Ok(())
    }

    /// Join `label` into the shadow at `addr` via the provided union.
    pub fn read_label(&self, addr: usize) -> Result<Label, MemError> {
        self.check(addr)?;
        Ok(self.words[addr].label)
    }

    /// Total words allocated (including the null guard).
    pub fn len(&self) -> usize {
        self.words.len()
    }

    pub fn is_empty(&self) -> bool {
        false // the null guard always exists
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tval_round_trips() {
        assert_eq!(TVal::from_i64(-7).as_i64(), -7);
        assert_eq!(TVal::from_f64(2.5).as_f64(), 2.5);
        assert!(TVal::from_bool(true).as_bool());
        assert!(!TVal::from_bool(false).as_bool());
        let t = TVal::from_i64(1).with_label(Label(3));
        assert_eq!(t.label, Label(3));
    }

    #[test]
    fn alloc_load_store() {
        let mut m = Memory::new();
        let a = m.alloc(4);
        assert!(a >= 1);
        m.store(a + 2, TVal::from_i64(42)).unwrap();
        assert_eq!(m.load(a + 2).unwrap().as_i64(), 42);
        assert_eq!(m.load(a).unwrap().as_i64(), 0);
    }

    #[test]
    fn shadow_follows_stores() {
        let mut m = Memory::new();
        let a = m.alloc(1);
        m.store(a, TVal::from_i64(1).with_label(Label(5))).unwrap();
        assert_eq!(m.load(a).unwrap().label, Label(5));
        m.store(a, TVal::from_i64(2)).unwrap();
        assert_eq!(m.load(a).unwrap().label, Label::EMPTY, "store clears taint");
    }

    #[test]
    fn set_label_is_a_taint_source() {
        let mut m = Memory::new();
        let a = m.alloc(1);
        m.store(a, TVal::from_i64(9)).unwrap();
        m.set_label(a, Label(7)).unwrap();
        let v = m.load(a).unwrap();
        assert_eq!(v.as_i64(), 9, "value untouched");
        assert_eq!(v.label, Label(7));
        assert_eq!(m.read_label(a).unwrap(), Label(7));
    }

    #[test]
    fn null_and_oob_trap() {
        let mut m = Memory::new();
        assert_eq!(m.load(0).unwrap_err(), MemError::NullAccess);
        assert!(matches!(
            m.load(100),
            Err(MemError::OutOfBounds { addr: 100, .. })
        ));
        assert_eq!(
            m.store(0, TVal::from_i64(0)).unwrap_err(),
            MemError::NullAccess
        );
    }

    #[test]
    fn stack_discipline() {
        let mut m = Memory::new();
        let outer = m.alloc(2);
        let mark = m.mark();
        let inner = m.alloc(8);
        m.store(inner, TVal::from_i64(1)).unwrap();
        m.release_to(mark);
        assert_eq!(m.len(), mark);
        assert!(m.load(inner).is_err(), "freed frame memory traps");
        assert!(m.load(outer).is_ok());
    }
}
