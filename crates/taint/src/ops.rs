//! Shared scalar-operation semantics used by **both** execution engines.
//!
//! The differential contract ([`crate::differential`]) forbids the decoded
//! engine and the reference tree-walker from disagreeing on any value bit,
//! so semantics that are easy to get subtly wrong twice live here, defined
//! once and unit-tested against the documented behavior.
//!
//! ## Shift semantics
//!
//! `pt-ir` has exactly one integer type, `i64` (there is **no** 32-bit
//! integer type, so no 32-bit masking case exists — audited against
//! [`pt_ir::Type`]). `shl`/`shr` are defined over the full `i64` domain:
//!
//! * the shift amount is reduced **modulo 64** (`amount & 63`), like
//!   x86's `shl`/`sar` on 64-bit operands and Rust's `wrapping_shl`; an
//!   amount of 64 therefore shifts by 0, and 65 by 1 — never UB, never a
//!   trap;
//! * negative amounts are reduced the same way through the mask (e.g.
//!   `-1 & 63 == 63`);
//! * `shr` is an **arithmetic** right shift (the operand is `i64`, so the
//!   sign bit propagates).

/// Reduce a shift amount to the defined `0..=63` range.
#[inline(always)]
pub fn shift_amount(amount: i64) -> u32 {
    (amount & 63) as u32
}

/// `shl` on the 64-bit integer domain: amount reduced modulo 64.
#[inline(always)]
pub fn shl_i64(x: i64, amount: i64) -> i64 {
    x.wrapping_shl(shift_amount(amount))
}

/// `shr` on the 64-bit integer domain: arithmetic (sign-propagating),
/// amount reduced modulo 64.
#[inline(always)]
pub fn shr_i64(x: i64, amount: i64) -> i64 {
    x.wrapping_shr(shift_amount(amount))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact amounts the ISSUE calls out: 31 and 63 in range, 32 well
    /// inside the 64-bit domain (no 32-bit wrap may occur), 64 reducing
    /// to 0.
    #[test]
    fn shift_amounts_31_32_63_64() {
        assert_eq!(shl_i64(1, 31), 1 << 31);
        assert_eq!(shl_i64(1, 32), 1 << 32, "no 32-bit masking: 2^32, not 1");
        assert_eq!(shl_i64(1, 63), i64::MIN);
        assert_eq!(shl_i64(1, 64), 1, "64 reduces to 0: identity");
        assert_eq!(shl_i64(3, 65), 6, "65 reduces to 1");

        assert_eq!(shr_i64(i64::MIN, 31), i64::MIN >> 31);
        assert_eq!(shr_i64(i64::MIN, 32), i64::MIN >> 32);
        assert_eq!(shr_i64(i64::MIN, 63), -1, "arithmetic: sign propagates");
        assert_eq!(shr_i64(i64::MIN, 64), i64::MIN, "64 reduces to 0");
    }

    #[test]
    fn negative_amounts_reduce_through_the_mask() {
        assert_eq!(shift_amount(-1), 63);
        assert_eq!(shl_i64(1, -1), i64::MIN);
        assert_eq!(shr_i64(-2, -1), -1);
    }

    #[test]
    fn shr_is_arithmetic_not_logical() {
        assert_eq!(shr_i64(-8, 1), -4);
        assert_eq!(shr_i64(-1, 40), -1);
    }
}
