//! The differential-testing contract between the two execution engines.
//!
//! The decode-once engine ([`crate::interp::Interpreter`]) must be
//! **observably indistinguishable** from the legacy tree-walker
//! ([`crate::reference::ReferenceInterpreter`]): given the same module,
//! prepared facts, handler, parameters, and configuration, the two must
//! produce bit-identical [`RunOutput`]s — same return value (bits *and*
//! label id), same simulated clock (exact `f64` bits: both engines perform
//! the identical sequence of floating-point additions), same instruction
//! count, identical [`TaintRecords`] (loop sinks, branch coverage, extern
//! argument sets, executed/visited maps, interned call paths), identical
//! call-path [`crate::profile::Profile`], and an identical label table
//! (same node count, same parameter set per label id — the engines must
//! even perform their label *unions in the same order*). Errors must match
//! exactly too.
//!
//! The contract has **no carve-outs**: malformed inputs are covered too.
//! A function entered with fewer arguments than parameters is a defined
//! [`InterpError::ArityMismatch`] in both engines (checked at frame
//! setup), functions that fail SSA verification execute with the naive
//! zero-initialized frame in the decoded engine (matching the reference's
//! zeroed locals), and the post-decode pass pipeline (superinstruction
//! fusion, leaf-call inlining, register allocation) is constructed to be
//! observably invisible — fused pairs retire the same instruction counts,
//! clock additions, and label unions in the same order.
//!
//! [`compare_outputs`] / [`compare_results`] check that contract and
//! return a human-readable description of the first divergence. The
//! differential suites (`crates/taint/tests/differential.rs` for IR-level
//! edge cases and phi parallel-copy hazards, `differential_prop.rs` for
//! property-generated programs, `tests/engine_differential.rs` for the
//! full evaluation apps) and the `taint_throughput` bench scenario are
//! built on them.

use crate::interp::{InterpError, RunOutput};

/// Compare two run results (success or failure) for bit-identity.
pub fn compare_results(
    a: &Result<RunOutput, InterpError>,
    b: &Result<RunOutput, InterpError>,
) -> Result<(), String> {
    match (a, b) {
        (Ok(a), Ok(b)) => compare_outputs(a, b),
        (Err(a), Err(b)) => {
            if a == b {
                Ok(())
            } else {
                Err(format!("errors differ: {a:?} vs {b:?}"))
            }
        }
        (Ok(_), Err(e)) => Err(format!("first succeeded, second failed: {e}")),
        (Err(e), Ok(_)) => Err(format!("first failed ({e}), second succeeded")),
    }
}

/// Compare two successful runs for bit-identity (see the module docs for
/// the exact contract). Returns the first divergence found.
pub fn compare_outputs(a: &RunOutput, b: &RunOutput) -> Result<(), String> {
    if a.ret != b.ret {
        return Err(format!("return values differ: {:?} vs {:?}", a.ret, b.ret));
    }
    if a.time.to_bits() != b.time.to_bits() {
        return Err(format!(
            "simulated clocks differ: {:.17e} vs {:.17e}",
            a.time, b.time
        ));
    }
    if a.insts != b.insts {
        return Err(format!(
            "instruction counts differ: {} vs {}",
            a.insts, b.insts
        ));
    }

    // Records: the maps are ordered (BTreeMap), so element-wise comparison
    // is deterministic.
    if a.records.loops != b.records.loops {
        return Err(first_map_divergence(
            "loop records",
            &a.records.loops,
            &b.records.loops,
        ));
    }
    if a.records.branches != b.records.branches {
        return Err(first_map_divergence(
            "branch records",
            &a.records.branches,
            &b.records.branches,
        ));
    }
    if a.records.extern_args != b.records.extern_args {
        return Err(first_map_divergence(
            "extern-arg records",
            &a.records.extern_args,
            &b.records.extern_args,
        ));
    }
    if a.records.sink_checks != b.records.sink_checks {
        return Err(first_map_divergence(
            "sink-check records",
            &a.records.sink_checks,
            &b.records.sink_checks,
        ));
    }
    if a.records.executed != b.records.executed {
        return Err("executed-function maps differ".to_string());
    }
    if a.records.visited_blocks != b.records.visited_blocks {
        return Err("visited-block maps differ".to_string());
    }

    // Call paths: same interning order ⇒ same table.
    if a.records.paths.len() != b.records.paths.len() {
        return Err(format!(
            "path tables differ in size: {} vs {}",
            a.records.paths.len(),
            b.records.paths.len()
        ));
    }
    for p in a.records.paths.iter() {
        if a.records.paths.func_of(p) != b.records.paths.func_of(p)
            || a.records.paths.parent_of(p) != b.records.paths.parent_of(p)
        {
            return Err(format!("path {} interned differently", p.0));
        }
    }

    // Profile: entries keyed by (now comparable) path ids; timing must be
    // exactly equal.
    let pa: Vec<_> = a.profile.iter().collect();
    let pb: Vec<_> = b.profile.iter().collect();
    if pa.len() != pb.len() {
        return Err(format!(
            "profiles differ in size: {} vs {}",
            pa.len(),
            pb.len()
        ));
    }
    for ((ka, ea), (kb, eb)) in pa.iter().zip(&pb) {
        if ka != kb || ea != eb {
            return Err(format!(
                "profile entry differs at path {}: {ea:?} vs {eb:?}",
                ka.0
            ));
        }
    }

    // Label table: same union order ⇒ same node ids and parameter sets.
    if a.labels.len() != b.labels.len() {
        return Err(format!(
            "label tables differ in size: {} vs {}",
            a.labels.len(),
            b.labels.len()
        ));
    }
    if a.labels.param_names() != b.labels.param_names() {
        return Err("label tables registered different parameters".to_string());
    }
    for i in 0..a.labels.len() {
        let l = crate::label::Label(i as u16);
        if a.labels.params_of(l) != b.labels.params_of(l) {
            return Err(format!("label {i} covers different parameter sets"));
        }
    }
    Ok(())
}

fn first_map_divergence<K: std::fmt::Debug + Ord, V: std::fmt::Debug + PartialEq>(
    what: &str,
    a: &std::collections::BTreeMap<K, V>,
    b: &std::collections::BTreeMap<K, V>,
) -> String {
    for (k, va) in a {
        match b.get(k) {
            None => return format!("{what}: key {k:?} only in first"),
            Some(vb) if va != vb => {
                return format!("{what}: {k:?} differs: {va:?} vs {vb:?}");
            }
            _ => {}
        }
    }
    for k in b.keys() {
        if !a.contains_key(k) {
            return format!("{what}: key {k:?} only in second");
        }
    }
    format!("{what} differ (no element divergence found)")
}
