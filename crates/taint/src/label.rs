//! Taint labels and the union-tree label table.
//!
//! Faithful to the DataFlowSanitizer design the paper builds on (§5.2):
//! labels are 16-bit identifiers; a label is either a *base* label (one per
//! registered program parameter) or the *union* of exactly two labels,
//! forming a tree. The union operation first checks whether one operand
//! already subsumes the other ("verifies whether the operands do not
//! represent an equivalent combination of labels") and only then allocates a
//! new node, so the table supports up to 2^16 distinct label combinations.
//!
//! For efficiency we memoize, per label, the set of base parameters it
//! covers as a 64-bit set ([`ParamSet`]) — the modeling pipeline never needs
//! more than a handful of parameters (the paper argues more than three is
//! impractical anyway, §A1).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A taint label: an index into the [`LabelTable`]. Label 0 is "untainted".
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct Label(pub u16);

impl Label {
    pub const EMPTY: Label = Label(0);

    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

/// A set of base parameters, as a bitset over parameter indices (max 64).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct ParamSet(pub u64);

impl ParamSet {
    pub const EMPTY: ParamSet = ParamSet(0);

    #[inline]
    pub fn single(idx: usize) -> ParamSet {
        assert!(idx < 64, "at most 64 parameters supported");
        ParamSet(1u64 << idx)
    }

    #[inline]
    pub fn union(self, other: ParamSet) -> ParamSet {
        ParamSet(self.0 | other.0)
    }

    #[inline]
    pub fn intersect(self, other: ParamSet) -> ParamSet {
        ParamSet(self.0 & other.0)
    }

    #[inline]
    pub fn contains(self, idx: usize) -> bool {
        idx < 64 && (self.0 >> idx) & 1 == 1
    }

    #[inline]
    pub fn is_superset(self, other: ParamSet) -> bool {
        self.0 & other.0 == other.0
    }

    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Indices of the parameters in the set, ascending.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        (0..64).filter(move |i| (self.0 >> i) & 1 == 1)
    }

    /// Render using parameter names from `names`.
    pub fn display<'a>(self, names: &'a [String]) -> ParamSetDisplay<'a> {
        ParamSetDisplay { set: self, names }
    }
}

/// Helper for formatting a [`ParamSet`] with parameter names.
pub struct ParamSetDisplay<'a> {
    set: ParamSet,
    names: &'a [String],
}

impl fmt::Display for ParamSetDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for idx in self.set.iter() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            match self.names.get(idx) {
                Some(n) => write!(f, "{n}")?,
                None => write!(f, "#{idx}")?,
            }
        }
        write!(f, "}}")
    }
}

/// One node of the union tree.
#[derive(Debug, Clone, Copy)]
struct Node {
    /// For union nodes, the two children; for base nodes, both `EMPTY`.
    l: Label,
    r: Label,
}

/// The DFSan-style label table: base-label interning, union-tree
/// construction with deduplication, and memoized base-set queries.
#[derive(Debug)]
pub struct LabelTable {
    nodes: Vec<Node>,
    /// Memoized parameter set per label.
    sets: Vec<ParamSet>,
    /// Base label per parameter index.
    base_by_param: Vec<Label>,
    /// Parameter names (index = parameter index).
    param_names: Vec<String>,
    name_index: HashMap<String, usize>,
    union_memo: HashMap<(u16, u16), Label>,
    /// First capacity failure (base-label overflow or node exhaustion).
    /// Once set, further allocations degrade to [`Label::EMPTY`] and the
    /// engines surface this message as a defined run error — user input
    /// must never panic across the wire. The message is deterministic, so
    /// both engines report the identical error (differential contract).
    capacity_error: Option<String>,
}

impl Default for LabelTable {
    fn default() -> Self {
        Self::new()
    }
}

impl LabelTable {
    pub fn new() -> LabelTable {
        LabelTable {
            nodes: vec![Node {
                l: Label::EMPTY,
                r: Label::EMPTY,
            }],
            sets: vec![ParamSet::EMPTY],
            base_by_param: Vec::new(),
            param_names: Vec::new(),
            name_index: HashMap::new(),
            union_memo: HashMap::new(),
            capacity_error: None,
        }
    }

    /// Intern a base label for parameter `name`; idempotent. On capacity
    /// overflow this degrades to [`Label::EMPTY`] and records
    /// [`LabelTable::capacity_error`]; call [`LabelTable::try_base_label`]
    /// to observe the failure at the call site.
    pub fn base_label(&mut self, name: &str) -> Label {
        self.try_base_label(name).unwrap_or(Label::EMPTY)
    }

    /// Intern a base label for parameter `name`; idempotent. `Err` carries
    /// a deterministic message when the base-label space (64) or the node
    /// space (2^16) is exhausted; the failure is also latched in
    /// [`LabelTable::capacity_error`] so run-end checks catch introductions
    /// that went through the infallible wrapper.
    pub fn try_base_label(&mut self, name: &str) -> Result<Label, String> {
        if let Some(&idx) = self.name_index.get(name) {
            return Ok(self.base_by_param[idx]);
        }
        let idx = self.param_names.len();
        if idx >= 64 {
            let msg = format!("at most 64 base labels supported (adding {name:?})");
            if self.capacity_error.is_none() {
                self.capacity_error = Some(msg.clone());
            }
            return Err(msg);
        }
        let label = self.alloc(Node {
            l: Label::EMPTY,
            r: Label::EMPTY,
        });
        if label.is_empty() {
            return Err(self.capacity_error.clone().unwrap_or_default());
        }
        self.sets[label.0 as usize] = ParamSet::single(idx);
        self.param_names.push(name.to_string());
        self.name_index.insert(name.to_string(), idx);
        self.base_by_param.push(label);
        Ok(label)
    }

    /// The first capacity failure, if any allocation overflowed. Engines
    /// check this at run end and turn it into a defined error.
    pub fn capacity_error(&self) -> Option<&str> {
        self.capacity_error.as_deref()
    }

    /// The base label previously interned for `name`, if any.
    pub fn lookup_base(&self, name: &str) -> Option<Label> {
        self.name_index.get(name).map(|&i| self.base_by_param[i])
    }

    /// Parameter index of `name`, if registered.
    pub fn param_index(&self, name: &str) -> Option<usize> {
        self.name_index.get(name).copied()
    }

    /// All registered parameter names, in index order.
    pub fn param_names(&self) -> &[String] {
        &self.param_names
    }

    /// Allocate a node. On exhaustion (2^16 labels) this latches
    /// [`LabelTable::capacity_error`] and returns [`Label::EMPTY`]
    /// *without* pushing — callers must treat an empty result as failure
    /// and leave `sets`/memo untouched (writing through label 0 would
    /// corrupt the untainted set).
    fn alloc(&mut self, node: Node) -> Label {
        let id = self.nodes.len();
        if id > u16::MAX as usize {
            if self.capacity_error.is_none() {
                self.capacity_error = Some("label table exhausted (2^16 labels)".to_string());
            }
            return Label::EMPTY;
        }
        self.nodes.push(node);
        self.sets.push(ParamSet::EMPTY);
        Label(id as u16)
    }

    /// Union of two labels, allocating a tree node only when neither operand
    /// subsumes the other. This is the hot operation of the whole taint
    /// runtime — called for every instruction with two tainted operands.
    #[inline]
    pub fn union(&mut self, a: Label, b: Label) -> Label {
        if a == b || b.is_empty() {
            return a;
        }
        if a.is_empty() {
            return b;
        }
        // Subsumption check via the memoized base sets.
        let sa = self.sets[a.0 as usize];
        let sb = self.sets[b.0 as usize];
        if sa.is_superset(sb) {
            return a;
        }
        if sb.is_superset(sa) {
            return b;
        }
        // Canonical operand order for the memo table.
        let key = if a.0 < b.0 { (a.0, b.0) } else { (b.0, a.0) };
        if let Some(&l) = self.union_memo.get(&key) {
            return l;
        }
        let label = self.alloc(Node {
            l: Label(key.0),
            r: Label(key.1),
        });
        if label.is_empty() {
            // Exhausted: degrade to bottom. The run-end capacity check
            // turns this into a defined error in both engines (they
            // allocate union nodes in identical order, so the flag trips
            // identically), and labels never feed back into value bits.
            return Label::EMPTY;
        }
        self.sets[label.0 as usize] = sa.union(sb);
        self.union_memo.insert(key, label);
        label
    }

    /// The set of base parameters covered by `label`.
    #[inline]
    pub fn params_of(&self, label: Label) -> ParamSet {
        self.sets[label.0 as usize]
    }

    /// Whether `label` covers the parameter with index `idx`.
    #[inline]
    pub fn has_param(&self, label: Label, idx: usize) -> bool {
        self.params_of(label).contains(idx)
    }

    /// Number of allocated labels (including the empty label).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Number of memoized union pairs. Keys are canonicalized (smaller
    /// label first), so `union(a, b)` and `union(b, a)` share one entry —
    /// regression-tested to keep the memo from silently doubling.
    pub fn union_memo_len(&self) -> usize {
        self.union_memo.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Walk the union tree of `label`, collecting base labels (diagnostics;
    /// the memoized [`LabelTable::params_of`] is the fast path).
    pub fn base_labels_of(&self, label: Label) -> Vec<Label> {
        let mut out = Vec::new();
        let mut stack = vec![label];
        while let Some(l) = stack.pop() {
            if l.is_empty() {
                continue;
            }
            let node = self.nodes[l.0 as usize];
            if node.l.is_empty() && node.r.is_empty() {
                if !out.contains(&l) {
                    out.push(l);
                }
            } else {
                stack.push(node.l);
                stack.push(node.r);
            }
        }
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_labels_are_interned() {
        let mut t = LabelTable::new();
        let a = t.base_label("size");
        let b = t.base_label("size");
        assert_eq!(a, b);
        let c = t.base_label("p");
        assert_ne!(a, c);
        assert_eq!(t.param_index("size"), Some(0));
        assert_eq!(t.param_index("p"), Some(1));
        assert_eq!(t.lookup_base("size"), Some(a));
        assert_eq!(t.lookup_base("nope"), None);
    }

    #[test]
    fn union_identities() {
        let mut t = LabelTable::new();
        let a = t.base_label("a");
        assert_eq!(t.union(a, Label::EMPTY), a);
        assert_eq!(t.union(Label::EMPTY, a), a);
        assert_eq!(t.union(a, a), a);
        assert_eq!(t.union(Label::EMPTY, Label::EMPTY), Label::EMPTY);
    }

    #[test]
    fn union_is_deduplicated_and_commutative() {
        let mut t = LabelTable::new();
        let a = t.base_label("a");
        let b = t.base_label("b");
        let ab1 = t.union(a, b);
        let ab2 = t.union(b, a);
        assert_eq!(ab1, ab2);
        let before = t.len();
        let ab3 = t.union(a, b);
        assert_eq!(ab1, ab3);
        assert_eq!(t.len(), before, "no new node for repeated union");
    }

    #[test]
    fn union_memo_keys_are_canonicalized() {
        let mut t = LabelTable::new();
        let a = t.base_label("a");
        let b = t.base_label("b");
        let c = t.base_label("c");
        // Disjoint unions in both operand orders: one memo entry per pair,
        // never one per ordering.
        let ab = t.union(a, b);
        assert_eq!(t.union_memo_len(), 1);
        assert_eq!(t.union(b, a), ab);
        assert_eq!(t.union_memo_len(), 1, "reversed operands reuse the memo");
        let abc = t.union(c, ab); // deliberately (larger, smaller)
        assert_eq!(t.union_memo_len(), 2);
        assert_eq!(t.union(ab, c), abc);
        assert_eq!(t.union_memo_len(), 2);
        // Identity/subsumption fast paths never grow the memo.
        t.union(a, a);
        t.union(abc, b);
        assert_eq!(t.union_memo_len(), 2);
    }

    #[test]
    fn union_subsumption_avoids_allocation() {
        let mut t = LabelTable::new();
        let a = t.base_label("a");
        let b = t.base_label("b");
        let ab = t.union(a, b);
        let before = t.len();
        // {a,b} ∪ {a} = {a,b} without a new node.
        assert_eq!(t.union(ab, a), ab);
        assert_eq!(t.union(b, ab), ab);
        assert_eq!(t.len(), before);
    }

    #[test]
    fn params_of_tracks_unions() {
        let mut t = LabelTable::new();
        let a = t.base_label("a");
        let b = t.base_label("b");
        let c = t.base_label("c");
        let ab = t.union(a, b);
        let abc = t.union(ab, c);
        assert_eq!(t.params_of(abc).len(), 3);
        assert!(t.has_param(abc, 0));
        assert!(t.has_param(abc, 1));
        assert!(t.has_param(abc, 2));
        assert!(!t.has_param(ab, 2));
        assert_eq!(t.params_of(Label::EMPTY), ParamSet::EMPTY);
    }

    #[test]
    fn base_labels_of_walks_tree() {
        let mut t = LabelTable::new();
        let a = t.base_label("a");
        let b = t.base_label("b");
        let c = t.base_label("c");
        let ab = t.union(a, b);
        let abc = t.union(ab, c);
        assert_eq!(t.base_labels_of(abc), vec![a, b, c]);
        assert_eq!(t.base_labels_of(a), vec![a]);
        assert!(t.base_labels_of(Label::EMPTY).is_empty());
    }

    #[test]
    fn param_set_operations() {
        let a = ParamSet::single(0);
        let b = ParamSet::single(5);
        let ab = a.union(b);
        assert!(ab.contains(0) && ab.contains(5) && !ab.contains(1));
        assert_eq!(ab.len(), 2);
        assert!(ab.is_superset(a));
        assert!(!a.is_superset(ab));
        assert_eq!(ab.intersect(a), a);
        assert_eq!(ab.iter().collect::<Vec<_>>(), vec![0, 5]);
    }

    #[test]
    fn param_set_display() {
        let names = vec!["size".to_string(), "p".to_string()];
        let s = ParamSet::single(0).union(ParamSet::single(1));
        assert_eq!(format!("{}", s.display(&names)), "{size, p}");
        assert_eq!(format!("{}", ParamSet::EMPTY.display(&names)), "{}");
    }

    #[test]
    fn base_label_overflow_is_a_defined_error_not_a_panic() {
        let mut t = LabelTable::new();
        for i in 0..64 {
            assert!(t.try_base_label(&format!("p{i}")).is_ok());
        }
        assert!(t.capacity_error().is_none());
        let err = t.try_base_label("p64").unwrap_err();
        assert!(err.contains("64 base labels"), "unexpected message: {err}");
        assert_eq!(t.capacity_error(), Some(err.as_str()));
        // Existing bases still resolve; the infallible wrapper degrades
        // to bottom instead of panicking.
        assert_eq!(t.param_index("p0"), Some(0));
        assert!(t.try_base_label("p0").is_ok());
        assert_eq!(t.base_label("p65"), Label::EMPTY);
        assert_eq!(t.param_names().len(), 64);
    }

    #[test]
    fn node_exhaustion_is_a_defined_error_not_a_panic() {
        let mut t = LabelTable::new();
        let bases: Vec<Label> = (0..20).map(|i| t.base_label(&format!("p{i}"))).collect();
        // Each distinct bit pattern of `x` is a distinct base subset, so
        // every iteration allocates at least one new union node; the table
        // must trip its capacity latch at 2^16 instead of panicking.
        let mut x: u64 = 0;
        while t.capacity_error().is_none() {
            x += 1;
            assert!(x < 1 << 20, "exhaustion never tripped");
            let mut acc = Label::EMPTY;
            for (i, b) in bases.iter().enumerate() {
                if (x >> i) & 1 == 1 {
                    acc = t.union(acc, *b);
                }
            }
        }
        assert!(t.capacity_error().unwrap().contains("exhausted"));
        assert_eq!(t.len(), (u16::MAX as usize) + 1);
        // Post-exhaustion: memoized unions still resolve, genuinely new
        // unions degrade to bottom, and label 0 stays the untainted set
        // (the failed allocation must not write through `sets[0]`).
        let ab = t.union(bases[0], bases[1]);
        assert_eq!(t.params_of(ab), ParamSet(0b11));
        for further in 0..4u64 {
            let mut acc = Label::EMPTY;
            for (i, b) in bases.iter().enumerate() {
                if ((x + 1 + further) >> i) & 1 == 1 {
                    acc = t.union(acc, *b);
                }
            }
        }
        assert_eq!(t.params_of(Label::EMPTY), ParamSet::EMPTY);
    }

    #[test]
    fn many_unions_stay_within_capacity() {
        let mut t = LabelTable::new();
        let labels: Vec<Label> = (0..16).map(|i| t.base_label(&format!("p{i}"))).collect();
        // Union all pairs repeatedly; dedup must keep the table tiny.
        let mut acc = Label::EMPTY;
        for _ in 0..100 {
            for &l in &labels {
                acc = t.union(acc, l);
            }
        }
        assert!(t.len() < 200, "table grew to {}", t.len());
        assert_eq!(t.params_of(acc).len(), 16);
    }
}
