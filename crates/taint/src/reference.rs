//! The legacy tree-walking interpreter, kept as the reference
//! implementation for differential testing.
//!
//! This is the original §5.2 engine: it re-walks the [`pt_ir::InstKind`]
//! tree per executed instruction, resolving [`Value`] operands by enum
//! match, scanning block prefixes for phis, and looking loop back edges up
//! in a `HashMap` per branch. The production engine ([`crate::interp`])
//! executes the pre-decoded bytecode of [`crate::decode`] instead; this
//! module exists so the differential suite (and the `taint_throughput`
//! bench scenario) can prove the two produce **bit-identical**
//! [`RunOutput`]s — see [`crate::differential`] for the contract.
//!
//! Semantics are documented on [`crate::interp`]; this file intentionally
//! mirrors the historical implementation rather than sharing code with the
//! fast path, so a bug in one cannot hide in both.

use crate::host::{ExternalHandler, HostCtx};
use crate::interp::{CtlFlowPolicy, CtlScope, InterpConfig, InterpError, RunOutput};
use crate::label::{Label, LabelTable};
use crate::memory::{Memory, TVal};
use crate::path::PathId;
use crate::prepared::PreparedModule;
use crate::profile::Profile;
use crate::records::{LoopKey, TaintRecords};
use pt_ir::{BinOp, BlockId, Callee, FunctionId, InstKind, Module, Terminator, Type, UnOp, Value};

/// The reference interpreter. Holds per-run mutable state; construct one
/// per run.
pub struct ReferenceInterpreter<'m, H: ExternalHandler> {
    module: &'m Module,
    prepared: &'m PreparedModule,
    handler: H,
    config: InterpConfig,
    params: Vec<(String, i64)>,
    labels: LabelTable,
    mem: Memory,
    records: TaintRecords,
    profile: Profile,
    clock: f64,
    insts: u64,
    depth: usize,
    /// Pseudo function ids for externals: `module.functions.len() + i` for
    /// external name `i` in `extern_names`.
    extern_names: Vec<String>,
}

impl<'m, H: ExternalHandler> ReferenceInterpreter<'m, H> {
    pub fn new(
        module: &'m Module,
        prepared: &'m PreparedModule,
        handler: H,
        params: Vec<(String, i64)>,
        config: InterpConfig,
    ) -> Self {
        let mut labels = LabelTable::new();
        // Pre-intern the marked parameters so parameter index == position.
        for (name, _) in &params {
            labels.base_label(name);
        }
        let extern_names: Vec<String> = module
            .used_externals()
            .into_iter()
            .map(String::from)
            .collect();
        let nfuncs = module.functions.len() + extern_names.len();
        let blocks_per_func: Vec<usize> = module
            .functions
            .iter()
            .map(|f| f.blocks.len())
            .chain(std::iter::repeat_n(0, extern_names.len()))
            .collect();
        ReferenceInterpreter {
            module,
            prepared,
            handler,
            config,
            params,
            labels,
            mem: Memory::new(),
            records: TaintRecords::new(nfuncs, &blocks_per_func),
            profile: Profile::new(),
            clock: 0.0,
            insts: 0,
            depth: 0,
            extern_names,
        }
    }

    /// The pseudo [`FunctionId`] of external `name`, if it is called anywhere.
    pub fn extern_id(&self, name: &str) -> Option<FunctionId> {
        self.extern_names
            .iter()
            .position(|n| n == name)
            .map(|i| FunctionId((self.module.functions.len() + i) as u32))
    }

    /// Run `entry` with the given (untainted) integer arguments.
    pub fn run(mut self, entry: FunctionId, args: &[i64]) -> Result<RunOutput, InterpError> {
        let argv: Vec<TVal> = args.iter().map(|&a| TVal::from_i64(a)).collect();
        let (ret, _incl) = self.exec_function(entry, argv, None, Label::EMPTY)?;
        // Mirror of the decoded engine's run-end capacity check: both
        // engines allocate labels in identical order, so an overflow
        // surfaces as the identical defined error in both.
        if let Some(msg) = self.labels.capacity_error() {
            return Err(InterpError::LabelCapacity(msg.to_string()));
        }
        Ok(RunOutput {
            ret,
            time: self.clock,
            insts: self.insts,
            records: self.records,
            profile: self.profile,
            labels: self.labels,
            // The reference engine has exactly one tier.
            tier: Default::default(),
        })
    }

    /// Run the function named `entry`.
    pub fn run_named(self, entry: &str, args: &[i64]) -> Result<RunOutput, InterpError> {
        let fid = self
            .module
            .function_by_name(entry)
            .ok_or_else(|| InterpError::UnknownFunction(entry.to_string()))?;
        self.run(fid, args)
    }

    #[inline]
    fn union(&mut self, a: Label, b: Label) -> Label {
        if !self.config.taint {
            return Label::EMPTY;
        }
        self.labels.union(a, b)
    }

    /// Whether the security policy's source/sink/sanitizer intrinsics are
    /// live (the reference engine checks the policy at run time — it is
    /// the slow mirror of the decoded engine's monomorphized `P::SECURITY`).
    #[inline]
    fn security(&self) -> bool {
        self.config.taint && self.config.taint_policy == crate::policy::PolicyKind::Security
    }

    fn exec_function(
        &mut self,
        fid: FunctionId,
        args: Vec<TVal>,
        parent: Option<PathId>,
        inherited_ctx: Label,
    ) -> Result<(Option<TVal>, f64), InterpError> {
        self.depth += 1;
        if self.depth > self.config.max_depth {
            self.depth -= 1;
            return Err(InterpError::CallDepthExceeded);
        }
        let result = self.exec_function_inner(fid, args, parent, inherited_ctx);
        self.depth -= 1;
        result
    }

    fn exec_function_inner(
        &mut self,
        fid: FunctionId,
        args: Vec<TVal>,
        parent: Option<PathId>,
        inherited_ctx: Label,
    ) -> Result<(Option<TVal>, f64), InterpError> {
        let func = self.module.function(fid);
        // A missing argument is a defined error, checked at frame setup in
        // both engines (historically this engine panicked when the missing
        // parameter was *read*; the decoded engine read an untainted zero —
        // the differential contract now covers the case instead).
        if args.len() < func.params.len() {
            return Err(InterpError::ArityMismatch {
                func: func.name.clone(),
                expected: func.params.len(),
                got: args.len(),
            });
        }
        let prep = self.prepared.func(fid);
        let path = self.records.paths.intern(parent, fid);
        self.records.executed[fid.index()] = true;

        let t_enter = self.clock;
        // Probe cost: charged to this function's exclusive time when the
        // measurement filter instruments it.
        if let Some(&probe) = self.config.probe_cost.get(fid.index()) {
            self.clock += probe;
        }
        let mut child_time = 0.0f64;

        let frame_mark = self.mem.mark();
        let mut locals: Vec<TVal> = vec![TVal::UNTAINTED_ZERO; func.insts.len()];
        // Control-flow taint scopes. The inherited scope (from tainted
        // control in the caller) never pops within this frame.
        let mut ctl: Vec<CtlScope> = Vec::new();
        let base_ctx = if self.config.policy == CtlFlowPolicy::Off {
            Label::EMPTY
        } else {
            inherited_ctx
        };

        let mut block = func.entry;
        let mut prev_block: Option<BlockId> = None;
        let ret_val: Option<TVal>;

        'blocks: loop {
            if self.config.coverage {
                self.records.visited_blocks.mark(fid, block);
            }
            let cur_ctx = |ctl: &[CtlScope]| ctl.last().map_or(base_ctx, |s| s.label);

            // Phi nodes execute first, in parallel, *under the closing
            // scope* (the value choice is the control-dependent act), then
            // scopes joining at this block pop.
            let insts = &func.block(block).insts;
            let mut phi_end = 0;
            while phi_end < insts.len() {
                let iid = insts[phi_end];
                if !matches!(func.inst(iid).kind, InstKind::Phi { .. }) {
                    break;
                }
                phi_end += 1;
            }
            if phi_end > 0 {
                let pb = prev_block.expect("phi in entry block");
                let mut staged: Vec<(usize, TVal)> = Vec::with_capacity(phi_end);
                for &iid in &insts[..phi_end] {
                    self.insts += 1;
                    self.clock += self.config.inst_cost;
                    if let InstKind::Phi { incomings, .. } = &func.inst(iid).kind {
                        let (_, v) = incomings
                            .iter()
                            .find(|(b, _)| *b == pb)
                            .unwrap_or_else(|| panic!("phi %{} missing incoming for {pb}", iid.0));
                        let mut tv = self.eval(*v, &locals, &args);
                        if self.config.taint && self.config.policy == CtlFlowPolicy::All {
                            let ctx = cur_ctx(&ctl);
                            tv.label = self.union(tv.label, ctx);
                        }
                        staged.push((iid.index(), tv));
                    }
                }
                for (idx, tv) in staged {
                    locals[idx] = tv;
                }
            }
            if self.insts > self.config.fuel {
                return Err(InterpError::OutOfFuel);
            }
            // Close scopes that join here.
            while matches!(ctl.last(), Some(s) if s.join == Some(block)) {
                ctl.pop();
            }

            // Straight-line instructions.
            for &iid in &insts[phi_end..] {
                self.insts += 1;
                self.clock += self.config.inst_cost;
                let ctx = if self.config.taint && self.config.policy != CtlFlowPolicy::Off {
                    cur_ctx(&ctl)
                } else {
                    Label::EMPTY
                };
                let out = self.exec_inst(
                    fid,
                    iid,
                    func,
                    prep,
                    &args,
                    &mut locals,
                    ctx,
                    path,
                    &mut child_time,
                )?;
                locals[iid.index()] = out;
            }
            if self.insts > self.config.fuel {
                return Err(InterpError::OutOfFuel);
            }

            // Terminator.
            match func.block(block).term.as_ref().expect("verified IR") {
                Terminator::Br(t) => {
                    self.note_edge(fid, path, block, *t, prep);
                    prev_block = Some(block);
                    block = *t;
                }
                Terminator::CondBr {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    let cv = self.eval(*cond, &locals, &args);
                    if self.config.taint {
                        // Sinks: loop-exit conditions (§4.1).
                        for &lid in &prep.exiting_loops[block.index()] {
                            let pset = self.labels.params_of(cv.label);
                            let rec = self
                                .records
                                .loops
                                .entry(LoopKey {
                                    func: fid,
                                    loop_id: lid,
                                    path,
                                })
                                .or_default();
                            rec.params = rec.params.union(pset);
                        }
                        // Branch coverage for tainted conditions (§4.4, §C2).
                        if self.config.coverage && !cv.label.is_empty() {
                            let pset = self.labels.params_of(cv.label);
                            let rec = self.records.branches.entry((fid, block)).or_default();
                            rec.params = rec.params.union(pset);
                            if cv.as_bool() {
                                rec.taken_true += 1;
                            } else {
                                rec.taken_false += 1;
                            }
                        }
                        // Open a control scope for tainted branches.
                        if self.config.policy != CtlFlowPolicy::Off && !cv.label.is_empty() {
                            let enclosing = ctl.last().map_or(base_ctx, |s| s.label);
                            let label = self.union(cv.label, enclosing);
                            ctl.push(CtlScope {
                                join: prep.ipostdom[block.index()],
                                label,
                            });
                        }
                    }
                    let target = if cv.as_bool() { *then_bb } else { *else_bb };
                    self.note_edge(fid, path, block, target, prep);
                    prev_block = Some(block);
                    block = target;
                }
                Terminator::Ret(v) => {
                    ret_val = v.as_ref().map(|val| self.eval(*val, &locals, &args));
                    break 'blocks;
                }
                Terminator::Unreachable => {
                    return Err(InterpError::Trap(format!(
                        "reached unreachable in {}",
                        func.name
                    )));
                }
            }
        }

        self.mem.release_to(frame_mark);
        let inclusive = self.clock - t_enter;
        let exclusive = inclusive - child_time;
        self.profile.record_call(path, fid, inclusive, exclusive);
        Ok((ret_val, inclusive))
    }

    /// Track loop entries and iterations on a CFG edge.
    #[inline]
    fn note_edge(
        &mut self,
        fid: FunctionId,
        path: PathId,
        from: BlockId,
        to: BlockId,
        prep: &crate::prepared::PreparedFunction,
    ) {
        if !self.config.taint {
            return;
        }
        if let Some(&lid) = prep.back_edges.get(&(from, to)) {
            let rec = self
                .records
                .loops
                .entry(LoopKey {
                    func: fid,
                    loop_id: lid,
                    path,
                })
                .or_default();
            rec.iterations += 1;
        } else if let Some(lid) = prep.header_of[to.index()] {
            // Entering a header not via a back edge = a fresh loop entry.
            if !prep.forest.get(lid).contains(from) {
                let rec = self
                    .records
                    .loops
                    .entry(LoopKey {
                        func: fid,
                        loop_id: lid,
                        path,
                    })
                    .or_default();
                rec.entries += 1;
            }
        }
    }

    #[inline]
    fn eval(&self, v: Value, locals: &[TVal], args: &[TVal]) -> TVal {
        match v {
            Value::Const(c) => match c {
                pt_ir::Const::Int(i) => TVal::from_i64(i),
                pt_ir::Const::Float(f) => TVal::from_f64(f),
                pt_ir::Const::Bool(b) => TVal::from_bool(b),
            },
            Value::Param(p) => args[p.index()],
            Value::Inst(i) => locals[i.index()],
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_inst(
        &mut self,
        fid: FunctionId,
        iid: pt_ir::InstId,
        func: &pt_ir::Function,
        prep: &crate::prepared::PreparedFunction,
        args: &[TVal],
        locals: &mut [TVal],
        ctx: Label,
        path: PathId,
        child_time: &mut f64,
    ) -> Result<TVal, InterpError> {
        let is_float = prep.operand_float[iid.index()];
        let apply_ctx = |me: &mut Self, mut t: TVal| -> TVal {
            if me.config.taint && me.config.policy == CtlFlowPolicy::All && !ctx.is_empty() {
                t.label = me.union(t.label, ctx);
            }
            t
        };
        let kind = &func.inst(iid).kind;
        let out = match kind {
            InstKind::Bin { op, lhs, rhs } => {
                let a = self.eval(*lhs, locals, args);
                let b = self.eval(*rhs, locals, args);
                let label = self.union(a.label, b.label);
                let bits = if is_float {
                    let (x, y) = (a.as_f64(), b.as_f64());
                    let r = match op {
                        BinOp::Add => x + y,
                        BinOp::Sub => x - y,
                        BinOp::Mul => x * y,
                        BinOp::Div => x / y,
                        BinOp::Rem => x % y,
                        BinOp::Min => x.min(y),
                        BinOp::Max => x.max(y),
                        _ => {
                            return Err(InterpError::Trap(format!(
                                "float {op:?} unsupported in {}",
                                func.name
                            )))
                        }
                    };
                    r.to_bits()
                } else {
                    let (x, y) = (a.as_i64(), b.as_i64());
                    let r = match op {
                        BinOp::Add => x.wrapping_add(y),
                        BinOp::Sub => x.wrapping_sub(y),
                        BinOp::Mul => x.wrapping_mul(y),
                        BinOp::Div => {
                            if y == 0 {
                                return Err(InterpError::DivisionByZero {
                                    func: func.name.clone(),
                                });
                            }
                            x.wrapping_div(y)
                        }
                        BinOp::Rem => {
                            if y == 0 {
                                return Err(InterpError::DivisionByZero {
                                    func: func.name.clone(),
                                });
                            }
                            x.wrapping_rem(y)
                        }
                        BinOp::And => x & y,
                        BinOp::Or => x | y,
                        BinOp::Xor => x ^ y,
                        BinOp::Shl => crate::ops::shl_i64(x, y),
                        BinOp::Shr => crate::ops::shr_i64(x, y),
                        BinOp::Min => x.min(y),
                        BinOp::Max => x.max(y),
                    };
                    r as u64
                };
                TVal { bits, label }
            }
            InstKind::Un { op, operand } => {
                let a = self.eval(*operand, locals, args);
                let bits = match op {
                    UnOp::Neg => {
                        if is_float {
                            (-a.as_f64()).to_bits()
                        } else {
                            (a.as_i64().wrapping_neg()) as u64
                        }
                    }
                    UnOp::Not => {
                        if prep.result_tys[iid.index()] == Type::Bool {
                            (a.bits == 0) as u64
                        } else {
                            !a.as_i64() as u64
                        }
                    }
                    UnOp::IntToFloat => (a.as_i64() as f64).to_bits(),
                    UnOp::FloatToInt => {
                        let f = a.as_f64();
                        let clamped = if f.is_nan() {
                            0
                        } else {
                            f.clamp(i64::MIN as f64, i64::MAX as f64) as i64
                        };
                        clamped as u64
                    }
                    UnOp::Sqrt => a.as_f64().max(0.0).sqrt().to_bits(),
                    UnOp::Abs => {
                        if is_float {
                            a.as_f64().abs().to_bits()
                        } else {
                            a.as_i64().wrapping_abs() as u64
                        }
                    }
                };
                TVal {
                    bits,
                    label: a.label,
                }
            }
            InstKind::Cmp { pred, lhs, rhs } => {
                let a = self.eval(*lhs, locals, args);
                let b = self.eval(*rhs, locals, args);
                let label = self.union(a.label, b.label);
                let r = if is_float {
                    pred.eval(a.as_f64(), b.as_f64())
                } else {
                    pred.eval(a.as_i64(), b.as_i64())
                };
                TVal {
                    bits: r as u64,
                    label,
                }
            }
            InstKind::Select {
                cond,
                then_v,
                else_v,
            } => {
                let c = self.eval(*cond, locals, args);
                let chosen = if c.as_bool() {
                    self.eval(*then_v, locals, args)
                } else {
                    self.eval(*else_v, locals, args)
                };
                let label = self.union(c.label, chosen.label);
                TVal {
                    bits: chosen.bits,
                    label,
                }
            }
            InstKind::Alloca { words } => {
                let n = self.eval(*words, locals, args).as_i64();
                if n < 0 {
                    return Err(InterpError::Trap(format!(
                        "negative alloca in {}",
                        func.name
                    )));
                }
                let addr = self.mem.alloc(n as usize);
                TVal::from_i64(addr as i64)
            }
            InstKind::Load { addr, .. } => {
                let a = self.eval(*addr, locals, args);
                let mut v = self.mem.load(a.as_addr())?;
                if self.config.taint && self.config.combine_ptr_labels {
                    v.label = self.union(v.label, a.label);
                }
                v
            }
            InstKind::Store { addr, value } => {
                let a = self.eval(*addr, locals, args);
                let mut v = self.eval(*value, locals, args);
                if self.config.taint && self.config.policy != CtlFlowPolicy::Off {
                    // StoresOnly and All both taint stored values with the
                    // control context.
                    v.label = self.union(v.label, ctx);
                }
                self.mem.store(a.as_addr(), v)?;
                TVal::UNTAINTED_ZERO
            }
            InstKind::Gep {
                base,
                index,
                stride,
            } => {
                let b = self.eval(*base, locals, args);
                let i = self.eval(*index, locals, args);
                let label = self.union(b.label, i.label);
                let addr = b
                    .as_i64()
                    .wrapping_add(i.as_i64().wrapping_mul(*stride as i64));
                TVal {
                    bits: addr as u64,
                    label,
                }
            }
            InstKind::Call {
                callee,
                args: call_args,
                ..
            } => {
                let argv: Vec<TVal> = call_args
                    .iter()
                    .map(|a| self.eval(*a, locals, args))
                    .collect();
                match callee {
                    Callee::Internal(callee_id) => {
                        let (ret, incl) = self.exec_function(*callee_id, argv, Some(path), ctx)?;
                        *child_time += incl;
                        ret.unwrap_or(TVal::UNTAINTED_ZERO)
                    }
                    Callee::External(name) => {
                        self.exec_external(name, &argv, fid, path, child_time)?
                    }
                }
            }
            InstKind::Phi { .. } => unreachable!("phis handled at block entry"),
        };
        Ok(apply_ctx(self, out))
    }

    fn exec_external(
        &mut self,
        name: &str,
        argv: &[TVal],
        caller: FunctionId,
        path: PathId,
        child_time: &mut f64,
    ) -> Result<TVal, InterpError> {
        // Intrinsics resolved by the interpreter itself.
        match name {
            "pt_param_i64" => {
                let idx = argv[0].as_i64() as usize;
                let (name, value) =
                    self.params.get(idx).cloned().ok_or_else(|| {
                        InterpError::Trap(format!("pt_param_i64: no param {idx}"))
                    })?;
                let label = if self.config.taint {
                    self.labels
                        .try_base_label(&name)
                        .map_err(InterpError::LabelCapacity)?
                } else {
                    Label::EMPTY
                };
                return Ok(TVal::from_i64(value).with_label(label));
            }
            "pt_register_param" => {
                let addr = argv[0].as_addr();
                let idx = argv[1].as_i64() as usize;
                let (name, _) = self.params.get(idx).cloned().ok_or_else(|| {
                    InterpError::Trap(format!("pt_register_param: no param {idx}"))
                })?;
                if self.config.taint {
                    let label = self
                        .labels
                        .try_base_label(&name)
                        .map_err(InterpError::LabelCapacity)?;
                    self.mem.set_label(addr, label)?;
                }
                return Ok(TVal::UNTAINTED_ZERO);
            }
            "pt_taint_source" => {
                // Security policy: join source base `src#id` into the
                // value's label (may-taint); otherwise identity. Mirrors
                // `Intrinsic::TaintSource` in the decoded engine exactly.
                let v = argv[0];
                if self.security() {
                    let id = argv[1].as_i64();
                    let base = self
                        .labels
                        .try_base_label(&crate::policy::source_base_name(id))
                        .map_err(InterpError::LabelCapacity)?;
                    let label = self.labels.union(v.label, base);
                    return Ok(v.with_label(label));
                }
                return Ok(v);
            }
            "pt_sanitize" => {
                let v = argv[0];
                if self.security() {
                    return Ok(v.with_label(Label::EMPTY));
                }
                return Ok(v);
            }
            "pt_sink_check" => {
                let v = argv[0];
                if self.security() {
                    let id = argv[1].as_i64();
                    let pset = self.labels.params_of(v.label);
                    let rec = self.records.sink_checks.entry(id).or_default();
                    rec.checks += 1;
                    if !v.label.is_empty() {
                        rec.violations += 1;
                        rec.params = rec.params.union(pset);
                    }
                }
                return Ok(v);
            }
            "pt_assert_has_param" => {
                if self.config.taint {
                    let idx = argv[1].as_i64() as usize;
                    if !self.labels.params_of(argv[0].label).contains(idx) {
                        return Err(InterpError::Trap(format!(
                            "taint assertion failed: value lacks parameter #{idx} (has {:?})",
                            self.labels.params_of(argv[0].label)
                        )));
                    }
                }
                return Ok(TVal::UNTAINTED_ZERO);
            }
            "pt_assert_not_param" => {
                if self.config.taint {
                    let idx = argv[1].as_i64() as usize;
                    if self.labels.params_of(argv[0].label).contains(idx) {
                        return Err(InterpError::Trap(format!(
                            "taint assertion failed: value unexpectedly carries parameter #{idx}"
                        )));
                    }
                }
                return Ok(TVal::UNTAINTED_ZERO);
            }
            "pt_label_params" => {
                let set = self.labels.params_of(argv[0].label);
                return Ok(TVal::from_i64(set.0 as i64));
            }
            _ => {}
        }

        // Record the parameters tainting the call's arguments — the library
        // database turns these into parametric dependencies of the caller
        // (the count-argument mechanism of §5.3).
        if self.config.taint {
            let mut pset = crate::label::ParamSet::EMPTY;
            for a in argv {
                pset = pset.union(self.labels.params_of(a.label));
            }
            if !pset.is_empty() {
                let e = self
                    .records
                    .extern_args
                    .entry((caller, name.to_string()))
                    .or_default();
                *e = e.union(pset);
            }
        }

        // Externals go to the handler. Work primitives (`pt_*`) are inlined
        // work of the *calling* function: their cost lands in the caller's
        // exclusive time and they never appear as own profile entries.
        // Library routines (MPI) get pseudo entries so they receive their
        // own models (§B1).
        let mut ctx = HostCtx {
            mem: &mut self.mem,
            labels: &mut self.labels,
            params: &self.params,
            taint: self.config.taint,
        };
        let (ret, cost) = self.handler.call(name, argv, &mut ctx).map_err(|message| {
            InterpError::ExternalFailed {
                name: name.to_string(),
                message,
            }
        })?;
        if name.starts_with("pt_") {
            self.clock += cost;
            return Ok(ret);
        }
        let ext_id = self
            .extern_id(name)
            .ok_or_else(|| InterpError::UnknownExternal(name.to_string()))?;
        let probe = self
            .config
            .probe_cost
            .get(ext_id.index())
            .copied()
            .unwrap_or(0.0);
        let total = cost + probe;
        self.clock += total;
        *child_time += total;
        self.records.executed[ext_id.index()] = true;
        let ext_path = self.records.paths.intern(Some(path), ext_id);
        self.profile.record_call(ext_path, ext_id, total, total);
        Ok(ret)
    }
}
