//! Post-decode optimization passes over [`DecodedFunction`] bytecode.
//!
//! [`DecodedModule::decode`] produces a straight translation of the IR:
//! one [`DInst`] per instruction, one virtual register per instruction
//! result. This module rewrites that program in place — once, at static
//! time — so the dispatch loop retires fewer, denser operations:
//!
//! * [`fuse`] — **superinstruction fusion**, a peephole over each block:
//!   - `cmp` + `condbr`, when the comparison's only consumer is the
//!     branch, fuse into [`DTerm::CondBrCmp`]: the hot loop-header
//!     pattern (`i < n` → back edge) retires in one dispatch;
//!   - `gep` + `load` / `gep` + `store`, when adjacent and the address is
//!     used exactly once, fuse into [`DOp::LoadIdx`] / [`DOp::StoreIdx`]:
//!     the dominant array-access pattern skips a dispatch and a register
//!     round trip.
//!
//!   Fusion is **observably invisible**: a fused pair still retires two
//!   instructions (count and simulated clock, in the original order), its
//!   label unions happen in the original sequence, and fuel exhaustion
//!   lands on the same instruction boundary — the differential contract
//!   with the reference engine ([`crate::differential`]) stays
//!   bit-identical.
//!
//! * [`allocate_registers`] — **linear-scan register allocation**: virtual
//!   registers are renumbered by live range so a frame holds the
//!   function's true register pressure instead of one slot per
//!   instruction. Pooled frames get proportionally cheaper to clear and
//!   the working set drops to a few cache lines. Invariants:
//!   - parameters keep slots `0..nparams` (the frame-setup argument copy
//!     relies on it);
//!   - two virtual registers that are ever simultaneously live get
//!     distinct slots (intervals are conservative block-granularity live
//!     ranges, so any interference implies interval overlap);
//!   - a slot freed at position `p` is only reused by an interval
//!     *starting after* `p`, so within one dispatch (reads happen before
//!     the write, and phi parallel copies are staged) no value is
//!     clobbered early.
//!
//! [`optimize`] runs both passes over every function of a module and is
//! invoked by [`crate::prepared::PreparedModule::compute`], so every
//! consumer of shared static artifacts executes the fused, re-allocated
//! program.

use super::{DInst, DOp, DTerm, DecodedFunction, DecodedModule, Edge, Opnd};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// What the pass pipeline did to a module (reported by
/// `taint_throughput`, asserted by tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PassStats {
    /// Immediate-only operations folded into [`DOp::Const`].
    pub folded: usize,
    /// `gep`s with a constant index strength-reduced to a unit stride.
    pub reduced_geps: usize,
    /// `cmp+condbr` pairs fused into [`DTerm::CondBrCmp`].
    pub fused_cmp_br: usize,
    /// `gep+load` pairs fused into [`DOp::LoadIdx`].
    pub fused_loads: usize,
    /// `gep+store` pairs fused into [`DOp::StoreIdx`].
    pub fused_stores: usize,
    /// Leaf call sites flattened into [`DOp::CallInlined`].
    pub inlined_calls: usize,
    /// Total frame registers before register allocation.
    pub regs_before: usize,
    /// Total frame registers after register allocation.
    pub regs_after: usize,
}

/// Run the full pass pipeline — fusion, leaf-call inlining, then register
/// allocation — over every function of `module`. `ssa_clean[i]` reports
/// whether function `i` passed semantic SSA verification
/// (`pt_analysis::ssa_verify`): fusion is position-local and always safe,
/// but call inlining (body definitions must precede their uses) and
/// register renumbering — plus the interpreter's skip-the-frame-clear
/// fast path it unlocks — are only sound when definitions dominate uses,
/// so unverified functions keep the naive layout.
pub fn optimize(module: &mut DecodedModule, ssa_clean: &[bool]) -> PassStats {
    let _span = pt_util::trace::span("taint", "passes");
    let mut stats = PassStats::default();
    {
        let _fold = pt_util::trace::span("pass", "fold_constants");
        for f in &mut module.functions {
            let (folded, reduced) = fold_constants(f);
            stats.folded += folded;
            stats.reduced_geps += reduced;
        }
    }
    {
        let _fuse = pt_util::trace::span("pass", "fuse");
        for f in &mut module.functions {
            stats.regs_before += f.nregs;
            let (cb, ld, st) = fuse(f);
            stats.fused_cmp_br += cb;
            stats.fused_loads += ld;
            stats.fused_stores += st;
        }
    }
    {
        let _inline = pt_util::trace::span("pass", "inline_leaf_calls");
        stats.inlined_calls = inline_leaf_calls(module, ssa_clean);
    }
    {
        let _regalloc = pt_util::trace::span("pass", "allocate_registers");
        for (f, &clean) in module.functions.iter_mut().zip(ssa_clean) {
            if clean {
                allocate_registers(f);
                f.ssa_clean = true;
            }
            stats.regs_after += f.nregs;
        }
    }
    stats
}

/// Fold operations whose operands are all immediates into [`DOp::Const`],
/// and strength-reduce `gep`s with an immediate index to a unit stride
/// (the scaled offset is precomputed into the index), so the address
/// arithmetic left at run time is a single add. Returns
/// `(folded, reduced_geps)`.
///
/// Every fold computes its value with the *exact* expressions the
/// dispatch loop would have used (wrapping integer ops, IEEE float ops on
/// the same bit patterns), so results — including NaN payloads — are
/// bit-identical. `Div`/`Rem` by an immediate zero stay unfolded so the
/// runtime division-by-zero error (which names the function) fires
/// exactly as before. Label behavior is unchanged: an all-immediate op's
/// label was the union of empty labels — empty, produced without touching
/// the label table (the union early-outs) — which is precisely what
/// [`DOp::Const`] yields. A `select` folds only when its immediate
/// condition chooses an immediate arm (the other arm's label is never
/// read by either engine).
///
/// Folded values are **not** forwarded into downstream operand slots:
/// under control-flow policy `All` the register written by a folded op
/// carries the control context of its program point, which an immediate
/// operand would not — forwarding would change the label unions.
pub fn fold_constants(f: &mut DecodedFunction) -> (usize, usize) {
    use pt_ir::BinOp;
    let (mut folded, mut reduced) = (0usize, 0usize);
    for blk in &mut f.blocks {
        for di in blk.insts.iter_mut() {
            let bits: Option<u64> = match &di.op {
                DOp::BinI {
                    op,
                    a: Opnd::Imm(a),
                    b: Opnd::Imm(b),
                } => {
                    let (x, y) = (*a as i64, *b as i64);
                    match op {
                        BinOp::Add => Some(x.wrapping_add(y) as u64),
                        BinOp::Sub => Some(x.wrapping_sub(y) as u64),
                        BinOp::Mul => Some(x.wrapping_mul(y) as u64),
                        BinOp::Div => (y != 0).then(|| x.wrapping_div(y) as u64),
                        BinOp::Rem => (y != 0).then(|| x.wrapping_rem(y) as u64),
                        BinOp::And => Some((x & y) as u64),
                        BinOp::Or => Some((x | y) as u64),
                        BinOp::Xor => Some((x ^ y) as u64),
                        BinOp::Shl => Some(crate::ops::shl_i64(x, y) as u64),
                        BinOp::Shr => Some(crate::ops::shr_i64(x, y) as u64),
                        BinOp::Min => Some(x.min(y) as u64),
                        BinOp::Max => Some(x.max(y) as u64),
                    }
                }
                DOp::BinF {
                    op,
                    a: Opnd::Imm(a),
                    b: Opnd::Imm(b),
                } => {
                    let (x, y) = (f64::from_bits(*a), f64::from_bits(*b));
                    let r = match op {
                        BinOp::Add => Some(x + y),
                        BinOp::Sub => Some(x - y),
                        BinOp::Mul => Some(x * y),
                        BinOp::Div => Some(x / y),
                        BinOp::Rem => Some(x % y),
                        BinOp::Min => Some(x.min(y)),
                        BinOp::Max => Some(x.max(y)),
                        // Bitwise float ops decode to Trap; unreachable
                        // here, but folding nothing is always sound.
                        _ => None,
                    };
                    r.map(f64::to_bits)
                }
                DOp::NegI { a: Opnd::Imm(a) } => Some((*a as i64).wrapping_neg() as u64),
                DOp::NegF { a: Opnd::Imm(a) } => Some((-f64::from_bits(*a)).to_bits()),
                DOp::NotBool { a: Opnd::Imm(a) } => Some((*a == 0) as u64),
                DOp::NotInt { a: Opnd::Imm(a) } => Some(!(*a as i64) as u64),
                DOp::IntToFloat { a: Opnd::Imm(a) } => Some(((*a as i64) as f64).to_bits()),
                DOp::FloatToInt { a: Opnd::Imm(a) } => {
                    let f = f64::from_bits(*a);
                    let clamped = if f.is_nan() {
                        0
                    } else {
                        f.clamp(i64::MIN as f64, i64::MAX as f64) as i64
                    };
                    Some(clamped as u64)
                }
                DOp::Sqrt { a: Opnd::Imm(a) } => Some(f64::from_bits(*a).max(0.0).sqrt().to_bits()),
                DOp::AbsI { a: Opnd::Imm(a) } => Some((*a as i64).wrapping_abs() as u64),
                DOp::AbsF { a: Opnd::Imm(a) } => Some(f64::from_bits(*a).abs().to_bits()),
                DOp::CmpI {
                    pred,
                    a: Opnd::Imm(a),
                    b: Opnd::Imm(b),
                } => Some(pred.eval(*a as i64, *b as i64) as u64),
                DOp::CmpF {
                    pred,
                    a: Opnd::Imm(a),
                    b: Opnd::Imm(b),
                } => Some(pred.eval(f64::from_bits(*a), f64::from_bits(*b)) as u64),
                DOp::Select {
                    c: Opnd::Imm(c),
                    t,
                    e,
                } => match if *c != 0 { t } else { e } {
                    Opnd::Imm(b) => Some(*b),
                    Opnd::Reg(_) => None,
                },
                DOp::Gep {
                    base: Opnd::Imm(b),
                    index: Opnd::Imm(i),
                    stride,
                } => Some((*b as i64).wrapping_add((*i as i64).wrapping_mul(*stride)) as u64),
                _ => None,
            };
            if let Some(bits) = bits {
                di.op = DOp::Const { bits };
                folded += 1;
                continue;
            }
            // Constant-index gep: precompute `index * stride` so the
            // remaining runtime arithmetic (and the fused LoadIdx /
            // StoreIdx address computation) is `base + k * 1`. Wrapping
            // multiplication is associative with the later `* 1`, so the
            // address bits are unchanged.
            if let DOp::Gep {
                base: Opnd::Reg(_),
                index: index @ Opnd::Imm(_),
                stride,
            } = &mut di.op
            {
                if *stride != 1 {
                    let Opnd::Imm(i) = *index else { unreachable!() };
                    *index = Opnd::Imm((i as i64).wrapping_mul(*stride) as u64);
                    *stride = 1;
                    reduced += 1;
                }
            }
        }
    }
    (folded, reduced)
}

/// Upper bound on the body size of an inlinable callee: beyond this the
/// per-call bookkeeping is already amortized and inlining only bloats the
/// caller's bytecode.
const INLINE_MAX_BODY: usize = 48;

/// A callee eligible for whole-call inlining, captured pre-regalloc so
/// register `nparams + i` is still "instruction `i`".
///
/// Public (and cached per function by the incremental static stage) so an
/// edited caller can be re-optimized against its callees' specs without
/// re-decoding the callees: the spec is exactly the slice of callee state
/// the inlining pass reads.
#[derive(Debug, Clone)]
pub struct InlineSpec {
    pub entry: pt_ir::BlockId,
    pub nparams: usize,
    /// Callee local register count (`nregs - nparams`, pre-allocation).
    pub nlocals: usize,
    pub body: Vec<DInst>,
    pub ret: Option<Opnd>,
}

/// The [`InlineSpec`] of `f`, if it qualifies for whole-call inlining:
/// SSA-verified, single-block, call-free, alloca-free, and small. Must be
/// captured after [`fuse`] but before [`allocate_registers`] and before
/// inlining into `f` (inlining into an *eligible* function is vacuous —
/// its body has no calls — so capture order against other functions does
/// not matter).
pub fn inline_spec_of(f: &DecodedFunction, clean: bool) -> Option<InlineSpec> {
    let eligible = clean
        && f.blocks.len() == 1
        && f.blocks[0].insts.len() <= INLINE_MAX_BODY
        && matches!(f.blocks[0].term, DTerm::Ret(_))
        && f.blocks[0].insts.iter().all(|di| inlinable_op(&di.op));
    eligible.then(|| InlineSpec {
        entry: f.entry,
        nparams: f.nparams,
        nlocals: f.nregs - f.nparams,
        body: f.blocks[0].insts.to_vec(),
        ret: match &f.blocks[0].term {
            DTerm::Ret(v) => *v,
            _ => unreachable!("matched above"),
        },
    })
}

/// Whether an operation may appear in an inlined body: pure scalar ops,
/// memory accesses, and host-primitive calls. Excluded: internal and
/// inlined calls (they need real frames), `alloca` (its arena lifetime
/// is the callee frame's), intrinsics (parameter sources interact with
/// frame-level state), and library calls (they charge the caller's
/// *child* time and own a profile entry, which would break the inlined
/// frame's `exclusive == inclusive` invariant — host primitives charge
/// the clock only, so they preserve it).
fn inlinable_op(op: &DOp) -> bool {
    !matches!(
        op,
        DOp::Alloca { .. }
            | DOp::CallInternal { .. }
            | DOp::CallIntrinsic { .. }
            | DOp::CallLibrary { .. }
            | DOp::CallInlined { .. }
    )
}

/// Flatten every call to a single-block, call-free, alloca-free,
/// SSA-verified callee into a [`DOp::CallInlined`] superinstruction in
/// the caller. Returns the number of call sites inlined.
///
/// Arguments are substituted into the body as the caller-space operands
/// of the call (sound because the body cannot write caller registers:
/// its locals are renumbered into fresh slots appended to the caller's
/// frame — which the subsequent register allocation then collapses).
pub fn inline_leaf_calls(module: &mut DecodedModule, ssa_clean: &[bool]) -> usize {
    let specs: Vec<Option<InlineSpec>> = module
        .functions
        .iter()
        .zip(ssa_clean)
        .map(|(f, &clean)| inline_spec_of(f, clean))
        .collect();
    let refs: Vec<Option<&InlineSpec>> = specs.iter().map(|s| s.as_ref()).collect();
    module
        .functions
        .iter_mut()
        .map(|f| inline_calls_in(f, &refs))
        .sum()
}

/// Rewrite every inlinable call site of one caller against the callee
/// specs (`specs[i]` = spec of function `i`, `None` when ineligible or —
/// in the incremental path — still unresolved within the caller's own
/// SCC, whose members are never eligible anyway since their bodies
/// contain calls). Returns the number of call sites inlined.
pub fn inline_calls_in(f: &mut DecodedFunction, specs: &[Option<&InlineSpec>]) -> usize {
    let mut inlined = 0usize;
    let mut nregs = f.nregs;
    for blk in &mut f.blocks {
        for di in blk.insts.iter_mut() {
            let DOp::CallInternal { callee, args } = &di.op else {
                continue;
            };
            let callee = *callee;
            let Some(spec) = specs[callee.index()] else {
                continue;
            };
            if args.len() != spec.nparams {
                // Malformed arity: leave the real call so the runtime
                // arity error fires exactly like the reference's.
                continue;
            }
            let args = args.clone();
            let base = nregs as u32;
            let remap = |o: Opnd| -> Opnd {
                match o {
                    Opnd::Reg(r) if (r as usize) < spec.nparams => args[r as usize],
                    Opnd::Reg(r) => Opnd::Reg(base + r - spec.nparams as u32),
                    imm => imm,
                }
            };
            let body: Box<[DInst]> = spec
                .body
                .iter()
                .map(|bi| {
                    let mut op = bi.op.clone();
                    rewrite_op(&mut op, &|o: &mut Opnd| *o = remap(*o));
                    DInst {
                        dst: base + bi.dst - spec.nparams as u32,
                        op,
                    }
                })
                .collect();
            di.op = DOp::CallInlined {
                callee,
                entry: spec.entry,
                body,
                ret: spec.ret.map(remap),
            };
            nregs += spec.nlocals;
            inlined += 1;
        }
    }
    f.nregs = nregs;
    inlined
}

/// Call `visit` with every operand the operation *reads*.
fn for_each_src(op: &DOp, visit: &mut dyn FnMut(Opnd)) {
    match op {
        DOp::Const { .. } => {}
        DOp::BinI { a, b, .. }
        | DOp::BinF { a, b, .. }
        | DOp::CmpI { a, b, .. }
        | DOp::CmpF { a, b, .. } => {
            visit(*a);
            visit(*b);
        }
        DOp::NegI { a }
        | DOp::NegF { a }
        | DOp::NotBool { a }
        | DOp::NotInt { a }
        | DOp::IntToFloat { a }
        | DOp::FloatToInt { a }
        | DOp::Sqrt { a }
        | DOp::AbsI { a }
        | DOp::AbsF { a } => visit(*a),
        DOp::Select { c, t, e } => {
            visit(*c);
            visit(*t);
            visit(*e);
        }
        DOp::Alloca { words } => visit(*words),
        DOp::Load { addr } => visit(*addr),
        DOp::Store { addr, value } => {
            visit(*addr);
            visit(*value);
        }
        DOp::Gep { base, index, .. } | DOp::LoadIdx { base, index, .. } => {
            visit(*base);
            visit(*index);
        }
        DOp::StoreIdx {
            base, index, value, ..
        } => {
            visit(*base);
            visit(*index);
            visit(*value);
        }
        DOp::CallInternal { args, .. }
        | DOp::CallIntrinsic { args, .. }
        | DOp::CallHostPrim { args, .. }
        | DOp::CallLibrary { args, .. } => {
            for a in args.iter() {
                visit(*a);
            }
        }
        DOp::CallInlined { body, ret, .. } => {
            // The whole compound occupies one program point: its internal
            // destinations are visited as reads too, which conservatively
            // pins every body-local register live at this point so the
            // allocator cannot overlap them.
            for bi in body.iter() {
                for_each_src(&bi.op, visit);
                visit(Opnd::Reg(bi.dst));
            }
            if let Some(o) = ret {
                visit(*o);
            }
        }
        DOp::Trap { .. } => {}
    }
}

/// Call `visit` with every non-phi-move operand the terminator reads.
fn for_each_term_src(term: &DTerm, visit: &mut dyn FnMut(Opnd)) {
    match term {
        DTerm::Br(_) | DTerm::Unreachable => {}
        DTerm::CondBr { cond, .. } => visit(*cond),
        DTerm::CondBrCmp { a, b, .. } => {
            visit(*a);
            visit(*b);
        }
        DTerm::Ret(v) => {
            if let Some(o) = v {
                visit(*o)
            }
        }
    }
}

/// Call `visit` with every outgoing edge of the terminator.
fn for_each_edge<'a>(term: &'a DTerm, visit: &mut dyn FnMut(&'a Edge)) {
    match term {
        DTerm::Br(e) => visit(e),
        DTerm::CondBr {
            then_edge,
            else_edge,
            ..
        }
        | DTerm::CondBrCmp {
            then_edge,
            else_edge,
            ..
        } => {
            visit(then_edge);
            visit(else_edge);
        }
        DTerm::Ret(_) | DTerm::Unreachable => {}
    }
}

/// Number of reads of each register anywhere in the function (operands,
/// phi-move sources, terminator operands). Fusion requires the fused-away
/// intermediate to have exactly one reader.
fn use_counts(f: &DecodedFunction) -> Vec<u32> {
    let mut uses = vec![0u32; f.nregs];
    let mut bump = |o: Opnd| {
        if let Opnd::Reg(r) = o {
            uses[r as usize] += 1;
        }
    };
    for blk in &f.blocks {
        for di in blk.insts.iter() {
            for_each_src(&di.op, &mut bump);
        }
        for_each_term_src(&blk.term, &mut bump);
        for_each_edge(&blk.term, &mut |e| {
            for mv in e.moves.iter() {
                bump(mv.src);
            }
        });
    }
    uses
}

/// Superinstruction fusion peephole. Returns
/// `(cmp_br, gep_load, gep_store)` pair counts.
pub fn fuse(f: &mut DecodedFunction) -> (usize, usize, usize) {
    let uses = use_counts(f);
    let single_use = |o: u32| uses[o as usize] == 1;
    let (mut n_cb, mut n_ld, mut n_st) = (0usize, 0usize, 0usize);

    for blk in &mut f.blocks {
        // gep+load / gep+store over adjacent pairs.
        let old = std::mem::take(&mut blk.insts).into_vec();
        let mut insts = Vec::with_capacity(old.len());
        let mut i = 0;
        while i < old.len() {
            if i + 1 < old.len() {
                if let DOp::Gep {
                    base,
                    index,
                    stride,
                } = old[i].op
                {
                    let g = old[i].dst;
                    if single_use(g) {
                        match &old[i + 1].op {
                            DOp::Load { addr: Opnd::Reg(r) } if *r == g => {
                                insts.push(DInst {
                                    dst: old[i + 1].dst,
                                    op: DOp::LoadIdx {
                                        base,
                                        index,
                                        stride,
                                    },
                                });
                                n_ld += 1;
                                i += 2;
                                continue;
                            }
                            // `value` cannot also be the gep result: that
                            // would be a second read, excluded by the
                            // single-use requirement.
                            DOp::Store {
                                addr: Opnd::Reg(r),
                                value,
                            } if *r == g => {
                                insts.push(DInst {
                                    dst: old[i + 1].dst,
                                    op: DOp::StoreIdx {
                                        base,
                                        index,
                                        stride,
                                        value: *value,
                                    },
                                });
                                n_st += 1;
                                i += 2;
                                continue;
                            }
                            _ => {}
                        }
                    }
                }
            }
            insts.push(old[i].clone());
            i += 1;
        }

        // cmp+condbr when the block ends in a compare consumed only by
        // its own conditional branch.
        if let DTerm::CondBr {
            cond: Opnd::Reg(c), ..
        } = &blk.term
        {
            let c = *c;
            let fusable = matches!(
                insts.last(),
                Some(DInst {
                    dst,
                    op: DOp::CmpI { .. } | DOp::CmpF { .. },
                }) if *dst == c && single_use(c)
            );
            if fusable {
                let cmp = insts.pop().expect("matched above");
                let (pred, float, a, b) = match cmp.op {
                    DOp::CmpI { pred, a, b } => (pred, false, a, b),
                    DOp::CmpF { pred, a, b } => (pred, true, a, b),
                    _ => unreachable!("matched above"),
                };
                let DTerm::CondBr {
                    then_edge,
                    else_edge,
                    exiting,
                    join,
                    ..
                } = std::mem::replace(&mut blk.term, DTerm::Unreachable)
                else {
                    unreachable!("matched above");
                };
                blk.term = DTerm::CondBrCmp {
                    pred,
                    float,
                    a,
                    b,
                    then_edge,
                    else_edge,
                    exiting,
                    join,
                };
                n_cb += 1;
            }
        }

        blk.insts = insts.into_boxed_slice();
    }
    (n_cb, n_ld, n_st)
}

/// Bitset over the function's pre-allocation register space.
#[derive(Clone, PartialEq, Eq)]
struct RegSet(Vec<u64>);

impl RegSet {
    fn new(nregs: usize) -> RegSet {
        RegSet(vec![0; nregs.div_ceil(64)])
    }
    #[inline]
    fn set(&mut self, r: u32) {
        self.0[r as usize / 64] |= 1 << (r % 64);
    }
    #[inline]
    fn clear(&mut self, r: u32) {
        self.0[r as usize / 64] &= !(1 << (r % 64));
    }
    fn union_with(&mut self, other: &RegSet) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a |= b;
        }
    }
    fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.0.iter().enumerate().flat_map(|(w, &bits)| {
            (0..64)
                .filter(move |b| bits >> b & 1 == 1)
                .map(move |b| (w * 64 + b) as u32)
        })
    }
}

/// Linear-scan register allocation: renumber registers by live range and
/// shrink `nregs` to the function's true register pressure.
///
/// Liveness is computed per block (phi moves modelled on their edges:
/// sources read at the predecessor's end, destinations defined there and
/// live into the target), then each register gets one conservative
/// interval `[first def/live point, last use/live point]` over the
/// linearized block order. Intervals that overlap get distinct slots;
/// expiry is strict (`end < start`), so a slot is never reused at the
/// position that last read it.
pub fn allocate_registers(f: &mut DecodedFunction) {
    let nold = f.nregs;
    let nparams = f.nparams;
    let nblocks = f.blocks.len();

    // Linear positions: parameters are defined at -1, each instruction
    // takes one position, each terminator (with its edge moves) one more.
    let mut block_start = vec![0i64; nblocks];
    let mut block_term = vec![0i64; nblocks];
    let mut pos = 0i64;
    for (i, blk) in f.blocks.iter().enumerate() {
        block_start[i] = pos;
        pos += blk.insts.len() as i64;
        block_term[i] = pos;
        pos += 1;
    }

    // Block-level liveness to fixpoint.
    let mut livein = vec![RegSet::new(nold); nblocks];
    let mut liveout = vec![RegSet::new(nold); nblocks];
    loop {
        let mut changed = false;
        for b in (0..nblocks).rev() {
            let blk = &f.blocks[b];
            let mut out = RegSet::new(nold);
            for_each_edge(&blk.term, &mut |e| {
                let mut t = livein[e.target.index()].clone();
                for mv in e.moves.iter() {
                    t.clear(mv.dst);
                }
                for mv in e.moves.iter() {
                    if let Opnd::Reg(r) = mv.src {
                        t.set(r);
                    }
                }
                out.union_with(&t);
            });
            let mut live = out.clone();
            for_each_term_src(&blk.term, &mut |o| {
                if let Opnd::Reg(r) = o {
                    live.set(r);
                }
            });
            for di in blk.insts.iter().rev() {
                live.clear(di.dst);
                for_each_src(&di.op, &mut |o| {
                    if let Opnd::Reg(r) = o {
                        live.set(r);
                    }
                });
            }
            if out != liveout[b] {
                liveout[b] = out;
                changed = true;
            }
            if live != livein[b] {
                livein[b] = live;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Conservative intervals.
    let mut start = vec![i64::MAX; nold];
    let mut end = vec![i64::MIN; nold];
    macro_rules! cover {
        ($r:expr, $p:expr) => {{
            let (r, p) = ($r as usize, $p);
            start[r] = start[r].min(p);
            end[r] = end[r].max(p);
        }};
    }
    for r in 0..nparams {
        cover!(r as u32, -1);
    }
    for (b, blk) in f.blocks.iter().enumerate() {
        for (p, di) in (block_start[b]..).zip(blk.insts.iter()) {
            for_each_src(&di.op, &mut |o| {
                if let Opnd::Reg(r) = o {
                    cover!(r, p);
                }
            });
            cover!(di.dst, p);
        }
        let t = block_term[b];
        for_each_term_src(&blk.term, &mut |o| {
            if let Opnd::Reg(r) = o {
                cover!(r, t);
            }
        });
        for_each_edge(&blk.term, &mut |e| {
            for mv in e.moves.iter() {
                if let Opnd::Reg(r) = mv.src {
                    cover!(r, t);
                }
                cover!(mv.dst, t);
            }
        });
        for r in livein[b].iter() {
            cover!(r, block_start[b]);
        }
        for r in liveout[b].iter() {
            cover!(r, block_term[b]);
        }
    }

    // The scan. Parameters are pre-pinned to slots 0..nparams so the
    // frame-setup argument copy stays an index-free memcpy.
    let mut slot_of: Vec<u32> = vec![u32::MAX; nold];
    let mut active: BinaryHeap<Reverse<(i64, u32)>> = BinaryHeap::new();
    let mut free: BinaryHeap<Reverse<u32>> = BinaryHeap::new();
    let mut next_fresh = nparams as u32;
    for r in 0..nparams {
        slot_of[r] = r as u32;
        active.push(Reverse((end[r], r as u32)));
    }
    let mut order: Vec<usize> = (nparams..nold).filter(|&r| start[r] != i64::MAX).collect();
    order.sort_unstable_by_key(|&r| (start[r], r));
    for r in order {
        while let Some(&Reverse((e, s))) = active.peek() {
            if e < start[r] {
                active.pop();
                free.push(Reverse(s));
            } else {
                break;
            }
        }
        let slot = match free.pop() {
            Some(Reverse(s)) => s,
            None => {
                let s = next_fresh;
                next_fresh += 1;
                s
            }
        };
        slot_of[r] = slot;
        active.push(Reverse((end[r], slot)));
    }

    // Rewrite every register reference. Registers with no interval are
    // never referenced (e.g. fused-away gep results) and never appear.
    let map = |o: &mut Opnd| {
        if let Opnd::Reg(r) = o {
            debug_assert_ne!(slot_of[*r as usize], u32::MAX, "referenced reg has a slot");
            *r = slot_of[*r as usize];
        }
    };
    for blk in &mut f.blocks {
        for di in blk.insts.iter_mut() {
            di.dst = slot_of[di.dst as usize];
            rewrite_op(&mut di.op, &map);
        }
        match &mut blk.term {
            DTerm::Br(e) => rewrite_edge(e, &map),
            DTerm::CondBr {
                cond,
                then_edge,
                else_edge,
                ..
            } => {
                map(cond);
                rewrite_edge(then_edge, &map);
                rewrite_edge(else_edge, &map);
            }
            DTerm::CondBrCmp {
                a,
                b,
                then_edge,
                else_edge,
                ..
            } => {
                map(a);
                map(b);
                rewrite_edge(then_edge, &map);
                rewrite_edge(else_edge, &map);
            }
            DTerm::Ret(v) => {
                if let Some(o) = v {
                    map(o);
                }
            }
            DTerm::Unreachable => {}
        }
    }
    f.nregs = next_fresh as usize;
}

fn rewrite_edge(e: &mut Edge, map: &impl Fn(&mut Opnd)) {
    for mv in e.moves.iter_mut() {
        let mut d = Opnd::Reg(mv.dst);
        map(&mut d);
        let Opnd::Reg(nd) = d else { unreachable!() };
        mv.dst = nd;
        map(&mut mv.src);
    }
}

fn rewrite_op(op: &mut DOp, map: &impl Fn(&mut Opnd)) {
    match op {
        DOp::Const { .. } => {}
        DOp::BinI { a, b, .. }
        | DOp::BinF { a, b, .. }
        | DOp::CmpI { a, b, .. }
        | DOp::CmpF { a, b, .. } => {
            map(a);
            map(b);
        }
        DOp::NegI { a }
        | DOp::NegF { a }
        | DOp::NotBool { a }
        | DOp::NotInt { a }
        | DOp::IntToFloat { a }
        | DOp::FloatToInt { a }
        | DOp::Sqrt { a }
        | DOp::AbsI { a }
        | DOp::AbsF { a } => map(a),
        DOp::Select { c, t, e } => {
            map(c);
            map(t);
            map(e);
        }
        DOp::Alloca { words } => map(words),
        DOp::Load { addr } => map(addr),
        DOp::Store { addr, value } => {
            map(addr);
            map(value);
        }
        DOp::Gep { base, index, .. } | DOp::LoadIdx { base, index, .. } => {
            map(base);
            map(index);
        }
        DOp::StoreIdx {
            base, index, value, ..
        } => {
            map(base);
            map(index);
            map(value);
        }
        DOp::CallInternal { args, .. }
        | DOp::CallIntrinsic { args, .. }
        | DOp::CallHostPrim { args, .. }
        | DOp::CallLibrary { args, .. } => {
            for a in args.iter_mut() {
                map(a);
            }
        }
        DOp::CallInlined { body, ret, .. } => {
            for bi in body.iter_mut() {
                let mut d = Opnd::Reg(bi.dst);
                map(&mut d);
                let Opnd::Reg(nd) = d else { unreachable!() };
                bi.dst = nd;
                rewrite_op(&mut bi.op, map);
            }
            if let Some(o) = ret {
                map(o);
            }
        }
        DOp::Trap { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prepared::PreparedFunction;
    use pt_ir::{FunctionBuilder, Module, Type, Value};

    fn decode_one(m: &Module) -> DecodedFunction {
        let f = &m.functions[0];
        let prep = PreparedFunction::compute(f);
        super::super::decode_function(f, &prep, &super::super::DecodeEnv::of(m))
    }

    /// A builder loop header compares the induction variable and branches
    /// on it: the classic fusion target.
    #[test]
    fn loop_header_cmp_br_fuses() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![("n".into(), Type::I64)], Type::Void);
        b.for_loop(0i64, b.param(0), 1i64, |b, _| {
            b.call_external("pt_work_flops", vec![Value::int(1)], Type::Void);
        });
        b.ret(None);
        m.add_function(b.finish());
        let mut d = decode_one(&m);
        let (cb, _, _) = fuse(&mut d);
        assert_eq!(cb, 1, "the loop-exit compare fuses into its branch");
        assert!(d
            .blocks
            .iter()
            .any(|blk| matches!(blk.term, DTerm::CondBrCmp { .. })));
        // The standalone compare is gone from the instruction stream.
        assert!(!d
            .blocks
            .iter()
            .flat_map(|blk| blk.insts.iter())
            .any(|di| matches!(di.op, DOp::CmpI { .. })));
    }

    /// Array accesses (`gep` feeding exactly one `load`/`store`) fuse into
    /// addressed memory operations.
    #[test]
    fn gep_load_store_fuse() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![("i".into(), Type::I64)], Type::I64);
        let buf = b.alloca(8i64);
        let a1 = b.gep(buf, b.param(0), 1);
        b.store(a1, Value::int(7));
        let a2 = b.gep(buf, b.param(0), 1);
        let v = b.load(a2, Type::I64);
        b.ret(Some(v));
        m.add_function(b.finish());
        let mut d = decode_one(&m);
        let (_, ld, st) = fuse(&mut d);
        assert_eq!((ld, st), (1, 1));
        let ops: Vec<&DOp> = d.blocks[0].insts.iter().map(|i| &i.op).collect();
        assert!(ops.iter().any(|o| matches!(o, DOp::StoreIdx { .. })));
        assert!(ops.iter().any(|o| matches!(o, DOp::LoadIdx { .. })));
        assert!(!ops.iter().any(|o| matches!(o, DOp::Gep { .. })));
    }

    /// A gep with two consumers must NOT fuse — the address register is
    /// still read elsewhere.
    #[test]
    fn multi_use_gep_does_not_fuse() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![("i".into(), Type::I64)], Type::I64);
        let buf = b.alloca(8i64);
        let addr = b.gep(buf, b.param(0), 1);
        let v = b.load(addr, Type::I64);
        let sum = b.add(v, addr); // second read of the address
        b.ret(Some(sum));
        m.add_function(b.finish());
        let mut d = decode_one(&m);
        let (_, ld, st) = fuse(&mut d);
        assert_eq!((ld, st), (0, 0));
    }

    /// Register allocation shrinks a long dependency chain to a handful of
    /// slots and keeps parameters pinned at the front of the frame.
    #[test]
    fn regalloc_shrinks_straightline_chain() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![("x".into(), Type::I64)], Type::I64);
        let mut v = b.param(0);
        for k in 0..40 {
            v = b.add(v, Value::int(k));
        }
        b.ret(Some(v));
        m.add_function(b.finish());
        let mut d = decode_one(&m);
        let before = d.nregs;
        allocate_registers(&mut d);
        assert!(d.nregs < before, "chain must shrink ({before} regs before)");
        assert!(
            d.nregs <= 4,
            "a pure chain needs only a couple of slots, got {}",
            d.nregs
        );
        // The parameter still lives in slot 0: the first add reads Reg(0).
        let DOp::BinI { a, .. } = &d.blocks[0].insts[0].op else {
            panic!("first inst is the first add");
        };
        assert_eq!(*a, Opnd::Reg(0));
    }

    /// Values live across a loop keep distinct slots from values defined
    /// inside it (interference via the back edge).
    #[test]
    fn regalloc_respects_loop_live_ranges() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![("n".into(), Type::I64)], Type::I64);
        let acc = b.alloca(1i64); // live across the whole loop
        b.store(acc, Value::int(0));
        b.for_loop(0i64, b.param(0), 1i64, |b, iv| {
            let cur = b.load(acc, Type::I64);
            let nxt = b.add(cur, iv);
            b.store(acc, nxt);
        });
        let out = b.load(acc, Type::I64);
        b.ret(Some(out));
        m.add_function(b.finish());
        let mut d = decode_one(&m);
        allocate_registers(&mut d);
        // Collect the slot the alloca result landed in and every slot
        // written inside the loop body: they must not collide.
        let alloca_slot = d
            .blocks
            .iter()
            .flat_map(|blk| blk.insts.iter())
            .find(|di| matches!(di.op, DOp::Alloca { .. }))
            .map(|di| di.dst)
            .expect("alloca present");
        let writes_alloca_slot = d
            .blocks
            .iter()
            .flat_map(|blk| blk.insts.iter())
            .filter(|di| !matches!(di.op, DOp::Alloca { .. }) && di.dst == alloca_slot);
        assert_eq!(
            writes_alloca_slot.count(),
            0,
            "nothing may clobber the buffer address while the loop lives"
        );
    }
}
