//! The decode stage: compile `pt-ir` functions into a flat bytecode.
//!
//! The dynamic taint run is the hot path of the whole system — every paper
//! artifact, every bench scenario, and every `pt-serve` request bottoms out
//! in it. Interpreting the [`pt_ir::InstKind`] tree directly pays per step
//! for work that is entirely static: resolving [`Value`] operands by enum
//! match, chasing `func.inst(iid)` indirections, scanning block prefixes
//! for phi nodes, and hashing `(from, to)` pairs to find loop back edges.
//! Following the Taint Rabbit's observation that pre-generated fast paths
//! are where the order-of-magnitude wins live, this module compiles each
//! function **once** into a [`DecodedFunction`]:
//!
//! * **operands** are pre-resolved to [`Opnd`]: a flat register index
//!   (parameters first, then one register per instruction) or an inline
//!   64-bit immediate — no `Value` matching at run time;
//! * **types are folded into opcodes**: float-vs-int arithmetic, the
//!   bool-vs-int `not`, and statically unsupported combinations (a float
//!   `and`) become distinct [`DOp`] variants, decided once;
//! * **callees are pre-bound**: internal calls carry their [`FunctionId`],
//!   taint intrinsics are dispatched to an [`Intrinsic`] tag, and library
//!   externals carry their pseudo [`FunctionId`] — no string matching per
//!   call;
//! * **per-edge phi move-lists** are precomputed: each CFG [`Edge`] holds
//!   the parallel-copy schedule `(dst register, src operand)` for the
//!   target block's phis, in block order. The interpreter executes them
//!   with a read-all-then-write stage, which handles the swap and
//!   lost-copy hazards of parallel copies by construction;
//! * **branch metadata is inlined**: each edge knows whether it is a loop
//!   back edge or a fresh loop entry, and each conditional branch carries
//!   its exiting-loop list and immediate postdominator — the hot loop
//!   never touches a `HashMap`.
//!
//! Decoding is part of the static stage ([`crate::prepared`]), so a
//! `perf_taint::Session`-style cache shares the decoded program across
//! every run of a module. After the straight translation below, the
//! [`passes`] pipeline rewrites each function in place: superinstruction
//! fusion collapses the hot `cmp+condbr` and `gep+load` / `gep+store`
//! pairs into single fused operations ([`DOp::LoadIdx`], [`DOp::StoreIdx`],
//! [`DTerm::CondBrCmp`]), and a linear-scan register allocation renumbers
//! virtual registers by live range so pooled frames shrink to the
//! function's true register pressure. The legacy tree-walker survives as
//! [`crate::reference`], and [`crate::differential`] states the contract
//! between the two: bit-identical run artifacts.

pub mod passes;

use crate::prepared::PreparedFunction;
use pt_analysis::loops::LoopId;
use pt_ir::{
    BinOp, BlockId, Callee, CmpPred, Const, Function, FunctionId, InstKind, Module, Terminator,
    Type, UnOp, Value,
};
use std::collections::HashMap;

/// A pre-resolved operand: a frame register or an inline immediate.
///
/// Registers `0..nparams` hold the call arguments; register `nparams + i`
/// holds the result of instruction `i`. Immediates store the value's raw
/// 64-bit representation (the [`crate::memory::TVal`] bit convention) and
/// are always untainted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Opnd {
    Reg(u32),
    Imm(u64),
}

/// One parallel-copy move of a CFG edge: write `src` into register `dst`.
#[derive(Debug, Clone, Copy)]
pub struct PhiMove {
    pub dst: u32,
    pub src: Opnd,
}

/// A decoded CFG edge: target block, the target's phi moves for this
/// particular predecessor, and the loop bookkeeping the taint sinks need.
#[derive(Debug, Clone)]
pub struct Edge {
    pub target: BlockId,
    /// Parallel-copy schedule for the target's phi prefix, in block order.
    /// Executed with staged writes (read every source before the first
    /// write), so swap / lost-copy cycles need no special cases.
    pub moves: Box<[PhiMove]>,
    /// `Some(loop)` when this edge is a latch → header back edge.
    pub back_edge: Option<LoopId>,
    /// `Some(loop)` when this edge enters the target's loop from outside
    /// (a fresh loop entry). Mutually exclusive with `back_edge`.
    pub enters: Option<LoopId>,
}

/// Taint intrinsics the interpreter resolves itself, pre-dispatched at
/// decode time so the hot loop never string-matches a callee name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Intrinsic {
    /// `pt_param_i64(idx) -> i64`: read marked parameter `idx`, tainted.
    ParamI64,
    /// `pt_register_param(addr, idx)`: taint the word at `addr`.
    RegisterParam,
    /// `pt_assert_has_param(v, idx)`: trap unless `v` carries param `idx`.
    AssertHasParam,
    /// `pt_assert_not_param(v, idx)`: trap if `v` carries param `idx`.
    AssertNotParam,
    /// `pt_label_params(v) -> i64`: the value's parameter set as a bitmask.
    LabelParams,
    /// `pt_taint_source(v, id) -> v`: under the security policy, join a
    /// source base label `src#id` into `v`'s label (may-taint); under the
    /// paper policy, an identity pass-through (value *and* label).
    TaintSource,
    /// `pt_sanitize(v) -> v`: under the security policy, clear `v`'s
    /// label to bottom; under the paper policy, identity.
    Sanitize,
    /// `pt_sink_check(v, id) -> v`: pass-through; under the security
    /// policy, record a check (and a violation when `v` is tainted) in
    /// the per-sink ledger.
    SinkCheck,
}

impl Intrinsic {
    /// Decode-time lookup by external symbol name.
    pub fn by_name(name: &str) -> Option<Intrinsic> {
        Some(match name {
            "pt_param_i64" => Intrinsic::ParamI64,
            "pt_register_param" => Intrinsic::RegisterParam,
            "pt_assert_has_param" => Intrinsic::AssertHasParam,
            "pt_assert_not_param" => Intrinsic::AssertNotParam,
            "pt_label_params" => Intrinsic::LabelParams,
            "pt_taint_source" => Intrinsic::TaintSource,
            "pt_sanitize" => Intrinsic::Sanitize,
            "pt_sink_check" => Intrinsic::SinkCheck,
            _ => return None,
        })
    }
}

/// A decoded operation. Result typing (float vs int, bool vs int `not`)
/// is folded into the variant; operands are pre-resolved [`Opnd`]s.
#[derive(Debug, Clone)]
pub enum DOp {
    /// A constant result, produced by the constant-folding pass
    /// ([`passes::fold_constants`]) from an operation whose operands were
    /// all immediates. Retires as **one** instruction (the op it
    /// replaces); the result label is empty exactly as the original op's
    /// union of immediate (empty) labels would have been.
    Const {
        bits: u64,
    },
    /// Integer binary op (wrapping; `Div`/`Rem` trap on zero).
    BinI {
        op: BinOp,
        a: Opnd,
        b: Opnd,
    },
    /// Float binary op (`Add`..`Rem`, `Min`, `Max` only — the bitwise ops
    /// decode to [`DOp::Trap`] when the operands are float).
    BinF {
        op: BinOp,
        a: Opnd,
        b: Opnd,
    },
    NegI {
        a: Opnd,
    },
    NegF {
        a: Opnd,
    },
    /// Logical not of a `Bool`-typed operand.
    NotBool {
        a: Opnd,
    },
    /// Bitwise not of an integer operand.
    NotInt {
        a: Opnd,
    },
    IntToFloat {
        a: Opnd,
    },
    FloatToInt {
        a: Opnd,
    },
    Sqrt {
        a: Opnd,
    },
    AbsI {
        a: Opnd,
    },
    AbsF {
        a: Opnd,
    },
    CmpI {
        pred: CmpPred,
        a: Opnd,
        b: Opnd,
    },
    CmpF {
        pred: CmpPred,
        a: Opnd,
        b: Opnd,
    },
    Select {
        c: Opnd,
        t: Opnd,
        e: Opnd,
    },
    Alloca {
        words: Opnd,
    },
    Load {
        addr: Opnd,
    },
    Store {
        addr: Opnd,
        value: Opnd,
    },
    Gep {
        base: Opnd,
        index: Opnd,
        stride: i64,
    },
    /// Fused `gep+load` ([`passes::fuse`]): load the word at
    /// `base + index * stride`. Retires as **two** instructions (the gep
    /// and the load it replaces) so instruction counts and the simulated
    /// clock stay bit-identical to the reference engine.
    LoadIdx {
        base: Opnd,
        index: Opnd,
        stride: i64,
    },
    /// Fused `gep+store`: store `value` at `base + index * stride`.
    /// Retires as two instructions, like [`DOp::LoadIdx`].
    StoreIdx {
        base: Opnd,
        index: Opnd,
        stride: i64,
        value: Opnd,
    },
    /// Call to a function of the same module, pre-bound to its id.
    CallInternal {
        callee: FunctionId,
        args: Box<[Opnd]>,
    },
    /// A whole leaf call fused into the caller ([`passes::inline_leaf_calls`]):
    /// the callee is single-block, call-free, and alloca-free, its body's
    /// operands rewritten into the caller's frame (arguments substituted
    /// in place, locals renumbered into fresh caller slots). One dispatch
    /// replaces the entire frame push/pop; the call bookkeeping the
    /// reference engine performs (depth, path interning, executed/visited
    /// marks, probe cost, per-call profile entry, fuel boundaries) is
    /// replayed inline so every observable stays bit-identical.
    CallInlined {
        callee: FunctionId,
        /// The callee's entry (and only) block, for the visited mark.
        entry: BlockId,
        /// Callee body, operands already in caller register space.
        body: Box<[DInst]>,
        /// The callee's return operand, likewise rewritten.
        ret: Option<Opnd>,
    },
    /// One of the interpreter-resolved taint intrinsics.
    CallIntrinsic {
        which: Intrinsic,
        args: Box<[Opnd]>,
    },
    /// A `pt_*` work/host primitive: handled by the external handler, its
    /// cost charged inline to the calling function (no profile entry).
    /// `prim` indexes [`DecodedModule::host_prim_names`]; the interpreter
    /// resolves it to a handler dispatch token once per run, so the hot
    /// path never string-matches the name.
    CallHostPrim {
        name: Box<str>,
        prim: u32,
        args: Box<[Opnd]>,
    },
    /// A library routine (MPI): handled by the external handler, charged
    /// and profiled under its pre-bound pseudo [`FunctionId`].
    CallLibrary {
        name: Box<str>,
        ext_id: FunctionId,
        args: Box<[Opnd]>,
    },
    /// A statically known trap (e.g. float bitwise op); the message was
    /// rendered at decode time and matches the legacy engine's.
    Trap {
        message: Box<str>,
    },
}

/// One decoded instruction: destination register plus operation.
#[derive(Debug, Clone)]
pub struct DInst {
    pub dst: u32,
    pub op: DOp,
}

/// A decoded terminator with its branch metadata inlined.
#[derive(Debug, Clone)]
pub enum DTerm {
    Br(Edge),
    CondBr {
        cond: Opnd,
        then_edge: Edge,
        else_edge: Edge,
        /// Loops for which this block is an exiting block — their exit
        /// conditions are the taint sinks (§4.1).
        exiting: Box<[LoopId]>,
        /// Immediate postdominator: where a control-taint scope opened
        /// here closes (`None`: at function return).
        join: Option<BlockId>,
    },
    /// Fused `cmp+condbr` ([`passes::fuse`]): evaluate the comparison and
    /// branch on it in one dispatch. The comparison half retires as one
    /// instruction (count + clock), exactly where the standalone `cmp`
    /// did, so fuel exhaustion lands on the same instruction boundary as
    /// in the reference engine.
    CondBrCmp {
        pred: CmpPred,
        /// Float comparison (`CmpF`) vs integer (`CmpI`).
        float: bool,
        a: Opnd,
        b: Opnd,
        then_edge: Edge,
        else_edge: Edge,
        exiting: Box<[LoopId]>,
        join: Option<BlockId>,
    },
    Ret(Option<Opnd>),
    Unreachable,
}

/// A decoded basic block: the straight-line (non-phi) instructions and the
/// terminator. Phi nodes live on incoming [`Edge`]s as move lists.
#[derive(Debug, Clone)]
pub struct DecodedBlock {
    pub insts: Box<[DInst]>,
    pub term: DTerm,
}

/// One function's flat bytecode.
#[derive(Debug, Clone)]
pub struct DecodedFunction {
    /// Function name (runtime error messages).
    pub name: String,
    pub nparams: usize,
    /// Frame size in registers. Straight out of [`DecodedModule::decode`]
    /// this is `nparams` argument registers + one per instruction; after
    /// [`passes::allocate_registers`] it is the function's true register
    /// pressure (registers renumbered by live range, never larger).
    pub nregs: usize,
    /// Whether the function passed semantic SSA verification (definitions
    /// dominate uses, `pt_analysis::ssa_verify`). Register allocation and
    /// the interpreter's skip-the-frame-clear fast path are only sound
    /// under that property, so both are gated on it; a function that fails
    /// it keeps the naive one-register-per-instruction frame and gets a
    /// zeroed frame per call — exactly the reference engine's observable
    /// behavior for such malformed programs.
    pub ssa_clean: bool,
    pub entry: BlockId,
    pub blocks: Vec<DecodedBlock>,
}

/// The decoded program of a whole module.
#[derive(Debug)]
pub struct DecodedModule {
    pub functions: Vec<DecodedFunction>,
    /// External symbols called anywhere, in the deterministic
    /// [`Module::used_externals`] order. External `i` gets the pseudo
    /// [`FunctionId`] `module.functions.len() + i` — the convention shared
    /// with the legacy engine, `pt-measure`, and the profile consumers.
    pub extern_names: Vec<String>,
    /// Distinct `pt_*` host-primitive names, indexed by
    /// [`DOp::CallHostPrim::prim`] (sorted [`Module::used_externals`]
    /// order, so the table is a pure function of the module's external
    /// symbol set — decoding functions in any order, or one at a time,
    /// yields identical indices).
    pub host_prim_names: Vec<String>,
}

/// The module-level symbol environment one function's decode depends on:
/// the function-id space (internal calls embed raw ids), the external
/// symbol table (library calls embed pseudo ids `nfuncs + ext_index`),
/// and the host-primitive table. It is a pure function of the module's
/// function-name list and external-symbol set — *not* of any function
/// body — which is what lets a per-function artifact cache decode one
/// edited function against an otherwise unchanged environment.
pub struct DecodeEnv {
    pub nfuncs: usize,
    /// [`Module::used_externals`] order (sorted).
    pub extern_names: Vec<String>,
    /// `pt_*` non-intrinsic externals, in `extern_names` (sorted) order.
    pub host_prim_names: Vec<String>,
    ext_index: HashMap<String, u32>,
    prim_index: HashMap<String, u32>,
}

impl DecodeEnv {
    pub fn of(module: &Module) -> DecodeEnv {
        let extern_names: Vec<String> = module
            .used_externals()
            .into_iter()
            .map(String::from)
            .collect();
        let ext_index: HashMap<String, u32> = extern_names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i as u32))
            .collect();
        let host_prim_names: Vec<String> = extern_names
            .iter()
            .filter(|n| n.starts_with("pt_") && Intrinsic::by_name(n).is_none())
            .cloned()
            .collect();
        let prim_index: HashMap<String, u32> = host_prim_names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i as u32))
            .collect();
        DecodeEnv {
            nfuncs: module.functions.len(),
            extern_names,
            host_prim_names,
            ext_index,
            prim_index,
        }
    }
}

impl DecodedModule {
    /// Decode every function of `module` against its precomputed facts
    /// (`prepared[i]` must correspond to `module.functions[i]`).
    pub fn decode(module: &Module, prepared: &[PreparedFunction]) -> DecodedModule {
        let env = DecodeEnv::of(module);
        let functions = module
            .functions
            .iter()
            .zip(prepared)
            .map(|(f, p)| decode_function(f, p, &env))
            .collect();
        DecodedModule {
            functions,
            extern_names: env.extern_names,
            host_prim_names: env.host_prim_names,
        }
    }

    #[inline]
    pub fn func(&self, id: FunctionId) -> &DecodedFunction {
        &self.functions[id.index()]
    }
}

fn const_bits(c: Const) -> u64 {
    match c {
        Const::Int(i) => i as u64,
        Const::Float(f) => f.to_bits(),
        Const::Bool(b) => b as u64,
    }
}

/// Decode one function against the module symbol environment. This is the
/// per-function entry point the incremental static stage uses; the
/// whole-module [`DecodedModule::decode`] is a loop over it.
pub fn decode_function(
    func: &Function,
    prep: &PreparedFunction,
    env: &DecodeEnv,
) -> DecodedFunction {
    let nparams = func.params.len();
    let opnd = |v: Value| -> Opnd {
        match v {
            Value::Const(c) => Opnd::Imm(const_bits(c)),
            Value::Param(p) => Opnd::Reg(p.index() as u32),
            Value::Inst(i) => Opnd::Reg((nparams + i.index()) as u32),
        }
    };

    // Length of the phi prefix of a block (the only place phis may appear;
    // the verifier and the legacy engine share this contract).
    let phi_prefix = |b: BlockId| -> usize {
        func.block(b)
            .insts
            .iter()
            .take_while(|&&iid| matches!(func.inst(iid).kind, InstKind::Phi { .. }))
            .count()
    };

    let make_edge = |from: BlockId, to: BlockId| -> Edge {
        let mut moves = Vec::new();
        for &iid in &func.block(to).insts[..phi_prefix(to)] {
            let InstKind::Phi { incomings, .. } = &func.inst(iid).kind else {
                unreachable!("phi prefix contains only phis");
            };
            let (_, v) = incomings
                .iter()
                .find(|(b, _)| *b == from)
                .unwrap_or_else(|| panic!("phi %{} missing incoming for {from}", iid.0));
            moves.push(PhiMove {
                dst: (nparams + iid.index()) as u32,
                src: opnd(*v),
            });
        }
        let back_edge = prep.back_edges.get(&(from, to)).copied();
        let enters = if back_edge.is_some() {
            None
        } else {
            // Entering a loop header not via a back edge from inside the
            // loop is a fresh entry.
            prep.header_of[to.index()].filter(|&lid| !prep.forest.get(lid).contains(from))
        };
        Edge {
            target: to,
            moves: moves.into_boxed_slice(),
            back_edge,
            enters,
        }
    };

    let mut blocks = Vec::with_capacity(func.blocks.len());
    for bid in func.block_ids() {
        let blk = func.block(bid);
        let prefix = phi_prefix(bid);
        let insts: Vec<DInst> = blk.insts[prefix..]
            .iter()
            .map(|&iid| {
                assert!(
                    !matches!(func.inst(iid).kind, InstKind::Phi { .. }),
                    "phi %{} not in the phi prefix of {bid} in {}",
                    iid.0,
                    func.name
                );
                DInst {
                    dst: (nparams + iid.index()) as u32,
                    op: decode_op(func, prep, iid, &opnd, env),
                }
            })
            .collect();
        let term = match blk.term.as_ref().expect("verified IR") {
            Terminator::Br(t) => DTerm::Br(make_edge(bid, *t)),
            Terminator::CondBr {
                cond,
                then_bb,
                else_bb,
            } => DTerm::CondBr {
                cond: opnd(*cond),
                then_edge: make_edge(bid, *then_bb),
                else_edge: make_edge(bid, *else_bb),
                exiting: prep.exiting_loops[bid.index()].clone().into_boxed_slice(),
                join: prep.ipostdom[bid.index()],
            },
            Terminator::Ret(v) => DTerm::Ret(v.as_ref().map(|&val| opnd(val))),
            Terminator::Unreachable => DTerm::Unreachable,
        };
        blocks.push(DecodedBlock {
            insts: insts.into_boxed_slice(),
            term,
        });
    }

    DecodedFunction {
        name: func.name.clone(),
        nparams,
        nregs: nparams + func.insts.len(),
        // Conservative until the pass pipeline proves dominance.
        ssa_clean: false,
        entry: func.entry,
        blocks,
    }
}

fn decode_op(
    func: &Function,
    prep: &PreparedFunction,
    iid: pt_ir::InstId,
    opnd: &impl Fn(Value) -> Opnd,
    env: &DecodeEnv,
) -> DOp {
    let is_float = prep.operand_float[iid.index()];
    match &func.inst(iid).kind {
        InstKind::Bin { op, lhs, rhs } => {
            let (a, b) = (opnd(*lhs), opnd(*rhs));
            if is_float {
                match op {
                    BinOp::Add
                    | BinOp::Sub
                    | BinOp::Mul
                    | BinOp::Div
                    | BinOp::Rem
                    | BinOp::Min
                    | BinOp::Max => DOp::BinF { op: *op, a, b },
                    // Same message the legacy engine renders at run time.
                    _ => DOp::Trap {
                        message: format!("float {op:?} unsupported in {}", func.name).into(),
                    },
                }
            } else {
                DOp::BinI { op: *op, a, b }
            }
        }
        InstKind::Un { op, operand } => {
            let a = opnd(*operand);
            match op {
                UnOp::Neg => {
                    if is_float {
                        DOp::NegF { a }
                    } else {
                        DOp::NegI { a }
                    }
                }
                UnOp::Not => {
                    if prep.result_tys[iid.index()] == Type::Bool {
                        DOp::NotBool { a }
                    } else {
                        DOp::NotInt { a }
                    }
                }
                UnOp::IntToFloat => DOp::IntToFloat { a },
                UnOp::FloatToInt => DOp::FloatToInt { a },
                UnOp::Sqrt => DOp::Sqrt { a },
                UnOp::Abs => {
                    if is_float {
                        DOp::AbsF { a }
                    } else {
                        DOp::AbsI { a }
                    }
                }
            }
        }
        InstKind::Cmp { pred, lhs, rhs } => {
            let (a, b) = (opnd(*lhs), opnd(*rhs));
            if is_float {
                DOp::CmpF { pred: *pred, a, b }
            } else {
                DOp::CmpI { pred: *pred, a, b }
            }
        }
        InstKind::Select {
            cond,
            then_v,
            else_v,
        } => DOp::Select {
            c: opnd(*cond),
            t: opnd(*then_v),
            e: opnd(*else_v),
        },
        InstKind::Alloca { words } => DOp::Alloca {
            words: opnd(*words),
        },
        InstKind::Load { addr, .. } => DOp::Load { addr: opnd(*addr) },
        InstKind::Store { addr, value } => DOp::Store {
            addr: opnd(*addr),
            value: opnd(*value),
        },
        InstKind::Gep {
            base,
            index,
            stride,
        } => DOp::Gep {
            base: opnd(*base),
            index: opnd(*index),
            stride: *stride as i64,
        },
        InstKind::Call { callee, args, .. } => {
            let args: Box<[Opnd]> = args.iter().map(|a| opnd(*a)).collect();
            match callee {
                Callee::Internal(fid) => DOp::CallInternal { callee: *fid, args },
                Callee::External(name) => {
                    if let Some(which) = Intrinsic::by_name(name) {
                        DOp::CallIntrinsic { which, args }
                    } else if name.starts_with("pt_") {
                        DOp::CallHostPrim {
                            name: name.as_str().into(),
                            prim: env.prim_index[name.as_str()],
                            args,
                        }
                    } else {
                        let idx = env.ext_index[name.as_str()];
                        DOp::CallLibrary {
                            name: name.as_str().into(),
                            ext_id: FunctionId((env.nfuncs + idx as usize) as u32),
                            args,
                        }
                    }
                }
            }
        }
        InstKind::Phi { .. } => unreachable!("phis decode into edge move lists"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prepared::PreparedModule;
    use pt_ir::FunctionBuilder;

    #[test]
    fn loop_function_decodes_with_edge_metadata() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![("n".into(), Type::I64)], Type::Void);
        b.for_loop(0i64, b.param(0), 1i64, |b, _| {
            b.call_external("pt_work_flops", vec![Value::int(1)], Type::Void);
        });
        b.ret(None);
        m.add_function(b.finish());
        let p = PreparedModule::compute(&m);
        let d = p.decoded.func(FunctionId(0));
        assert_eq!(d.nparams, 1);
        // Register allocation may only shrink the frame below the naive
        // one-register-per-instruction layout.
        assert!(d.nregs <= 1 + m.function(FunctionId(0)).insts.len());

        // Exactly one back edge and one fresh-entry edge somewhere.
        let mut back = 0;
        let mut enters = 0;
        let mut moves = 0;
        for blk in &d.blocks {
            let mut visit = |e: &Edge| {
                back += e.back_edge.is_some() as usize;
                enters += e.enters.is_some() as usize;
                moves += e.moves.len();
            };
            match &blk.term {
                DTerm::Br(e) => visit(e),
                DTerm::CondBr {
                    then_edge,
                    else_edge,
                    ..
                }
                | DTerm::CondBrCmp {
                    then_edge,
                    else_edge,
                    ..
                } => {
                    visit(then_edge);
                    visit(else_edge);
                }
                _ => {}
            }
        }
        assert_eq!(back, 1, "one latch back edge");
        assert_eq!(enters, 1, "one fresh loop entry");
        assert!(moves >= 2, "iv phi has a move on entry and latch edges");
    }

    #[test]
    fn calls_are_prebound() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("leaf", vec![], Type::Void);
        b.ret(None);
        let leaf = m.add_function(b.finish());
        let mut b = FunctionBuilder::new("main", vec![], Type::Void);
        b.call(leaf, vec![], Type::Void);
        b.call_external("pt_param_i64", vec![Value::int(0)], Type::I64);
        b.call_external("pt_work_flops", vec![Value::int(1)], Type::Void);
        b.call_external("MPI_Barrier", vec![], Type::Void);
        b.ret(None);
        let main = m.add_function(b.finish());
        let p = PreparedModule::compute(&m);
        let d = p.decoded.func(main);
        let ops: Vec<&DOp> = d.blocks[0].insts.iter().map(|i| &i.op).collect();
        // The empty leaf qualifies for whole-call inlining; the binding
        // to its id survives in the fused superinstruction.
        assert!(matches!(ops[0], DOp::CallInlined { callee, .. } if *callee == leaf));
        assert!(matches!(
            ops[1],
            DOp::CallIntrinsic {
                which: Intrinsic::ParamI64,
                ..
            }
        ));
        assert!(matches!(ops[2], DOp::CallHostPrim { name, .. } if &**name == "pt_work_flops"));
        // MPI_Barrier sorts first in used_externals (BTreeSet order), so its
        // pseudo id is functions.len() + 0.
        assert!(matches!(
            ops[3],
            DOp::CallLibrary { ext_id, .. } if ext_id.index() == m.functions.len()
        ));
    }

    #[test]
    fn float_bitwise_decodes_to_trap() {
        let mut b = FunctionBuilder::new("f", vec![("x".into(), Type::F64)], Type::F64);
        let v = b.bin(BinOp::And, b.param(0), b.param(0));
        b.ret(Some(v));
        let f = b.finish();
        let prep = PreparedFunction::compute(&f);
        let d = decode_function(&f, &prep, &DecodeEnv::of(&Module::new("empty")));
        assert!(
            matches!(&d.blocks[0].insts[0].op, DOp::Trap { message } if message.contains("float"))
        );
    }
}
