//! Call-path profiles of simulated execution time.
//!
//! The interpreter accumulates simulated seconds per calling context —
//! inclusive and exclusive time plus call counts — exactly the data Score-P
//! hands to Extra-P in the paper's pipeline. Probe (instrumentation)
//! overhead is included in these numbers when a function is instrumented,
//! which is what makes the intrusion experiment (§B2) reproducible.

use crate::path::{CallPathTable, PathId};
use pt_ir::FunctionId;
use std::collections::HashMap;

/// Aggregated timing for one calling context.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfileEntry {
    pub func: FunctionId,
    pub calls: u64,
    /// Inclusive simulated seconds (self + callees).
    pub inclusive: f64,
    /// Exclusive simulated seconds (self only).
    pub exclusive: f64,
}

impl ProfileEntry {
    fn empty(func: FunctionId) -> ProfileEntry {
        ProfileEntry {
            func,
            calls: 0,
            inclusive: 0.0,
            exclusive: 0.0,
        }
    }
}

/// A per-call-path profile.
#[derive(Debug, Default)]
pub struct Profile {
    pub entries: HashMap<PathId, ProfileEntry>,
}

impl Profile {
    pub fn new() -> Profile {
        Profile::default()
    }

    pub fn record_call(&mut self, path: PathId, func: FunctionId, inclusive: f64, exclusive: f64) {
        let e = self
            .entries
            .entry(path)
            .or_insert_with(|| ProfileEntry::empty(func));
        e.calls += 1;
        e.inclusive += inclusive;
        e.exclusive += exclusive;
    }

    /// Aggregate per function name (merging calling contexts).
    pub fn by_function(&self) -> HashMap<FunctionId, ProfileEntry> {
        let mut out: HashMap<FunctionId, ProfileEntry> = HashMap::new();
        for e in self.entries.values() {
            let agg = out
                .entry(e.func)
                .or_insert_with(|| ProfileEntry::empty(e.func));
            agg.calls += e.calls;
            agg.inclusive += e.inclusive;
            agg.exclusive += e.exclusive;
        }
        out
    }

    /// Total exclusive time across all contexts — equals the wall time of
    /// the run (exclusive times partition the execution).
    pub fn total_exclusive(&self) -> f64 {
        self.entries.values().map(|e| e.exclusive).sum()
    }

    /// Render a sorted top-N table (diagnostics).
    pub fn top_by_exclusive(
        &self,
        n: usize,
        paths: &CallPathTable,
        name: &impl Fn(FunctionId) -> String,
    ) -> String {
        let mut rows: Vec<(&PathId, &ProfileEntry)> = self.entries.iter().collect();
        rows.sort_by(|a, b| b.1.exclusive.total_cmp(&a.1.exclusive));
        let mut out = String::new();
        for (path, e) in rows.into_iter().take(n) {
            out.push_str(&format!(
                "{:>12.6}s excl {:>12.6}s incl {:>10} calls  {}\n",
                e.exclusive,
                e.inclusive,
                e.calls,
                paths.render(*path, name)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_aggregate() {
        let mut paths = CallPathTable::new();
        let main = paths.intern(None, FunctionId(0));
        let k_via_main = paths.intern(Some(main), FunctionId(1));
        let mut p = Profile::new();
        p.record_call(main, FunctionId(0), 10.0, 2.0);
        p.record_call(k_via_main, FunctionId(1), 8.0, 8.0);
        p.record_call(k_via_main, FunctionId(1), 4.0, 4.0);

        let by_fn = p.by_function();
        assert_eq!(by_fn[&FunctionId(1)].calls, 2);
        assert!((by_fn[&FunctionId(1)].inclusive - 12.0).abs() < 1e-12);
        assert!((by_fn[&FunctionId(0)].exclusive - 2.0).abs() < 1e-12);
        assert!((p.total_exclusive() - 14.0).abs() < 1e-12);
    }

    #[test]
    fn top_table_renders() {
        let mut paths = CallPathTable::new();
        let main = paths.intern(None, FunctionId(0));
        let mut p = Profile::new();
        p.record_call(main, FunctionId(0), 1.0, 1.0);
        let name = |_: FunctionId| "main".to_string();
        let t = p.top_by_exclusive(5, &paths, &name);
        assert!(t.contains("main"));
        assert!(t.contains("1 calls"));
    }
}
