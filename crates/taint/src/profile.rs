//! Call-path profiles of simulated execution time.
//!
//! The interpreter accumulates simulated seconds per calling context —
//! inclusive and exclusive time plus call counts — exactly the data Score-P
//! hands to Extra-P in the paper's pipeline. Probe (instrumentation)
//! overhead is included in these numbers when a function is instrumented,
//! which is what makes the intrusion experiment (§B2) reproducible.
//!
//! [`PathId`]s are interned densely, so the profile stores entries in a
//! flat per-path vector: [`Profile::record_call`] — executed once per
//! function call in the interpreter hot path — is a direct index, not a
//! hash lookup.

use crate::path::{CallPathTable, PathId};
use pt_ir::FunctionId;
use std::collections::HashMap;

/// Aggregated timing for one calling context.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfileEntry {
    pub func: FunctionId,
    pub calls: u64,
    /// Inclusive simulated seconds (self + callees).
    pub inclusive: f64,
    /// Exclusive simulated seconds (self only).
    pub exclusive: f64,
}

impl ProfileEntry {
    fn empty(func: FunctionId) -> ProfileEntry {
        ProfileEntry {
            func,
            calls: 0,
            inclusive: 0.0,
            exclusive: 0.0,
        }
    }
}

/// A per-call-path profile, indexed densely by [`PathId`].
#[derive(Debug, Default)]
pub struct Profile {
    /// One slot per interned path; `None` until the first recorded call.
    slots: Vec<Option<ProfileEntry>>,
    recorded: usize,
}

impl Profile {
    pub fn new() -> Profile {
        Profile::default()
    }

    #[inline]
    pub fn record_call(&mut self, path: PathId, func: FunctionId, inclusive: f64, exclusive: f64) {
        let idx = path.index();
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, None);
        }
        let e = self.slots[idx].get_or_insert_with(|| {
            self.recorded += 1;
            ProfileEntry::empty(func)
        });
        e.calls += 1;
        e.inclusive += inclusive;
        e.exclusive += exclusive;
    }

    /// The entry for `path`, if any call was recorded under it.
    pub fn entry(&self, path: PathId) -> Option<&ProfileEntry> {
        self.slots.get(path.index()).and_then(|s| s.as_ref())
    }

    /// Number of calling contexts with recorded calls.
    pub fn len(&self) -> usize {
        self.recorded
    }

    pub fn is_empty(&self) -> bool {
        self.recorded == 0
    }

    /// Iterate recorded `(path, entry)` pairs in path-id order.
    pub fn iter(&self) -> impl Iterator<Item = (PathId, &ProfileEntry)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|e| (PathId(i as u32), e)))
    }

    /// Iterate recorded entries in path-id order.
    pub fn entries(&self) -> impl Iterator<Item = &ProfileEntry> {
        self.iter().map(|(_, e)| e)
    }

    /// Aggregate per function name (merging calling contexts).
    pub fn by_function(&self) -> HashMap<FunctionId, ProfileEntry> {
        let mut out: HashMap<FunctionId, ProfileEntry> = HashMap::new();
        for e in self.entries() {
            let agg = out
                .entry(e.func)
                .or_insert_with(|| ProfileEntry::empty(e.func));
            agg.calls += e.calls;
            agg.inclusive += e.inclusive;
            agg.exclusive += e.exclusive;
        }
        out
    }

    /// Total exclusive time across all contexts — equals the wall time of
    /// the run (exclusive times partition the execution).
    pub fn total_exclusive(&self) -> f64 {
        self.entries().map(|e| e.exclusive).sum()
    }

    /// Render a sorted top-N table (diagnostics).
    pub fn top_by_exclusive(
        &self,
        n: usize,
        paths: &CallPathTable,
        name: &impl Fn(FunctionId) -> String,
    ) -> String {
        let mut rows: Vec<(PathId, &ProfileEntry)> = self.iter().collect();
        rows.sort_by(|a, b| b.1.exclusive.total_cmp(&a.1.exclusive));
        let mut out = String::new();
        for (path, e) in rows.into_iter().take(n) {
            out.push_str(&format!(
                "{:>12.6}s excl {:>12.6}s incl {:>10} calls  {}\n",
                e.exclusive,
                e.inclusive,
                e.calls,
                paths.render(path, name)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_aggregate() {
        let mut paths = CallPathTable::new();
        let main = paths.intern(None, FunctionId(0));
        let k_via_main = paths.intern(Some(main), FunctionId(1));
        let mut p = Profile::new();
        p.record_call(main, FunctionId(0), 10.0, 2.0);
        p.record_call(k_via_main, FunctionId(1), 8.0, 8.0);
        p.record_call(k_via_main, FunctionId(1), 4.0, 4.0);

        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.entry(k_via_main).unwrap().calls, 2);
        assert!(p.entry(PathId(99)).is_none());
        let by_fn = p.by_function();
        assert_eq!(by_fn[&FunctionId(1)].calls, 2);
        assert!((by_fn[&FunctionId(1)].inclusive - 12.0).abs() < 1e-12);
        assert!((by_fn[&FunctionId(0)].exclusive - 2.0).abs() < 1e-12);
        assert!((p.total_exclusive() - 14.0).abs() < 1e-12);
    }

    #[test]
    fn top_table_renders() {
        let mut paths = CallPathTable::new();
        let main = paths.intern(None, FunctionId(0));
        let mut p = Profile::new();
        p.record_call(main, FunctionId(0), 1.0, 1.0);
        let name = |_: FunctionId| "main".to_string();
        let t = p.top_by_exclusive(5, &paths, &name);
        assert!(t.contains("main"));
        assert!(t.contains("1 calls"));
    }
}
