//! Per-function static-stage units and their assembly into a
//! [`PreparedModule`].
//!
//! [`PreparedModule::compute`] runs the whole static stage — loop facts,
//! decode, and the pass pipeline — module-at-a-time. That pipeline in fact
//! decomposes per function:
//!
//! * [`PreparedFunction::compute`] is purely function-local;
//! * decoding needs only the module *symbol environment*
//!   ([`DecodeEnv`]: function-name table, external table, prim table),
//!   never another function's body;
//! * of the passes, fusion is function-local, register allocation is
//!   function-local, and leaf-call inlining needs exactly the direct
//!   callees' [`InlineSpec`]s — captured post-fuse, pre-regalloc, and
//!   `None` for any function whose body contains calls (so members of a
//!   call-graph cycle never have one).
//!
//! [`compute_unit`] packages that per-function slice of the stage; running
//! it bottom-up over the call graph (callees before callers, so specs are
//! available) and [`assemble`]-ing the units reproduces
//! [`PreparedModule::compute`] *bit-identically* — pass-stat totals
//! included. That equivalence (asserted by the differential test below) is
//! what lets `perf_taint`'s incremental static stage swap cached units in
//! for recomputation.

use crate::decode::passes::{
    allocate_registers, fold_constants, fuse, inline_calls_in, inline_spec_of, InlineSpec,
    PassStats,
};
use crate::decode::{decode_function, DecodeEnv, DecodedFunction, DecodedModule};
use crate::prepared::{PreparedFunction, PreparedModule};
use pt_ir::{FunctionId, Module};

/// Everything the static stage produces for one function: the prepared
/// facts, the fully optimized bytecode, the inline spec callers need, and
/// the per-function slice of the pass statistics.
#[derive(Debug, Clone)]
pub struct FunctionUnit {
    pub prepared: PreparedFunction,
    /// Decoded, fused, (callee-)inlined, register-allocated bytecode.
    pub decoded: DecodedFunction,
    /// This function's own spec, for *its* callers — captured after fusion
    /// and before register allocation, exactly when the module-wide
    /// pipeline captures it.
    pub inline_spec: Option<InlineSpec>,
    pub ssa_clean: bool,
    /// Per-function pass statistics; field-wise sums over a module's units
    /// equal the module-wide [`PassStats`].
    pub stats: PassStats,
}

/// Run the static stage for one function. `specs[i]` must hold function
/// `i`'s [`InlineSpec`] for every already-processed callee (bottom-up
/// order guarantees all out-of-SCC callees; in-SCC callees may be `None`
/// — they are never eligible anyway, their bodies contain calls).
pub fn compute_unit(
    module: &Module,
    fid: FunctionId,
    env: &DecodeEnv,
    specs: &[Option<&InlineSpec>],
) -> FunctionUnit {
    let func = module.function(fid);
    let prepared = PreparedFunction::compute(func);
    let ssa_clean = pt_analysis::ssa_verify::verify_ssa(func).is_ok();
    let mut decoded = decode_function(func, &prepared, env);

    let mut stats = PassStats {
        regs_before: decoded.nregs,
        ..PassStats::default()
    };
    // The per-function slice of the pass pipeline: same "passes" label as
    // the module-wide `passes::optimize`, so trace consumers see the pass
    // stage under either static-stage path.
    let _passes_span = pt_util::trace::span("taint", "passes");
    let (folded, reduced) = fold_constants(&mut decoded);
    stats.folded = folded;
    stats.reduced_geps = reduced;
    let (cb, ld, st) = fuse(&mut decoded);
    stats.fused_cmp_br = cb;
    stats.fused_loads = ld;
    stats.fused_stores = st;
    let inline_spec = inline_spec_of(&decoded, ssa_clean);
    stats.inlined_calls = inline_calls_in(&mut decoded, specs);
    if ssa_clean {
        allocate_registers(&mut decoded);
        decoded.ssa_clean = true;
    }
    stats.regs_after = decoded.nregs;

    FunctionUnit {
        prepared,
        decoded,
        inline_spec,
        ssa_clean,
        stats,
    }
}

/// Compute every function's unit bottom-up over the call graph (no
/// caching — the plain driver used by tests and by callers that want the
/// per-function split without a cache). Units are returned in function-id
/// order.
pub fn compute_units(module: &Module) -> Vec<FunctionUnit> {
    let env = DecodeEnv::of(module);
    let cg = pt_analysis::CallGraph::build(module);
    let n = module.functions.len();
    let mut units: Vec<Option<FunctionUnit>> = (0..n).map(|_| None).collect();
    for fid in cg.bottom_up_order() {
        let specs: Vec<Option<&InlineSpec>> = units
            .iter()
            .map(|u| u.as_ref().and_then(|u| u.inline_spec.as_ref()))
            .collect();
        let unit = compute_unit(module, fid, &env, &specs);
        units[fid.index()] = Some(unit);
    }
    units.into_iter().map(|u| u.unwrap()).collect()
}

/// Assemble a [`PreparedModule`] from per-function units (in function-id
/// order). `decode_seconds` is the wall time the caller spent producing
/// the units (cache hits included) — it feeds throughput reporting only,
/// never a deterministic summary.
pub fn assemble(env: &DecodeEnv, units: &[&FunctionUnit], decode_seconds: f64) -> PreparedModule {
    let mut pass_stats = PassStats::default();
    for u in units {
        pass_stats.folded += u.stats.folded;
        pass_stats.reduced_geps += u.stats.reduced_geps;
        pass_stats.fused_cmp_br += u.stats.fused_cmp_br;
        pass_stats.fused_loads += u.stats.fused_loads;
        pass_stats.fused_stores += u.stats.fused_stores;
        pass_stats.inlined_calls += u.stats.inlined_calls;
        pass_stats.regs_before += u.stats.regs_before;
        pass_stats.regs_after += u.stats.regs_after;
    }
    PreparedModule {
        functions: units.iter().map(|u| u.prepared.clone()).collect(),
        decoded: DecodedModule {
            functions: units.iter().map(|u| u.decoded.clone()).collect(),
            extern_names: env.extern_names.clone(),
            host_prim_names: env.host_prim_names.clone(),
        },
        pass_stats,
        decode_seconds,
        // Units interleave decode and passes per function; the pass-only
        // wall split is not tracked on this path.
        pass_seconds: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_ir::{FunctionBuilder, Type, Value};

    /// A module exercising every interprocedural coupling the unit split
    /// must preserve: leaf inlining, host prims, library externals,
    /// intrinsics, mutual recursion, and forward calls.
    fn gnarly_module() -> Module {
        let mut m = Module::new("gnarly");
        // leaf: inlinable (single block, call-free).
        let mut b = FunctionBuilder::new("leaf", vec![("x".into(), Type::I64)], Type::I64);
        let v = b.add(b.param(0), 3i64);
        b.ret(Some(v));
        let leaf = m.add_function(b.finish());
        // kernel: parametric loop charging work, calls the leaf.
        let mut b = FunctionBuilder::new("kernel", vec![("n".into(), Type::I64)], Type::Void);
        b.for_loop(0i64, b.param(0), 1i64, |b, iv| {
            b.call_external("pt_work_flops", vec![Value::int(2)], Type::Void);
            b.call(leaf, vec![iv], Type::I64);
        });
        b.ret(None);
        let kernel = m.add_function(b.finish());
        // ping <-> pong mutual recursion (forward reference to pong).
        let pong_id = FunctionId(3);
        let mut b = FunctionBuilder::new("ping", vec![("n".into(), Type::I64)], Type::Void);
        b.call(pong_id, vec![b.param(0)], Type::Void);
        b.ret(None);
        let ping = m.add_function(b.finish());
        let mut b = FunctionBuilder::new("pong", vec![("n".into(), Type::I64)], Type::Void);
        b.call(ping, vec![b.param(0)], Type::Void);
        b.ret(None);
        m.add_function(b.finish());
        // main: MPI + intrinsic + calls into everything.
        let mut b = FunctionBuilder::new("main", vec![], Type::Void);
        let n = b.call_external("pt_param_i64", vec![Value::int(0)], Type::I64);
        b.call(kernel, vec![n], Type::Void);
        b.call(ping, vec![n], Type::Void);
        b.call_external("MPI_Barrier", vec![], Type::Void);
        b.call_external("pt_work_mem", vec![Value::int(1)], Type::Void);
        b.ret(None);
        m.add_function(b.finish());
        m
    }

    #[test]
    fn unit_assembly_matches_whole_module_compute() {
        let m = gnarly_module();
        let cold = PreparedModule::compute(&m);

        let env = DecodeEnv::of(&m);
        let units = compute_units(&m);
        let refs: Vec<&FunctionUnit> = units.iter().collect();
        let warm = assemble(&env, &refs, 0.0);

        assert_eq!(warm.pass_stats, cold.pass_stats, "pass-stat totals");
        assert_eq!(
            warm.decoded.extern_names, cold.decoded.extern_names,
            "external table"
        );
        assert_eq!(
            warm.decoded.host_prim_names, cold.decoded.host_prim_names,
            "host prim table"
        );
        assert_eq!(
            format!("{:?}", warm.decoded.functions),
            format!("{:?}", cold.decoded.functions),
            "decoded bytecode must be bit-identical"
        );
        assert_eq!(warm.functions.len(), cold.functions.len());
        for (w, c) in warm.functions.iter().zip(&cold.functions) {
            assert_eq!(format!("{w:?}"), format!("{c:?}"), "prepared facts");
        }
    }

    #[test]
    fn per_function_stats_sum_to_module_stats() {
        let m = gnarly_module();
        let cold = PreparedModule::compute(&m);
        let units = compute_units(&m);
        let sum = |f: fn(&PassStats) -> usize| units.iter().map(|u| f(&u.stats)).sum::<usize>();
        assert_eq!(sum(|s| s.inlined_calls), cold.pass_stats.inlined_calls);
        assert_eq!(sum(|s| s.regs_after), cold.pass_stats.regs_after);
        assert!(cold.pass_stats.inlined_calls >= 1, "leaf call inlines");
    }
}
