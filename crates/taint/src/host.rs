//! External-call handling.
//!
//! The IR calls external symbols for everything the "machine" provides: MPI
//! routines, work-charging primitives, I/O. The interpreter resolves a small
//! set of taint intrinsics itself (parameter sources and test assertions);
//! everything else is dispatched to an [`ExternalHandler`] — `pt-mpisim`
//! provides the production handler with the MPI library database of §5.3.

use crate::label::LabelTable;
use crate::memory::{Memory, TVal};

/// Mutable interpreter state an external handler may touch: memory (e.g.
/// `MPI_Comm_size` writes the communicator size through a pointer) and the
/// label table (library-database taint sources attach implicit-parameter
/// labels, §5.3).
pub struct HostCtx<'a> {
    pub mem: &'a mut Memory,
    pub labels: &'a mut LabelTable,
    /// Marked run parameters: `(name, value)` in registration order.
    pub params: &'a [(String, i64)],
    /// Whether taint propagation is enabled for this run.
    pub taint: bool,
}

/// Outcome of an external call: the returned value and the simulated cost
/// in seconds charged to the calling context.
pub type ExternResult = Result<(TVal, f64), String>;

/// Resolver for external symbols.
///
/// Handlers that dispatch on the symbol name per call should also
/// implement [`ExternalHandler::resolve`] / [`ExternalHandler::call_token`]:
/// the decode-once engine resolves every external symbol **once per run**
/// and then calls through the dense token, skipping the per-call string
/// match entirely (the reference engine keeps calling [`ExternalHandler::call`]
/// by name, which pins the two dispatch paths against each other in the
/// differential suites).
pub trait ExternalHandler {
    fn call(&mut self, name: &str, args: &[TVal], ctx: &mut HostCtx<'_>) -> ExternResult;

    /// Pre-resolve `name` to a dense dispatch token. `None` (the default)
    /// means the engine falls back to by-name [`ExternalHandler::call`]
    /// for that symbol.
    fn resolve(&self, _name: &str) -> Option<u32> {
        None
    }

    /// Call a primitive previously resolved by [`ExternalHandler::resolve`].
    /// Must be observably identical to `call` with the resolving name.
    fn call_token(&mut self, _token: u32, _args: &[TVal], _ctx: &mut HostCtx<'_>) -> ExternResult {
        unreachable!("call_token requires resolve() to have returned Some")
    }
}

/// A handler that rejects every call — for pure compute tests.
pub struct NullHandler;

impl ExternalHandler for NullHandler {
    fn call(&mut self, name: &str, _args: &[TVal], _ctx: &mut HostCtx<'_>) -> ExternResult {
        Err(format!("unresolved external symbol {name}"))
    }
}

/// A minimal handler for tests and examples without MPI: charges time for
/// `pt_work_flops` / `pt_work_mem` and swallows `pt_print_i64`.
pub struct WorkOnlyHandler {
    /// Seconds per flop charged by `pt_work_flops`.
    pub flop_cost: f64,
    /// Seconds per word charged by `pt_work_mem`.
    pub mem_cost: f64,
    /// Values printed via `pt_print_i64` (inspectable by tests).
    pub printed: Vec<i64>,
}

impl Default for WorkOnlyHandler {
    fn default() -> Self {
        WorkOnlyHandler {
            flop_cost: 1e-9,
            mem_cost: 4e-9,
            printed: Vec::new(),
        }
    }
}

/// Token values for [`WorkOnlyHandler`]'s primitives.
const WO_FLOPS: u32 = 0;
const WO_MEM: u32 = 1;
const WO_PRINT: u32 = 2;

impl ExternalHandler for WorkOnlyHandler {
    fn call(&mut self, name: &str, args: &[TVal], ctx: &mut HostCtx<'_>) -> ExternResult {
        match self.resolve(name) {
            Some(token) => self.call_token(token, args, ctx),
            None => Err(format!("WorkOnlyHandler: unknown external {name}")),
        }
    }

    fn resolve(&self, name: &str) -> Option<u32> {
        Some(match name {
            "pt_work_flops" => WO_FLOPS,
            "pt_work_mem" => WO_MEM,
            "pt_print_i64" => WO_PRINT,
            _ => return None,
        })
    }

    fn call_token(&mut self, token: u32, args: &[TVal], _ctx: &mut HostCtx<'_>) -> ExternResult {
        match token {
            WO_FLOPS => {
                let n = args.first().map(|a| a.as_i64().max(0)).unwrap_or(0) as f64;
                Ok((TVal::UNTAINTED_ZERO, n * self.flop_cost))
            }
            WO_MEM => {
                let n = args.first().map(|a| a.as_i64().max(0)).unwrap_or(0) as f64;
                Ok((TVal::UNTAINTED_ZERO, n * self.mem_cost))
            }
            WO_PRINT => {
                if let Some(a) = args.first() {
                    self.printed.push(a.as_i64());
                }
                Ok((TVal::UNTAINTED_ZERO, 0.0))
            }
            _ => unreachable!("token not produced by resolve()"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_handler_charges_time() {
        let mut h = WorkOnlyHandler::default();
        let mut mem = Memory::new();
        let mut labels = LabelTable::new();
        let params = vec![];
        let mut ctx = HostCtx {
            mem: &mut mem,
            labels: &mut labels,
            params: &params,
            taint: true,
        };
        let (_, cost) = h
            .call("pt_work_flops", &[TVal::from_i64(1000)], &mut ctx)
            .unwrap();
        assert!((cost - 1000.0 * h.flop_cost).abs() < 1e-15);
        let (_, c2) = h
            .call("pt_work_mem", &[TVal::from_i64(10)], &mut ctx)
            .unwrap();
        assert!((c2 - 10.0 * h.mem_cost).abs() < 1e-15);
        h.call("pt_print_i64", &[TVal::from_i64(7)], &mut ctx)
            .unwrap();
        assert_eq!(h.printed, vec![7]);
        assert!(h.call("MPI_Barrier", &[], &mut ctx).is_err());
    }

    #[test]
    fn null_handler_rejects() {
        let mut h = NullHandler;
        let mut mem = Memory::new();
        let mut labels = LabelTable::new();
        let params = vec![];
        let mut ctx = HostCtx {
            mem: &mut mem,
            labels: &mut labels,
            params: &params,
            taint: true,
        };
        assert!(h.call("anything", &[], &mut ctx).is_err());
    }
}
