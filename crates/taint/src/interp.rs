//! The taint-propagating IR interpreter — a decode-once execution engine.
//!
//! This is the dynamic half of Perf-Taint (§5.2): where the original
//! instruments LLVM IR with DataFlowSanitizer and runs the native binary, we
//! interpret `pt-ir` and apply the same propagation rules per instruction:
//!
//! * **data flow** — every instruction result's label is the union of its
//!   operands' labels; loads union in the pointer's label (DFSan's
//!   `combine-pointer-labels-on-load`, on by default);
//! * **control flow** — the paper's DataFlowSanitizer extension: when a
//!   branch condition is tainted, a control scope is pushed that lasts until
//!   the branch block's immediate postdominator; values produced (policy
//!   [`CtlFlowPolicy::All`]) or stored (policy [`CtlFlowPolicy::StoresOnly`])
//!   inside the scope are joined with the scope's label. This captures the
//!   LULESH `regElemSize` histogram dependence shown in §5.2;
//! * **sinks** — every loop-exit branch condition (§4.1); records accumulate
//!   per *calling context*, so the modeler can build context-aware models;
//! * **sources** — the `pt_param_i64` / `pt_register_param` intrinsics (the
//!   paper's `register_variable`), plus whatever the external handler marks
//!   (the MPI library database writes the implicit parameter `p`).
//!
//! The interpreter simultaneously plays the role of the measurement
//! infrastructure: it maintains a simulated clock (per-instruction cost,
//! handler-returned costs for externals, per-function probe costs when
//! instrumented) and produces a call-path [`Profile`].
//!
//! ## Execution engine
//!
//! Unlike the original tree-walker (preserved as
//! [`crate::reference::ReferenceInterpreter`] for differential testing),
//! this engine never touches the [`pt_ir`] instruction tree at run time.
//! [`crate::prepared::PreparedModule`] carries a [`DecodedModule`] — a flat
//! bytecode with operands pre-resolved to register indices or inline
//! immediates, float-ness and result types folded into opcodes, callees
//! pre-bound, per-edge phi move lists, and loop/postdominator metadata
//! inlined into terminators (see [`crate::decode`]). The hot loop below is
//! a dense dispatch over that program, operating on a pooled flat register
//! file of [`TVal`]s, with consecutive back-edge bumps of the same loop
//! record buffered to avoid a map lookup per iteration. The contract with
//! the reference engine — bit-identical [`RunOutput`]s — is stated and
//! checked by [`crate::differential`].

use crate::decode::{DInst, DOp, DTerm, DecodedFunction, Edge, Intrinsic, Opnd};
use crate::host::{ExternalHandler, HostCtx};
use crate::label::{Label, LabelTable, ParamSet};
use crate::memory::{MemError, Memory, TVal};
use crate::path::PathId;
use crate::prepared::PreparedModule;
use crate::profile::Profile;
use crate::records::{LoopKey, TaintRecords};
use pt_ir::{BinOp, BlockId, FunctionId, Module};

/// How control-flow taint is applied (ablation knob; the paper's extension
/// corresponds to `All`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CtlFlowPolicy {
    /// Pure data-flow DFSan: no control scopes.
    Off,
    /// Join the scope label only into stored values.
    StoresOnly,
    /// Join the scope label into every value produced in the scope.
    #[default]
    All,
}

/// Interpreter configuration for one run.
#[derive(Debug, Clone)]
pub struct InterpConfig {
    pub policy: CtlFlowPolicy,
    /// Simulated seconds per executed IR instruction.
    pub inst_cost: f64,
    /// Per-function probe cost in seconds (indexed by [`FunctionId`],
    /// including pseudo-ids for externals); empty slice = no instrumentation.
    pub probe_cost: Vec<f64>,
    /// Maximum number of instructions to execute.
    pub fuel: u64,
    /// Propagate taint and record sinks (the *taint run*). Measurement
    /// sweeps disable this for speed.
    pub taint: bool,
    /// Record branch coverage and visited blocks.
    pub coverage: bool,
    /// DFSan's combine-pointer-labels-on-load (default true).
    pub combine_ptr_labels: bool,
    /// Maximum call depth.
    pub max_depth: usize,
}

impl Default for InterpConfig {
    fn default() -> Self {
        InterpConfig {
            policy: CtlFlowPolicy::All,
            inst_cost: 1e-9,
            probe_cost: Vec::new(),
            fuel: u64::MAX,
            taint: true,
            coverage: true,
            combine_ptr_labels: true,
            max_depth: 256,
        }
    }
}

/// Failures during interpretation.
#[derive(Debug, Clone, PartialEq)]
pub enum InterpError {
    Mem(MemError),
    DivisionByZero {
        func: String,
    },
    UnknownExternal(String),
    ExternalFailed {
        name: String,
        message: String,
    },
    OutOfFuel,
    CallDepthExceeded,
    Trap(String),
    UnknownFunction(String),
    /// A function was entered with fewer arguments than parameters. Both
    /// engines check at frame setup, so a missing argument is a defined
    /// error rather than a read of garbage (or a panic).
    ArityMismatch {
        func: String,
        expected: usize,
        got: usize,
    },
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::Mem(e) => write!(f, "memory error: {e}"),
            InterpError::DivisionByZero { func } => write!(f, "division by zero in {func}"),
            InterpError::UnknownExternal(n) => write!(f, "unknown external {n}"),
            InterpError::ExternalFailed { name, message } => {
                write!(f, "external {name} failed: {message}")
            }
            InterpError::OutOfFuel => write!(f, "out of fuel"),
            InterpError::CallDepthExceeded => write!(f, "call depth exceeded"),
            InterpError::Trap(m) => write!(f, "trap: {m}"),
            InterpError::UnknownFunction(n) => write!(f, "unknown function {n}"),
            InterpError::ArityMismatch {
                func,
                expected,
                got,
            } => {
                write!(
                    f,
                    "call to {func} with {got} arguments, expected {expected}"
                )
            }
        }
    }
}

impl std::error::Error for InterpError {}

impl From<MemError> for InterpError {
    fn from(e: MemError) -> Self {
        InterpError::Mem(e)
    }
}

/// Everything a run produces.
#[derive(Debug)]
pub struct RunOutput {
    pub ret: Option<TVal>,
    /// Final simulated clock (seconds).
    pub time: f64,
    /// Instructions executed.
    pub insts: u64,
    pub records: TaintRecords,
    pub profile: Profile,
    pub labels: LabelTable,
}

/// One pushed control-flow taint scope.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CtlScope {
    /// Scope closes when this block is entered (`None`: at function return).
    pub(crate) join: Option<BlockId>,
    /// Accumulated label (already unioned with the enclosing scope).
    pub(crate) label: Label,
}

/// Slots in the direct-mapped call-path intern cache (power of two).
const PATH_CACHE_SLOTS: usize = 64;

/// Stack-buffer capacity for call arguments; larger arities (none exist in
/// the corpus) fall back to a heap vector.
const ARG_BUF: usize = 8;

/// Resolve a pre-decoded operand against the frame's register file.
#[inline(always)]
fn resolve(op: Opnd, regs: &[TVal]) -> TVal {
    match op {
        Opnd::Reg(r) => regs[r as usize],
        Opnd::Imm(bits) => TVal {
            bits,
            label: Label::EMPTY,
        },
    }
}

/// The interpreter. Holds per-run mutable state; construct one per run.
pub struct Interpreter<'m, H: ExternalHandler> {
    module: &'m Module,
    prepared: &'m PreparedModule,
    handler: H,
    config: InterpConfig,
    params: Vec<(String, i64)>,
    labels: LabelTable,
    mem: Memory,
    records: TaintRecords,
    profile: Profile,
    clock: f64,
    insts: u64,
    depth: usize,
    /// Frame pools: returned register files / scope stacks / argument
    /// vectors are reused across calls so the many small accessor calls of
    /// real programs do not allocate per frame.
    reg_pool: Vec<Vec<TVal>>,
    ctl_pool: Vec<Vec<CtlScope>>,
    /// Staging buffer for phi parallel copies (read-all-then-write).
    phi_stage: Vec<(u32, TVal)>,
    /// Direct-mapped memo over `records.paths.intern` (pure memoization:
    /// the table's answer for a `(parent, callee)` pair never changes), so
    /// repeated calls to the same callee skip the hash lookup.
    path_cache: Vec<Option<(Option<PathId>, FunctionId, PathId)>>,
    /// Consecutive back-edge bumps of one loop record, buffered so the hot
    /// loop pays one map lookup per *run* of iterations, not per iteration.
    iter_buf: Option<(LoopKey, u64)>,
    /// Last sink update applied: loop-exit conditions re-union the same
    /// parameter set every iteration, and the union is idempotent — a
    /// repeat of the previous `(key, set)` pair can be skipped outright.
    sink_memo: Option<(LoopKey, ParamSet)>,
    /// Consecutive coverage updates of one tainted branch, buffered like
    /// `iter_buf` (a loop's exit branch is hit once per iteration).
    branch_buf: Option<((FunctionId, BlockId), crate::records::BranchRecord)>,
    /// Handler dispatch tokens for host primitives, indexed by
    /// [`crate::decode::DecodedModule::host_prim_names`] — resolved once
    /// per run so the hot path never string-matches a symbol.
    prim_tokens: Vec<Option<u32>>,
    /// Same, for library externals (indexed by extern index).
    lib_tokens: Vec<Option<u32>>,
    /// Last extern-argument record applied, keyed by `(caller, symbol)`
    /// (symbol = prim/extern index, kind-tagged in the low bit). Work
    /// calls inside loops re-union the same parameter set every
    /// iteration and the union is idempotent, so a repeat skips the
    /// string-keyed map entirely.
    extern_arg_memo: Option<((FunctionId, u32), ParamSet)>,
}

impl<'m, H: ExternalHandler> Interpreter<'m, H> {
    pub fn new(
        module: &'m Module,
        prepared: &'m PreparedModule,
        handler: H,
        params: Vec<(String, i64)>,
        config: InterpConfig,
    ) -> Self {
        let mut labels = LabelTable::new();
        // Pre-intern the marked parameters so parameter index == position.
        for (name, _) in &params {
            labels.base_label(name);
        }
        let nexterns = prepared.decoded.extern_names.len();
        let nfuncs = module.functions.len() + nexterns;
        let blocks_per_func: Vec<usize> = module
            .functions
            .iter()
            .map(|f| f.blocks.len())
            .chain(std::iter::repeat_n(0, nexterns))
            .collect();
        let prim_tokens = prepared
            .decoded
            .host_prim_names
            .iter()
            .map(|n| handler.resolve(n))
            .collect();
        let lib_tokens = prepared
            .decoded
            .extern_names
            .iter()
            .map(|n| handler.resolve(n))
            .collect();
        Interpreter {
            module,
            prepared,
            handler,
            config,
            params,
            labels,
            mem: Memory::new(),
            records: TaintRecords::new(nfuncs, &blocks_per_func),
            profile: Profile::new(),
            clock: 0.0,
            insts: 0,
            depth: 0,
            reg_pool: Vec::new(),
            ctl_pool: Vec::new(),
            phi_stage: Vec::new(),
            path_cache: vec![None; PATH_CACHE_SLOTS],
            iter_buf: None,
            sink_memo: None,
            branch_buf: None,
            prim_tokens,
            lib_tokens,
            extern_arg_memo: None,
        }
    }

    /// The pseudo [`FunctionId`] of external `name`, if it is called anywhere.
    pub fn extern_id(&self, name: &str) -> Option<FunctionId> {
        self.prepared
            .decoded
            .extern_names
            .iter()
            .position(|n| n == name)
            .map(|i| FunctionId((self.module.functions.len() + i) as u32))
    }

    /// Resolve a [`FunctionId`] (internal or pseudo-external) to its name.
    pub fn id_name(&self, id: FunctionId) -> String {
        let n = self.module.functions.len();
        if id.index() < n {
            self.module.function(id).name.clone()
        } else {
            self.prepared.decoded.extern_names[id.index() - n].clone()
        }
    }

    /// Run `entry` with the given (untainted) integer arguments.
    ///
    /// Dispatches to one of two monomorphized engines: the full taint
    /// engine, or the measurement-mode (`taint: false`) specialization in
    /// which label propagation, shadow-label combining, control scopes,
    /// and record taint-merging compile out of the hot loop entirely.
    pub fn run(mut self, entry: FunctionId, args: &[i64]) -> Result<RunOutput, InterpError> {
        let argv: Vec<TVal> = args.iter().map(|&a| TVal::from_i64(a)).collect();
        let (ret, _incl) = if self.config.taint {
            self.exec_function::<true>(entry, &argv, None, Label::EMPTY)?
        } else {
            self.exec_function::<false>(entry, &argv, None, Label::EMPTY)?
        };
        self.flush_iterations();
        self.flush_branches();
        Ok(RunOutput {
            ret,
            time: self.clock,
            insts: self.insts,
            records: self.records,
            profile: self.profile,
            labels: self.labels,
        })
    }

    /// Run the function named `entry`.
    pub fn run_named(self, entry: &str, args: &[i64]) -> Result<RunOutput, InterpError> {
        let fid = self
            .module
            .function_by_name(entry)
            .ok_or_else(|| InterpError::UnknownFunction(entry.to_string()))?;
        self.run(fid, args)
    }

    /// Label union, compiled out of the measurement-mode engine: with
    /// `TAINT == false` every call collapses to `Label::EMPTY` at
    /// monomorphization time and the label table is never touched.
    #[inline(always)]
    fn union_t<const TAINT: bool>(&mut self, a: Label, b: Label) -> Label {
        if !TAINT {
            return Label::EMPTY;
        }
        self.labels.union(a, b)
    }

    #[inline]
    fn bump_iterations(&mut self, key: LoopKey) {
        match &mut self.iter_buf {
            Some((k, n)) if *k == key => *n += 1,
            _ => {
                self.flush_iterations();
                self.iter_buf = Some((key, 1));
            }
        }
    }

    fn flush_iterations(&mut self) {
        if let Some((key, n)) = self.iter_buf.take() {
            self.records.loops.entry(key).or_default().iterations += n;
        }
    }

    /// Union `pset` into the sink record for `key`, skipping the map
    /// lookup when the previous sink update was the identical (idempotent)
    /// pair.
    #[inline]
    fn record_sink(&mut self, key: LoopKey, pset: ParamSet) {
        if self.sink_memo == Some((key, pset)) {
            return;
        }
        let rec = self.records.loops.entry(key).or_default();
        rec.params = rec.params.union(pset);
        self.sink_memo = Some((key, pset));
    }

    /// Accumulate coverage of one tainted branch, buffered across
    /// consecutive hits of the same branch.
    #[inline]
    fn record_branch(&mut self, key: (FunctionId, BlockId), pset: ParamSet, taken: bool) {
        match &mut self.branch_buf {
            Some((k, rec)) if *k == key => {
                rec.params = rec.params.union(pset);
                if taken {
                    rec.taken_true += 1;
                } else {
                    rec.taken_false += 1;
                }
            }
            _ => {
                self.flush_branches();
                let mut rec = crate::records::BranchRecord {
                    params: pset,
                    ..Default::default()
                };
                if taken {
                    rec.taken_true = 1;
                } else {
                    rec.taken_false = 1;
                }
                self.branch_buf = Some((key, rec));
            }
        }
    }

    fn flush_branches(&mut self) {
        if let Some((key, buf)) = self.branch_buf.take() {
            let rec = self.records.branches.entry(key).or_default();
            rec.params = rec.params.union(buf.params);
            rec.taken_true += buf.taken_true;
            rec.taken_false += buf.taken_false;
        }
    }

    /// `records.paths.intern` behind a direct-mapped cache keyed by the
    /// callee id's low bits.
    #[inline]
    fn intern_path(&mut self, parent: Option<PathId>, fid: FunctionId) -> PathId {
        let slot = fid.0 as usize & (PATH_CACHE_SLOTS - 1);
        if let Some((p, f, path)) = self.path_cache[slot] {
            if p == parent && f == fid {
                return path;
            }
        }
        let path = self.records.paths.intern(parent, fid);
        self.path_cache[slot] = Some((parent, fid, path));
        path
    }

    fn exec_function<const TAINT: bool>(
        &mut self,
        fid: FunctionId,
        args: &[TVal],
        parent: Option<PathId>,
        inherited_ctx: Label,
    ) -> Result<(Option<TVal>, f64), InterpError> {
        self.depth += 1;
        if self.depth > self.config.max_depth {
            self.depth -= 1;
            return Err(InterpError::CallDepthExceeded);
        }
        let result = self.exec_function_inner::<TAINT>(fid, args, parent, inherited_ctx);
        self.depth -= 1;
        result
    }

    fn exec_function_inner<const TAINT: bool>(
        &mut self,
        fid: FunctionId,
        args: &[TVal],
        parent: Option<PathId>,
        inherited_ctx: Label,
    ) -> Result<(Option<TVal>, f64), InterpError> {
        debug_assert_eq!(TAINT, self.config.taint);
        // Reborrow through the `'m` reference so the decoded program can be
        // held across `&mut self` calls.
        let prepared: &'m PreparedModule = self.prepared;
        let dfunc: &'m DecodedFunction = prepared.decoded.func(fid);
        // A missing argument is a defined error in both engines (shared
        // differential behavior; previously the engines diverged here).
        if args.len() < dfunc.nparams {
            return Err(InterpError::ArityMismatch {
                func: dfunc.name.clone(),
                expected: dfunc.nparams,
                got: args.len(),
            });
        }
        let path = self.intern_path(parent, fid);
        self.records.executed[fid.index()] = true;

        // Hot per-instruction state lives in locals, synced with `self`
        // around calls, so the dispatch loop keeps it in registers. The
        // f64 additions happen in exactly the reference engine's order —
        // only the storage location differs — so the clock stays
        // bit-identical.
        let inst_cost = self.config.inst_cost;
        let fuel = self.config.fuel;
        let policy = self.config.policy;
        let coverage = self.config.coverage;
        let combine_ptr = TAINT && self.config.combine_ptr_labels;
        let store_ctx = TAINT && policy != CtlFlowPolicy::Off;
        let mut insts = self.insts;
        let mut clock = self.clock;

        let t_enter = clock;
        // Probe cost: charged to this function's exclusive time when the
        // measurement filter instruments it.
        if let Some(&probe) = self.config.probe_cost.get(fid.index()) {
            clock += probe;
        }
        let mut child_time = 0.0f64;

        let frame_mark = self.mem.mark();
        let mut regs = self.reg_pool.pop().unwrap_or_default();
        if dfunc.ssa_clean {
            // Definitions dominate uses (verified at decode time), so no
            // register is ever read before this frame writes it: stale
            // pooled contents are unobservable and the per-call frame
            // clear is skipped.
            regs.resize(dfunc.nregs, TVal::UNTAINTED_ZERO);
        } else {
            regs.clear();
            regs.resize(dfunc.nregs, TVal::UNTAINTED_ZERO);
        }
        // Arity was checked on entry; register allocation pins parameters
        // to the first `nparams` frame slots, so this stays one memcpy.
        regs[..dfunc.nparams].copy_from_slice(&args[..dfunc.nparams]);

        // Control-flow taint scopes. The inherited scope (from tainted
        // control in the caller) never pops within this frame.
        let mut ctl = self.ctl_pool.pop().unwrap_or_default();
        ctl.clear();
        let base_ctx = if policy == CtlFlowPolicy::Off {
            Label::EMPTY
        } else {
            inherited_ctx
        };

        // Resolve a decoded argument list into `$argv: &[TVal]` — a stack
        // buffer for the arities real call sites have, a heap vector
        // beyond ARG_BUF. A macro because the buffer must live in the
        // match arm's scope while four call kinds share the logic.
        macro_rules! resolve_argv {
            ($args:expr, $regs:expr, $argv:ident) => {
                // Arity-specialized buffers: most host/work primitives take
                // 0–2 arguments, and fully initializing the 8-slot buffer
                // per call was a measurable memset on the hot path.
                let b1: [TVal; 1];
                let b2: [TVal; 2];
                let b8: [TVal; ARG_BUF];
                let big: Vec<TVal>;
                let $argv: &[TVal] = match $args.len() {
                    0 => &[],
                    1 => {
                        b1 = [resolve($args[0], $regs)];
                        &b1
                    }
                    2 => {
                        b2 = [resolve($args[0], $regs), resolve($args[1], $regs)];
                        &b2
                    }
                    n if n <= ARG_BUF => {
                        b8 = std::array::from_fn(|i| {
                            if i < n {
                                resolve($args[i], $regs)
                            } else {
                                TVal::UNTAINTED_ZERO
                            }
                        });
                        &b8[..n]
                    }
                    _ => {
                        big = $args.iter().map(|&a| resolve(a, $regs)).collect();
                        &big
                    }
                };
            };
        }

        let mut block = dfunc.entry;
        let ret_val: Option<TVal>;
        // Base of this function's flat visit flags, hoisted so the
        // per-block mark is one bounds check and one store.
        let vb_base = self.records.visited_blocks.offset(fid);

        'blocks: loop {
            if coverage {
                self.records.visited_blocks.set(vb_base + block.index());
            }
            // The phi moves of the edge just taken already ran (at the
            // branch site, under the pre-pop scope stack — the value choice
            // is the control-dependent act); now scopes joining here close.
            if insts > fuel {
                return Err(InterpError::OutOfFuel);
            }
            while matches!(ctl.last(), Some(s) if s.join == Some(block)) {
                ctl.pop();
            }

            // The control context is constant across a straight-line run:
            // scopes only push at conditional branches and pop at block
            // entries.
            let ctx = if store_ctx {
                ctl.last().map_or(base_ctx, |s| s.label)
            } else {
                Label::EMPTY
            };
            let apply_all = TAINT && policy == CtlFlowPolicy::All && !ctx.is_empty();

            let dblock = &dfunc.blocks[block.index()];
            for di in dblock.insts.iter() {
                insts += 1;
                clock += inst_cost;
                let out: TVal = match &di.op {
                    DOp::BinI { op, a, b } => {
                        let a = resolve(*a, &regs);
                        let b = resolve(*b, &regs);
                        let label = self.union_t::<TAINT>(a.label, b.label);
                        let (x, y) = (a.as_i64(), b.as_i64());
                        let r = match op {
                            BinOp::Add => x.wrapping_add(y),
                            BinOp::Sub => x.wrapping_sub(y),
                            BinOp::Mul => x.wrapping_mul(y),
                            BinOp::Div => {
                                if y == 0 {
                                    return Err(InterpError::DivisionByZero {
                                        func: dfunc.name.clone(),
                                    });
                                }
                                x.wrapping_div(y)
                            }
                            BinOp::Rem => {
                                if y == 0 {
                                    return Err(InterpError::DivisionByZero {
                                        func: dfunc.name.clone(),
                                    });
                                }
                                x.wrapping_rem(y)
                            }
                            BinOp::And => x & y,
                            BinOp::Or => x | y,
                            BinOp::Xor => x ^ y,
                            BinOp::Shl => crate::ops::shl_i64(x, y),
                            BinOp::Shr => crate::ops::shr_i64(x, y),
                            BinOp::Min => x.min(y),
                            BinOp::Max => x.max(y),
                        };
                        TVal {
                            bits: r as u64,
                            label,
                        }
                    }
                    DOp::BinF { op, a, b } => {
                        let a = resolve(*a, &regs);
                        let b = resolve(*b, &regs);
                        let label = self.union_t::<TAINT>(a.label, b.label);
                        let (x, y) = (a.as_f64(), b.as_f64());
                        let r = match op {
                            BinOp::Add => x + y,
                            BinOp::Sub => x - y,
                            BinOp::Mul => x * y,
                            BinOp::Div => x / y,
                            BinOp::Rem => x % y,
                            BinOp::Min => x.min(y),
                            BinOp::Max => x.max(y),
                            _ => unreachable!("bitwise float ops decode to Trap"),
                        };
                        TVal {
                            bits: r.to_bits(),
                            label,
                        }
                    }
                    DOp::NegI { a } => {
                        let a = resolve(*a, &regs);
                        TVal {
                            bits: a.as_i64().wrapping_neg() as u64,
                            label: a.label,
                        }
                    }
                    DOp::NegF { a } => {
                        let a = resolve(*a, &regs);
                        TVal {
                            bits: (-a.as_f64()).to_bits(),
                            label: a.label,
                        }
                    }
                    DOp::NotBool { a } => {
                        let a = resolve(*a, &regs);
                        TVal {
                            bits: (a.bits == 0) as u64,
                            label: a.label,
                        }
                    }
                    DOp::NotInt { a } => {
                        let a = resolve(*a, &regs);
                        TVal {
                            bits: !a.as_i64() as u64,
                            label: a.label,
                        }
                    }
                    DOp::IntToFloat { a } => {
                        let a = resolve(*a, &regs);
                        TVal {
                            bits: (a.as_i64() as f64).to_bits(),
                            label: a.label,
                        }
                    }
                    DOp::FloatToInt { a } => {
                        let a = resolve(*a, &regs);
                        let f = a.as_f64();
                        let clamped = if f.is_nan() {
                            0
                        } else {
                            f.clamp(i64::MIN as f64, i64::MAX as f64) as i64
                        };
                        TVal {
                            bits: clamped as u64,
                            label: a.label,
                        }
                    }
                    DOp::Sqrt { a } => {
                        let a = resolve(*a, &regs);
                        TVal {
                            bits: a.as_f64().max(0.0).sqrt().to_bits(),
                            label: a.label,
                        }
                    }
                    DOp::AbsI { a } => {
                        let a = resolve(*a, &regs);
                        TVal {
                            bits: a.as_i64().wrapping_abs() as u64,
                            label: a.label,
                        }
                    }
                    DOp::AbsF { a } => {
                        let a = resolve(*a, &regs);
                        TVal {
                            bits: a.as_f64().abs().to_bits(),
                            label: a.label,
                        }
                    }
                    DOp::CmpI { pred, a, b } => {
                        let a = resolve(*a, &regs);
                        let b = resolve(*b, &regs);
                        let label = self.union_t::<TAINT>(a.label, b.label);
                        TVal {
                            bits: pred.eval(a.as_i64(), b.as_i64()) as u64,
                            label,
                        }
                    }
                    DOp::CmpF { pred, a, b } => {
                        let a = resolve(*a, &regs);
                        let b = resolve(*b, &regs);
                        let label = self.union_t::<TAINT>(a.label, b.label);
                        TVal {
                            bits: pred.eval(a.as_f64(), b.as_f64()) as u64,
                            label,
                        }
                    }
                    DOp::Select { c, t, e } => {
                        let c = resolve(*c, &regs);
                        let chosen = if c.as_bool() {
                            resolve(*t, &regs)
                        } else {
                            resolve(*e, &regs)
                        };
                        let label = self.union_t::<TAINT>(c.label, chosen.label);
                        TVal {
                            bits: chosen.bits,
                            label,
                        }
                    }
                    DOp::Alloca { words } => {
                        let n = resolve(*words, &regs).as_i64();
                        if n < 0 {
                            return Err(InterpError::Trap(format!(
                                "negative alloca in {}",
                                dfunc.name
                            )));
                        }
                        let addr = self.mem.alloc(n as usize);
                        TVal::from_i64(addr as i64)
                    }
                    DOp::Load { addr } => {
                        let a = resolve(*addr, &regs);
                        let mut v = self.mem.load(a.as_addr())?;
                        if combine_ptr {
                            v.label = self.union_t::<TAINT>(v.label, a.label);
                        }
                        v
                    }
                    DOp::Store { addr, value } => {
                        let a = resolve(*addr, &regs);
                        let mut v = resolve(*value, &regs);
                        if store_ctx {
                            // StoresOnly and All both taint stored values
                            // with the control context.
                            v.label = self.union_t::<TAINT>(v.label, ctx);
                        }
                        self.mem.store(a.as_addr(), v)?;
                        TVal::UNTAINTED_ZERO
                    }
                    DOp::Gep {
                        base,
                        index,
                        stride,
                    } => {
                        let b = resolve(*base, &regs);
                        let i = resolve(*index, &regs);
                        let label = self.union_t::<TAINT>(b.label, i.label);
                        let addr = b.as_i64().wrapping_add(i.as_i64().wrapping_mul(*stride));
                        TVal {
                            bits: addr as u64,
                            label,
                        }
                    }
                    DOp::LoadIdx {
                        base,
                        index,
                        stride,
                    } => {
                        // Fused gep+load: this dispatch retires both. The
                        // loop header charged the gep; its label unions run
                        // here in the original order, then the load half
                        // charges itself before touching memory.
                        let b = resolve(*base, &regs);
                        let i = resolve(*index, &regs);
                        let mut la = self.union_t::<TAINT>(b.label, i.label);
                        if apply_all {
                            la = self.union_t::<TAINT>(la, ctx);
                        }
                        let addr = b.as_i64().wrapping_add(i.as_i64().wrapping_mul(*stride));
                        insts += 1;
                        clock += inst_cost;
                        let mut v = self.mem.load(addr as u64 as usize)?;
                        if combine_ptr {
                            v.label = self.union_t::<TAINT>(v.label, la);
                        }
                        v
                    }
                    DOp::StoreIdx {
                        base,
                        index,
                        stride,
                        value,
                    } => {
                        // Fused gep+store, charged like LoadIdx.
                        let b = resolve(*base, &regs);
                        let i = resolve(*index, &regs);
                        let gep_label = self.union_t::<TAINT>(b.label, i.label);
                        if apply_all {
                            // The fused-away gep result would have carried
                            // the control context; the union must still
                            // happen so the label table stays identical.
                            let _ = self.union_t::<TAINT>(gep_label, ctx);
                        }
                        let addr = b.as_i64().wrapping_add(i.as_i64().wrapping_mul(*stride));
                        insts += 1;
                        clock += inst_cost;
                        let mut v = resolve(*value, &regs);
                        if store_ctx {
                            v.label = self.union_t::<TAINT>(v.label, ctx);
                        }
                        self.mem.store(addr as u64 as usize, v)?;
                        TVal::UNTAINTED_ZERO
                    }
                    DOp::CallInternal { callee, args } => {
                        resolve_argv!(args, &regs, argv);
                        self.insts = insts;
                        self.clock = clock;
                        let (ret, incl) =
                            self.exec_function::<TAINT>(*callee, argv, Some(path), ctx)?;
                        insts = self.insts;
                        clock = self.clock;
                        child_time += incl;
                        ret.unwrap_or(TVal::UNTAINTED_ZERO)
                    }
                    DOp::CallInlined {
                        callee,
                        entry,
                        body,
                        ret,
                    } => self.exec_inlined::<TAINT>(
                        *callee,
                        *entry,
                        body,
                        *ret,
                        &mut regs,
                        &mut insts,
                        &mut clock,
                        &mut child_time,
                        path,
                        ctx,
                        apply_all,
                        store_ctx,
                        combine_ptr,
                        coverage,
                        fuel,
                        inst_cost,
                    )?,
                    DOp::CallIntrinsic { which, args } => {
                        // Intrinsics never touch the clock or instruction
                        // count — no counter sync needed.
                        resolve_argv!(args, &regs, argv);
                        self.exec_intrinsic(*which, argv)?
                    }
                    DOp::CallHostPrim { name, prim, args } => {
                        // Host calls never touch the instruction counter,
                        // and the clock rides along by reference — no
                        // round-trip through `self`.
                        resolve_argv!(args, &regs, argv);
                        let token = self.prim_tokens[*prim as usize];
                        self.exec_host_call(
                            name,
                            token,
                            *prim << 1,
                            argv,
                            fid,
                            path,
                            &mut clock,
                            &mut child_time,
                            None,
                        )?
                    }
                    DOp::CallLibrary { name, ext_id, args } => {
                        resolve_argv!(args, &regs, argv);
                        let ext_index = ext_id.index() - self.module.functions.len();
                        let token = self.lib_tokens[ext_index];
                        self.exec_host_call(
                            name,
                            token,
                            (ext_index as u32) << 1 | 1,
                            argv,
                            fid,
                            path,
                            &mut clock,
                            &mut child_time,
                            Some(*ext_id),
                        )?
                    }
                    DOp::Trap { message } => {
                        return Err(InterpError::Trap(message.to_string()));
                    }
                };
                let out = if apply_all {
                    let mut t = out;
                    t.label = self.union_t::<TAINT>(t.label, ctx);
                    t
                } else {
                    out
                };
                regs[di.dst as usize] = out;
            }
            if insts > fuel {
                return Err(InterpError::OutOfFuel);
            }

            match &dblock.term {
                DTerm::Br(edge) => {
                    self.take_edge::<TAINT>(
                        edge, fid, path, &mut regs, &ctl, base_ctx, &mut insts, &mut clock,
                    );
                    block = edge.target;
                }
                DTerm::CondBr {
                    cond,
                    then_edge,
                    else_edge,
                    exiting,
                    join,
                } => {
                    let cv = resolve(*cond, &regs);
                    if TAINT {
                        // Sinks: loop-exit conditions (§4.1).
                        for &lid in exiting.iter() {
                            let pset = self.labels.params_of(cv.label);
                            self.record_sink(
                                LoopKey {
                                    func: fid,
                                    loop_id: lid,
                                    path,
                                },
                                pset,
                            );
                        }
                        // Branch coverage for tainted conditions (§4.4, §C2).
                        if coverage && !cv.label.is_empty() {
                            let pset = self.labels.params_of(cv.label);
                            self.record_branch((fid, block), pset, cv.as_bool());
                        }
                        // Open a control scope for tainted branches.
                        if policy != CtlFlowPolicy::Off && !cv.label.is_empty() {
                            let enclosing = ctl.last().map_or(base_ctx, |s| s.label);
                            let label = self.union_t::<TAINT>(cv.label, enclosing);
                            ctl.push(CtlScope { join: *join, label });
                        }
                    }
                    let edge = if cv.as_bool() { then_edge } else { else_edge };
                    self.take_edge::<TAINT>(
                        edge, fid, path, &mut regs, &ctl, base_ctx, &mut insts, &mut clock,
                    );
                    block = edge.target;
                }
                DTerm::CondBrCmp {
                    pred,
                    float,
                    a,
                    b,
                    then_edge,
                    else_edge,
                    exiting,
                    join,
                } => {
                    // Fused cmp+condbr. The comparison half retires here —
                    // count, clock, and label unions in exactly the order
                    // the standalone cmp produced them — then the fuel
                    // boundary that used to sit between the cmp and the
                    // branch is re-checked before any branch effect.
                    insts += 1;
                    clock += inst_cost;
                    let av = resolve(*a, &regs);
                    let bv = resolve(*b, &regs);
                    let mut cond_label = self.union_t::<TAINT>(av.label, bv.label);
                    let taken = if *float {
                        pred.eval(av.as_f64(), bv.as_f64())
                    } else {
                        pred.eval(av.as_i64(), bv.as_i64())
                    };
                    if apply_all {
                        cond_label = self.union_t::<TAINT>(cond_label, ctx);
                    }
                    if insts > fuel {
                        return Err(InterpError::OutOfFuel);
                    }
                    if TAINT {
                        for &lid in exiting.iter() {
                            let pset = self.labels.params_of(cond_label);
                            self.record_sink(
                                LoopKey {
                                    func: fid,
                                    loop_id: lid,
                                    path,
                                },
                                pset,
                            );
                        }
                        if coverage && !cond_label.is_empty() {
                            let pset = self.labels.params_of(cond_label);
                            self.record_branch((fid, block), pset, taken);
                        }
                        if policy != CtlFlowPolicy::Off && !cond_label.is_empty() {
                            let enclosing = ctl.last().map_or(base_ctx, |s| s.label);
                            let label = self.union_t::<TAINT>(cond_label, enclosing);
                            ctl.push(CtlScope { join: *join, label });
                        }
                    }
                    let edge = if taken { then_edge } else { else_edge };
                    self.take_edge::<TAINT>(
                        edge, fid, path, &mut regs, &ctl, base_ctx, &mut insts, &mut clock,
                    );
                    block = edge.target;
                }
                DTerm::Ret(v) => {
                    ret_val = (*v).map(|op| resolve(op, &regs));
                    break 'blocks;
                }
                DTerm::Unreachable => {
                    return Err(InterpError::Trap(format!(
                        "reached unreachable in {}",
                        dfunc.name
                    )));
                }
            }
        }

        self.mem.release_to(frame_mark);
        self.insts = insts;
        self.clock = clock;
        let inclusive = clock - t_enter;
        let exclusive = inclusive - child_time;
        self.profile.record_call(path, fid, inclusive, exclusive);
        // Returned frames keep their (stale) contents: SSA-clean callees
        // never read a register before writing it, and unclean callees
        // clear explicitly at frame setup.
        self.reg_pool.push(regs);
        ctl.clear();
        self.ctl_pool.push(ctl);
        Ok((ret_val, inclusive))
    }

    /// Take a decoded CFG edge: loop bookkeeping, then the target's phi
    /// parallel copy for this predecessor. Sources are all read before the
    /// first write (staged), so swap / lost-copy cycles behave like the
    /// reference engine's simultaneous assignment.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn take_edge<const TAINT: bool>(
        &mut self,
        edge: &'m Edge,
        fid: FunctionId,
        path: PathId,
        regs: &mut [TVal],
        ctl: &[CtlScope],
        base_ctx: Label,
        insts: &mut u64,
        clock: &mut f64,
    ) {
        if TAINT {
            if let Some(lid) = edge.back_edge {
                self.bump_iterations(LoopKey {
                    func: fid,
                    loop_id: lid,
                    path,
                });
            } else if let Some(lid) = edge.enters {
                let rec = self
                    .records
                    .loops
                    .entry(LoopKey {
                        func: fid,
                        loop_id: lid,
                        path,
                    })
                    .or_default();
                rec.entries += 1;
            }
        }
        if edge.moves.is_empty() {
            return;
        }
        // Phis evaluate under the scope that closes at the target (it pops
        // only after the copy) — including a scope this very branch pushed.
        let apply = TAINT && self.config.policy == CtlFlowPolicy::All;
        let ctx = ctl.last().map_or(base_ctx, |s| s.label);
        let inst_cost = self.config.inst_cost;
        if let [mv] = edge.moves.as_ref() {
            // Single-phi edges (every builder loop's induction variable)
            // need no staging: one move cannot hazard with itself reading
            // its own register.
            *insts += 1;
            *clock += inst_cost;
            let mut tv = resolve(mv.src, regs);
            if apply {
                tv.label = self.union_t::<TAINT>(tv.label, ctx);
            }
            regs[mv.dst as usize] = tv;
            return;
        }
        let mut stage = std::mem::take(&mut self.phi_stage);
        stage.clear();
        for mv in edge.moves.iter() {
            *insts += 1;
            *clock += inst_cost;
            let mut tv = resolve(mv.src, regs);
            if apply {
                tv.label = self.union_t::<TAINT>(tv.label, ctx);
            }
            stage.push((mv.dst, tv));
        }
        for (dst, tv) in stage.drain(..) {
            regs[dst as usize] = tv;
        }
        self.phi_stage = stage;
    }

    /// Execute a [`DOp::CallInlined`] superinstruction: an entire leaf
    /// call — depth and fuel boundaries, path interning, executed/visited
    /// marks, probe cost, body, per-call profile entry — replayed inline
    /// over the caller's frame. The caller's loop header already charged
    /// the call instruction itself; the callee's control context equals
    /// the caller's at the call site (a single-block callee can neither
    /// push nor pop scopes), so `ctx`/`apply_all`/`store_ctx` carry over
    /// unchanged.
    #[allow(clippy::too_many_arguments)]
    fn exec_inlined<const TAINT: bool>(
        &mut self,
        callee: FunctionId,
        entry: BlockId,
        body: &[DInst],
        ret: Option<Opnd>,
        regs: &mut [TVal],
        insts: &mut u64,
        clock: &mut f64,
        child_time: &mut f64,
        path: PathId,
        ctx: Label,
        apply_all: bool,
        store_ctx: bool,
        combine_ptr: bool,
        coverage: bool,
        fuel: u64,
        inst_cost: f64,
    ) -> Result<TVal, InterpError> {
        self.depth += 1;
        if self.depth > self.config.max_depth {
            self.depth -= 1;
            return Err(InterpError::CallDepthExceeded);
        }
        let ipath = self.intern_path(Some(path), callee);
        self.records.executed[callee.index()] = true;
        let t_enter = *clock;
        if let Some(&probe) = self.config.probe_cost.get(callee.index()) {
            *clock += probe;
        }
        if coverage {
            self.records.visited_blocks.mark(callee, entry);
        }
        let result = self.exec_inlined_body::<TAINT>(
            body,
            regs,
            insts,
            clock,
            ctx,
            apply_all,
            store_ctx,
            combine_ptr,
            fuel,
            inst_cost,
            callee,
        );
        self.depth -= 1;
        result?;
        let rv = ret.map_or(TVal::UNTAINTED_ZERO, |o| resolve(o, regs));
        // No children and no alloca: exclusive == inclusive, and the
        // memory watermark is untouched.
        let inclusive = *clock - t_enter;
        self.profile
            .record_call(ipath, callee, inclusive, inclusive);
        *child_time += inclusive;
        Ok(rv)
    }

    /// The restricted dispatch for inlined bodies: pure scalar ops and
    /// memory accesses only (the inlining pass guarantees it). Mirrors
    /// the corresponding arms of the main loop exactly — the differential
    /// suites pin the two against the reference engine.
    #[allow(clippy::too_many_arguments)]
    fn exec_inlined_body<const TAINT: bool>(
        &mut self,
        body: &[DInst],
        regs: &mut [TVal],
        insts: &mut u64,
        clock: &mut f64,
        ctx: Label,
        apply_all: bool,
        store_ctx: bool,
        combine_ptr: bool,
        fuel: u64,
        inst_cost: f64,
        callee: FunctionId,
    ) -> Result<(), InterpError> {
        // The fuel boundary the reference engine checks at the callee's
        // block entry.
        if *insts > fuel {
            return Err(InterpError::OutOfFuel);
        }
        // Copy out the `'m` reference so error paths can read the callee
        // name without borrowing `self`.
        let decoded: &'m crate::decode::DecodedModule = &self.prepared.decoded;
        let callee_name = move || decoded.func(callee).name.clone();
        for di in body {
            *insts += 1;
            *clock += inst_cost;
            let out: TVal = match &di.op {
                DOp::BinI { op, a, b } => {
                    let a = resolve(*a, regs);
                    let b = resolve(*b, regs);
                    let label = self.union_t::<TAINT>(a.label, b.label);
                    let (x, y) = (a.as_i64(), b.as_i64());
                    let r = match op {
                        BinOp::Add => x.wrapping_add(y),
                        BinOp::Sub => x.wrapping_sub(y),
                        BinOp::Mul => x.wrapping_mul(y),
                        BinOp::Div => {
                            if y == 0 {
                                return Err(InterpError::DivisionByZero {
                                    func: callee_name(),
                                });
                            }
                            x.wrapping_div(y)
                        }
                        BinOp::Rem => {
                            if y == 0 {
                                return Err(InterpError::DivisionByZero {
                                    func: callee_name(),
                                });
                            }
                            x.wrapping_rem(y)
                        }
                        BinOp::And => x & y,
                        BinOp::Or => x | y,
                        BinOp::Xor => x ^ y,
                        BinOp::Shl => crate::ops::shl_i64(x, y),
                        BinOp::Shr => crate::ops::shr_i64(x, y),
                        BinOp::Min => x.min(y),
                        BinOp::Max => x.max(y),
                    };
                    TVal {
                        bits: r as u64,
                        label,
                    }
                }
                DOp::BinF { op, a, b } => {
                    let a = resolve(*a, regs);
                    let b = resolve(*b, regs);
                    let label = self.union_t::<TAINT>(a.label, b.label);
                    let (x, y) = (a.as_f64(), b.as_f64());
                    let r = match op {
                        BinOp::Add => x + y,
                        BinOp::Sub => x - y,
                        BinOp::Mul => x * y,
                        BinOp::Div => x / y,
                        BinOp::Rem => x % y,
                        BinOp::Min => x.min(y),
                        BinOp::Max => x.max(y),
                        _ => unreachable!("bitwise float ops decode to Trap"),
                    };
                    TVal {
                        bits: r.to_bits(),
                        label,
                    }
                }
                DOp::NegI { a } => {
                    let a = resolve(*a, regs);
                    TVal {
                        bits: a.as_i64().wrapping_neg() as u64,
                        label: a.label,
                    }
                }
                DOp::NegF { a } => {
                    let a = resolve(*a, regs);
                    TVal {
                        bits: (-a.as_f64()).to_bits(),
                        label: a.label,
                    }
                }
                DOp::NotBool { a } => {
                    let a = resolve(*a, regs);
                    TVal {
                        bits: (a.bits == 0) as u64,
                        label: a.label,
                    }
                }
                DOp::NotInt { a } => {
                    let a = resolve(*a, regs);
                    TVal {
                        bits: !a.as_i64() as u64,
                        label: a.label,
                    }
                }
                DOp::IntToFloat { a } => {
                    let a = resolve(*a, regs);
                    TVal {
                        bits: (a.as_i64() as f64).to_bits(),
                        label: a.label,
                    }
                }
                DOp::FloatToInt { a } => {
                    let a = resolve(*a, regs);
                    let f = a.as_f64();
                    let clamped = if f.is_nan() {
                        0
                    } else {
                        f.clamp(i64::MIN as f64, i64::MAX as f64) as i64
                    };
                    TVal {
                        bits: clamped as u64,
                        label: a.label,
                    }
                }
                DOp::Sqrt { a } => {
                    let a = resolve(*a, regs);
                    TVal {
                        bits: a.as_f64().max(0.0).sqrt().to_bits(),
                        label: a.label,
                    }
                }
                DOp::AbsI { a } => {
                    let a = resolve(*a, regs);
                    TVal {
                        bits: a.as_i64().wrapping_abs() as u64,
                        label: a.label,
                    }
                }
                DOp::AbsF { a } => {
                    let a = resolve(*a, regs);
                    TVal {
                        bits: a.as_f64().abs().to_bits(),
                        label: a.label,
                    }
                }
                DOp::CmpI { pred, a, b } => {
                    let a = resolve(*a, regs);
                    let b = resolve(*b, regs);
                    let label = self.union_t::<TAINT>(a.label, b.label);
                    TVal {
                        bits: pred.eval(a.as_i64(), b.as_i64()) as u64,
                        label,
                    }
                }
                DOp::CmpF { pred, a, b } => {
                    let a = resolve(*a, regs);
                    let b = resolve(*b, regs);
                    let label = self.union_t::<TAINT>(a.label, b.label);
                    TVal {
                        bits: pred.eval(a.as_f64(), b.as_f64()) as u64,
                        label,
                    }
                }
                DOp::Select { c, t, e } => {
                    let c = resolve(*c, regs);
                    let chosen = if c.as_bool() {
                        resolve(*t, regs)
                    } else {
                        resolve(*e, regs)
                    };
                    let label = self.union_t::<TAINT>(c.label, chosen.label);
                    TVal {
                        bits: chosen.bits,
                        label,
                    }
                }
                DOp::Load { addr } => {
                    let a = resolve(*addr, regs);
                    let mut v = self.mem.load(a.as_addr())?;
                    if combine_ptr {
                        v.label = self.union_t::<TAINT>(v.label, a.label);
                    }
                    v
                }
                DOp::Store { addr, value } => {
                    let a = resolve(*addr, regs);
                    let mut v = resolve(*value, regs);
                    if store_ctx {
                        v.label = self.union_t::<TAINT>(v.label, ctx);
                    }
                    self.mem.store(a.as_addr(), v)?;
                    TVal::UNTAINTED_ZERO
                }
                DOp::Gep {
                    base,
                    index,
                    stride,
                } => {
                    let b = resolve(*base, regs);
                    let i = resolve(*index, regs);
                    let label = self.union_t::<TAINT>(b.label, i.label);
                    let addr = b.as_i64().wrapping_add(i.as_i64().wrapping_mul(*stride));
                    TVal {
                        bits: addr as u64,
                        label,
                    }
                }
                DOp::LoadIdx {
                    base,
                    index,
                    stride,
                } => {
                    let b = resolve(*base, regs);
                    let i = resolve(*index, regs);
                    let mut la = self.union_t::<TAINT>(b.label, i.label);
                    if apply_all {
                        la = self.union_t::<TAINT>(la, ctx);
                    }
                    let addr = b.as_i64().wrapping_add(i.as_i64().wrapping_mul(*stride));
                    *insts += 1;
                    *clock += inst_cost;
                    let mut v = self.mem.load(addr as u64 as usize)?;
                    if combine_ptr {
                        v.label = self.union_t::<TAINT>(v.label, la);
                    }
                    v
                }
                DOp::StoreIdx {
                    base,
                    index,
                    stride,
                    value,
                } => {
                    let b = resolve(*base, regs);
                    let i = resolve(*index, regs);
                    let gep_label = self.union_t::<TAINT>(b.label, i.label);
                    if apply_all {
                        let _ = self.union_t::<TAINT>(gep_label, ctx);
                    }
                    let addr = b.as_i64().wrapping_add(i.as_i64().wrapping_mul(*stride));
                    *insts += 1;
                    *clock += inst_cost;
                    let mut v = resolve(*value, regs);
                    if store_ctx {
                        v.label = self.union_t::<TAINT>(v.label, ctx);
                    }
                    self.mem.store(addr as u64 as usize, v)?;
                    TVal::UNTAINTED_ZERO
                }
                DOp::Trap { message } => {
                    return Err(InterpError::Trap(message.to_string()));
                }
                DOp::Alloca { .. }
                | DOp::CallInternal { .. }
                | DOp::CallIntrinsic { .. }
                | DOp::CallHostPrim { .. }
                | DOp::CallLibrary { .. }
                | DOp::CallInlined { .. } => {
                    unreachable!("op excluded from inlined bodies by the pass")
                }
            };
            let out = if apply_all {
                let mut t = out;
                t.label = self.union_t::<TAINT>(t.label, ctx);
                t
            } else {
                out
            };
            regs[di.dst as usize] = out;
        }
        // The fuel boundary after the callee's straight-line body.
        if *insts > fuel {
            return Err(InterpError::OutOfFuel);
        }
        Ok(())
    }

    /// Interpreter-resolved taint intrinsics (parameter sources and test
    /// assertions).
    fn exec_intrinsic(&mut self, which: Intrinsic, argv: &[TVal]) -> Result<TVal, InterpError> {
        match which {
            Intrinsic::ParamI64 => {
                let idx = argv[0].as_i64() as usize;
                let (name, value) =
                    self.params.get(idx).cloned().ok_or_else(|| {
                        InterpError::Trap(format!("pt_param_i64: no param {idx}"))
                    })?;
                let label = if self.config.taint {
                    self.labels.base_label(&name)
                } else {
                    Label::EMPTY
                };
                Ok(TVal::from_i64(value).with_label(label))
            }
            Intrinsic::RegisterParam => {
                let addr = argv[0].as_addr();
                let idx = argv[1].as_i64() as usize;
                let (name, _) = self.params.get(idx).cloned().ok_or_else(|| {
                    InterpError::Trap(format!("pt_register_param: no param {idx}"))
                })?;
                if self.config.taint {
                    let label = self.labels.base_label(&name);
                    self.mem.set_label(addr, label)?;
                }
                Ok(TVal::UNTAINTED_ZERO)
            }
            Intrinsic::AssertHasParam => {
                if self.config.taint {
                    let idx = argv[1].as_i64() as usize;
                    if !self.labels.params_of(argv[0].label).contains(idx) {
                        return Err(InterpError::Trap(format!(
                            "taint assertion failed: value lacks parameter #{idx} (has {:?})",
                            self.labels.params_of(argv[0].label)
                        )));
                    }
                }
                Ok(TVal::UNTAINTED_ZERO)
            }
            Intrinsic::AssertNotParam => {
                if self.config.taint {
                    let idx = argv[1].as_i64() as usize;
                    if self.labels.params_of(argv[0].label).contains(idx) {
                        return Err(InterpError::Trap(format!(
                            "taint assertion failed: value unexpectedly carries parameter #{idx}"
                        )));
                    }
                }
                Ok(TVal::UNTAINTED_ZERO)
            }
            Intrinsic::LabelParams => {
                let set = self.labels.params_of(argv[0].label);
                Ok(TVal::from_i64(set.0 as i64))
            }
        }
    }

    /// Dispatch a non-intrinsic external to the handler. `ext_id` is
    /// `None` for `pt_*` work primitives (cost charged inline to the
    /// caller) and the pre-bound pseudo id for library routines (which get
    /// their own profile entries, §B1). `token` is the handler dispatch
    /// token pre-resolved at construction; symbols the handler does not
    /// resolve fall back to by-name dispatch.
    #[allow(clippy::too_many_arguments)]
    fn exec_host_call(
        &mut self,
        name: &str,
        token: Option<u32>,
        sym: u32,
        argv: &[TVal],
        caller: FunctionId,
        path: PathId,
        clock: &mut f64,
        child_time: &mut f64,
        ext_id: Option<FunctionId>,
    ) -> Result<TVal, InterpError> {
        // Record the parameters tainting the call's arguments — the library
        // database turns these into parametric dependencies of the caller
        // (the count-argument mechanism of §5.3). Unions are idempotent,
        // so a repeat of the previous `(caller, symbol, set)` triple skips
        // the string-keyed map (and its key allocation) outright.
        if self.config.taint {
            let mut pset = ParamSet::EMPTY;
            for a in argv {
                pset = pset.union(self.labels.params_of(a.label));
            }
            if !pset.is_empty() && self.extern_arg_memo != Some(((caller, sym), pset)) {
                let e = self
                    .records
                    .extern_args
                    .entry((caller, name.to_string()))
                    .or_default();
                *e = e.union(pset);
                self.extern_arg_memo = Some(((caller, sym), pset));
            }
        }

        let mut ctx = HostCtx {
            mem: &mut self.mem,
            labels: &mut self.labels,
            params: &self.params,
            taint: self.config.taint,
        };
        let called = match token {
            Some(t) => self.handler.call_token(t, argv, &mut ctx),
            None => self.handler.call(name, argv, &mut ctx),
        };
        let (ret, cost) = called.map_err(|message| InterpError::ExternalFailed {
            name: name.to_string(),
            message,
        })?;
        match ext_id {
            None => {
                *clock += cost;
                Ok(ret)
            }
            Some(ext_id) => {
                let probe = self
                    .config
                    .probe_cost
                    .get(ext_id.index())
                    .copied()
                    .unwrap_or(0.0);
                let total = cost + probe;
                *clock += total;
                *child_time += total;
                self.records.executed[ext_id.index()] = true;
                let ext_path = self.records.paths.intern(Some(path), ext_id);
                self.profile.record_call(ext_path, ext_id, total, total);
                Ok(ret)
            }
        }
    }
}
