//! The taint-propagating IR interpreter — a decode-once execution engine.
//!
//! This is the dynamic half of Perf-Taint (§5.2): where the original
//! instruments LLVM IR with DataFlowSanitizer and runs the native binary, we
//! interpret `pt-ir` and apply the same propagation rules per instruction:
//!
//! * **data flow** — every instruction result's label is the union of its
//!   operands' labels; loads union in the pointer's label (DFSan's
//!   `combine-pointer-labels-on-load`, on by default);
//! * **control flow** — the paper's DataFlowSanitizer extension: when a
//!   branch condition is tainted, a control scope is pushed that lasts until
//!   the branch block's immediate postdominator; values produced (policy
//!   [`CtlFlowPolicy::All`]) or stored (policy [`CtlFlowPolicy::StoresOnly`])
//!   inside the scope are joined with the scope's label. This captures the
//!   LULESH `regElemSize` histogram dependence shown in §5.2;
//! * **sinks** — every loop-exit branch condition (§4.1); records accumulate
//!   per *calling context*, so the modeler can build context-aware models;
//! * **sources** — the `pt_param_i64` / `pt_register_param` intrinsics (the
//!   paper's `register_variable`), plus whatever the external handler marks
//!   (the MPI library database writes the implicit parameter `p`).
//!
//! The interpreter simultaneously plays the role of the measurement
//! infrastructure: it maintains a simulated clock (per-instruction cost,
//! handler-returned costs for externals, per-function probe costs when
//! instrumented) and produces a call-path [`Profile`].
//!
//! ## Execution engine
//!
//! Unlike the original tree-walker (preserved as
//! [`crate::reference::ReferenceInterpreter`] for differential testing),
//! this engine never touches the [`pt_ir`] instruction tree at run time.
//! [`crate::prepared::PreparedModule`] carries a [`DecodedModule`] — a flat
//! bytecode with operands pre-resolved to register indices or inline
//! immediates, float-ness and result types folded into opcodes, callees
//! pre-bound, per-edge phi move lists, and loop/postdominator metadata
//! inlined into terminators (see [`crate::decode`]). The hot loop below is
//! a dense dispatch over that program, operating on a pooled flat register
//! file of [`TVal`]s, with consecutive back-edge bumps of the same loop
//! record buffered to avoid a map lookup per iteration. The contract with
//! the reference engine — bit-identical [`RunOutput`]s — is stated and
//! checked by [`crate::differential`].

use crate::decode::{DInst, DOp, DTerm, DecodedFunction, Edge, Intrinsic, Opnd};
use crate::host::{ExternalHandler, HostCtx};
use crate::label::{Label, LabelTable, ParamSet};
use crate::memory::{MemError, Memory, TVal};
use crate::path::PathId;
use crate::policy::{Measure, ParamPolicy, PolicyKind, PolicyMode, SecurityPolicy};
use crate::prepared::PreparedModule;
use crate::profile::Profile;
use crate::records::{LoopKey, TaintRecords};
use crate::tier::{self, TInst, ThreadedFunction, TierConfig, TierMode, TierPlan, TierStats};
use pt_ir::{BinOp, BlockId, FunctionId, Module};
use std::sync::Arc;

/// How control-flow taint is applied (ablation knob; the paper's extension
/// corresponds to `All`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CtlFlowPolicy {
    /// Pure data-flow DFSan: no control scopes.
    Off,
    /// Join the scope label only into stored values.
    StoresOnly,
    /// Join the scope label into every value produced in the scope.
    #[default]
    All,
}

/// Interpreter configuration for one run.
#[derive(Debug, Clone)]
pub struct InterpConfig {
    pub policy: CtlFlowPolicy,
    /// Simulated seconds per executed IR instruction.
    pub inst_cost: f64,
    /// Per-function probe cost in seconds (indexed by [`FunctionId`],
    /// including pseudo-ids for externals); empty slice = no instrumentation.
    pub probe_cost: Vec<f64>,
    /// Maximum number of instructions to execute.
    pub fuel: u64,
    /// Propagate taint and record sinks (the *taint run*). Measurement
    /// sweeps disable this for speed.
    pub taint: bool,
    /// Which label policy a taint run propagates ([`crate::policy`]);
    /// ignored when `taint` is false. Defaults read the `PT_POLICY`
    /// environment variable (mirroring `tier`/`PT_TIER`) so the whole
    /// test matrix can run under the security policy with no call-site
    /// changes.
    pub taint_policy: PolicyKind,
    /// Record branch coverage and visited blocks.
    pub coverage: bool,
    /// DFSan's combine-pointer-labels-on-load (default true).
    pub combine_ptr_labels: bool,
    /// Maximum call depth.
    pub max_depth: usize,
    /// Tier-1 specialization policy (see [`crate::tier`]). Defaults read
    /// the `PT_TIER` environment variable, so forcing or disabling
    /// tiering across a whole test binary needs no call-site changes.
    pub tier: TierConfig,
}

impl Default for InterpConfig {
    fn default() -> Self {
        InterpConfig {
            policy: CtlFlowPolicy::All,
            inst_cost: 1e-9,
            probe_cost: Vec::new(),
            fuel: u64::MAX,
            taint: true,
            taint_policy: PolicyKind::from_env(),
            coverage: true,
            combine_ptr_labels: true,
            max_depth: 256,
            tier: TierConfig::default(),
        }
    }
}

/// Failures during interpretation.
#[derive(Debug, Clone, PartialEq)]
pub enum InterpError {
    Mem(MemError),
    DivisionByZero {
        func: String,
    },
    UnknownExternal(String),
    ExternalFailed {
        name: String,
        message: String,
    },
    OutOfFuel,
    CallDepthExceeded,
    Trap(String),
    UnknownFunction(String),
    /// A function was entered with fewer arguments than parameters. Both
    /// engines check at frame setup, so a missing argument is a defined
    /// error rather than a read of garbage (or a panic).
    ArityMismatch {
        func: String,
        expected: usize,
        got: usize,
    },
    /// The label table ran out of capacity: more than 64 base labels, or
    /// 2^16 union nodes. A defined error (never a panic across the wire);
    /// the message is deterministic so both engines report it identically.
    LabelCapacity(String),
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::Mem(e) => write!(f, "memory error: {e}"),
            InterpError::DivisionByZero { func } => write!(f, "division by zero in {func}"),
            InterpError::UnknownExternal(n) => write!(f, "unknown external {n}"),
            InterpError::ExternalFailed { name, message } => {
                write!(f, "external {name} failed: {message}")
            }
            InterpError::OutOfFuel => write!(f, "out of fuel"),
            InterpError::CallDepthExceeded => write!(f, "call depth exceeded"),
            InterpError::Trap(m) => write!(f, "trap: {m}"),
            InterpError::UnknownFunction(n) => write!(f, "unknown function {n}"),
            InterpError::ArityMismatch {
                func,
                expected,
                got,
            } => {
                write!(
                    f,
                    "call to {func} with {got} arguments, expected {expected}"
                )
            }
            InterpError::LabelCapacity(m) => write!(f, "label capacity: {m}"),
        }
    }
}

impl std::error::Error for InterpError {}

impl From<MemError> for InterpError {
    fn from(e: MemError) -> Self {
        InterpError::Mem(e)
    }
}

/// Everything a run produces.
#[derive(Debug)]
pub struct RunOutput {
    pub ret: Option<TVal>,
    /// Final simulated clock (seconds).
    pub time: f64,
    /// Instructions executed.
    pub insts: u64,
    pub records: TaintRecords,
    pub profile: Profile,
    pub labels: LabelTable,
    /// What the execution tiers did (see [`crate::tier`]). Excluded from
    /// the differential output comparison: it describes *how* the run
    /// executed, never *what* it observed.
    pub tier: TierStats,
}

/// One pushed control-flow taint scope.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CtlScope {
    /// Scope closes when this block is entered (`None`: at function return).
    pub(crate) join: Option<BlockId>,
    /// Accumulated label (already unioned with the enclosing scope).
    pub(crate) label: Label,
}

/// Slots in the direct-mapped call-path intern cache (power of two).
const PATH_CACHE_SLOTS: usize = 64;

/// Stack-buffer capacity for call arguments; larger arities (none exist in
/// the corpus) fall back to a heap vector.
const ARG_BUF: usize = 8;

/// Resolve a pre-decoded operand against the frame's register file.
#[inline(always)]
fn resolve(op: Opnd, regs: &[TVal]) -> TVal {
    match op {
        Opnd::Reg(r) => regs[r as usize],
        Opnd::Imm(bits) => TVal {
            bits,
            label: Label::EMPTY,
        },
    }
}

/// Resolve a threaded operand: register read or pooled immediate.
///
/// Unchecked by design: every `TOp` in a [`ThreadedFunction`] was audited
/// against the frame size and pool length at specialize time
/// ([`ThreadedFunction::check_bounds`] — code that fails the audit is
/// never installed), and the dispatch guard in `exec_function` only
/// routes to the threaded executor when the live frame matches the
/// audited `nregs`. The `debug_assert`s re-state the audited invariants.
#[inline(always)]
fn tres(x: crate::tier::TOp, regs: &[TVal], consts: &[u64]) -> TVal {
    if x.is_const() {
        debug_assert!(x.index() < consts.len());
        TVal {
            bits: unsafe { *consts.get_unchecked(x.index()) },
            label: Label::EMPTY,
        }
    } else {
        debug_assert!(x.index() < regs.len());
        unsafe { *regs.get_unchecked(x.index()) }
    }
}

/// Read a pooled constant (strides). Audited like [`tres`].
#[inline(always)]
fn tconst(idx: u32, consts: &[u64]) -> u64 {
    debug_assert!((idx as usize) < consts.len());
    unsafe { *consts.get_unchecked(idx as usize) }
}

/// Resolve a decoded argument list into `$argv: &[TVal]` — a stack
/// buffer for the arities real call sites have, a heap vector beyond
/// [`ARG_BUF`]. A macro because the buffer must live in the match arm's
/// scope while several call kinds (in the general loop, the inlined-body
/// loop, and the threaded executor) share the logic.
macro_rules! resolve_argv {
    ($args:expr, $regs:expr, $argv:ident) => {
        // Arity-specialized buffers: most host/work primitives take
        // 0–2 arguments, and fully initializing the 8-slot buffer
        // per call was a measurable memset on the hot path.
        let b1: [TVal; 1];
        let b2: [TVal; 2];
        let b8: [TVal; ARG_BUF];
        let big: Vec<TVal>;
        let $argv: &[TVal] = match $args.len() {
            0 => &[],
            1 => {
                b1 = [resolve($args[0], $regs)];
                &b1
            }
            2 => {
                b2 = [resolve($args[0], $regs), resolve($args[1], $regs)];
                &b2
            }
            n if n <= ARG_BUF => {
                b8 = std::array::from_fn(|i| {
                    if i < n {
                        resolve($args[i], $regs)
                    } else {
                        TVal::UNTAINTED_ZERO
                    }
                });
                &b8[..n]
            }
            _ => {
                big = $args.iter().map(|&a| resolve(a, $regs)).collect();
                &big
            }
        };
    };
}

/// The interpreter. Holds per-run mutable state; construct one per run.
pub struct Interpreter<'m, H: ExternalHandler> {
    module: &'m Module,
    prepared: &'m PreparedModule,
    handler: H,
    config: InterpConfig,
    params: Vec<(String, i64)>,
    labels: LabelTable,
    mem: Memory,
    records: TaintRecords,
    profile: Profile,
    clock: f64,
    insts: u64,
    depth: usize,
    /// Frame pools: returned register files / scope stacks / argument
    /// vectors are reused across calls so the many small accessor calls of
    /// real programs do not allocate per frame.
    reg_pool: Vec<Vec<TVal>>,
    ctl_pool: Vec<Vec<CtlScope>>,
    /// Staging buffer for phi parallel copies (read-all-then-write).
    phi_stage: Vec<(u32, TVal)>,
    /// Direct-mapped memo over `records.paths.intern` (pure memoization:
    /// the table's answer for a `(parent, callee)` pair never changes), so
    /// repeated calls to the same callee skip the hash lookup.
    path_cache: Vec<Option<(Option<PathId>, FunctionId, PathId)>>,
    /// Consecutive back-edge bumps of one loop record, buffered so the hot
    /// loop pays one map lookup per *run* of iterations, not per iteration.
    iter_buf: Option<(LoopKey, u64)>,
    /// Last sink update applied: loop-exit conditions re-union the same
    /// parameter set every iteration, and the union is idempotent — a
    /// repeat of the previous `(key, set)` pair can be skipped outright.
    sink_memo: Option<(LoopKey, ParamSet)>,
    /// Consecutive coverage updates of one tainted branch, buffered like
    /// `iter_buf` (a loop's exit branch is hit once per iteration).
    branch_buf: Option<((FunctionId, BlockId), crate::records::BranchRecord)>,
    /// Handler dispatch tokens for host primitives, indexed by
    /// [`crate::decode::DecodedModule::host_prim_names`] — resolved once
    /// per run so the hot path never string-matches a symbol.
    prim_tokens: Vec<Option<u32>>,
    /// Same, for library externals (indexed by extern index).
    lib_tokens: Vec<Option<u32>>,
    /// Last extern-argument record applied, keyed by `(caller, symbol)`
    /// (symbol = prim/extern index, kind-tagged in the low bit). Work
    /// calls inside loops re-union the same parameter set every
    /// iteration and the union is idempotent, so a repeat skips the
    /// string-keyed map entirely.
    extern_arg_memo: Option<((FunctionId, u32), ParamSet)>,
    /// Tier-1 threaded code per internal function ([`crate::tier`]);
    /// `None` runs the general engine. Filled up front in
    /// [`TierMode::Force`], on the hotness threshold in
    /// [`TierMode::Warmup`], or by [`Interpreter::set_tier`].
    tier_funcs: Vec<Option<Arc<ThreadedFunction>>>,
    /// Per internal function: untainted fast path enabled.
    tier_fast: Vec<bool>,
    /// Live per-function call counts (the warmup hotness signal).
    tier_calls: Vec<u64>,
    /// Fast-path guard-check counter for [`TierConfig::deopt_every`].
    tier_guard: u64,
    tier_stats: TierStats,
}

impl<'m, H: ExternalHandler> Interpreter<'m, H> {
    pub fn new(
        module: &'m Module,
        prepared: &'m PreparedModule,
        handler: H,
        params: Vec<(String, i64)>,
        config: InterpConfig,
    ) -> Self {
        let mut labels = LabelTable::new();
        // Pre-intern the marked parameters so parameter index == position.
        for (name, _) in &params {
            labels.base_label(name);
        }
        let nexterns = prepared.decoded.extern_names.len();
        let nfuncs = module.functions.len() + nexterns;
        let blocks_per_func: Vec<usize> = module
            .functions
            .iter()
            .map(|f| f.blocks.len())
            .chain(std::iter::repeat_n(0, nexterns))
            .collect();
        let prim_tokens = prepared
            .decoded
            .host_prim_names
            .iter()
            .map(|n| handler.resolve(n))
            .collect();
        let lib_tokens = prepared
            .decoded
            .extern_names
            .iter()
            .map(|n| handler.resolve(n))
            .collect();
        let ninternal = module.functions.len();
        let (tier_funcs, tier_fast, tier_specialized) = match config.tier.mode {
            TierMode::Force => {
                let spec = tier::specialize(
                    &prepared.decoded,
                    &TierPlan::all(ninternal),
                    &config.tier,
                    None,
                );
                (spec.funcs, spec.fast_ok, spec.specialized)
            }
            _ => (vec![None; ninternal], vec![false; ninternal], 0),
        };
        Interpreter {
            module,
            prepared,
            handler,
            config,
            params,
            labels,
            mem: Memory::new(),
            records: TaintRecords::new(nfuncs, &blocks_per_func),
            profile: Profile::new(),
            clock: 0.0,
            insts: 0,
            depth: 0,
            reg_pool: Vec::new(),
            ctl_pool: Vec::new(),
            phi_stage: Vec::new(),
            path_cache: vec![None; PATH_CACHE_SLOTS],
            iter_buf: None,
            sink_memo: None,
            branch_buf: None,
            prim_tokens,
            lib_tokens,
            extern_arg_memo: None,
            tier_funcs,
            tier_fast,
            tier_calls: vec![0; ninternal],
            tier_guard: 0,
            tier_stats: TierStats {
                specialized: tier_specialized as u64,
                ..TierStats::default()
            },
        }
    }

    /// Install a prebuilt tier-1 artifact (the session warmup path):
    /// every specialized function dispatches through its threaded code /
    /// fast path from the first call of this run.
    pub fn set_tier(&mut self, spec: &tier::SpecializedModule) {
        self.tier_funcs = spec.funcs.clone();
        self.tier_fast = spec.fast_ok.clone();
        self.tier_stats.specialized = spec.specialized as u64;
    }

    /// The pseudo [`FunctionId`] of external `name`, if it is called anywhere.
    pub fn extern_id(&self, name: &str) -> Option<FunctionId> {
        self.prepared
            .decoded
            .extern_names
            .iter()
            .position(|n| n == name)
            .map(|i| FunctionId((self.module.functions.len() + i) as u32))
    }

    /// Resolve a [`FunctionId`] (internal or pseudo-external) to its name.
    pub fn id_name(&self, id: FunctionId) -> String {
        let n = self.module.functions.len();
        if id.index() < n {
            self.module.function(id).name.clone()
        } else {
            self.prepared.decoded.extern_names[id.index() - n].clone()
        }
    }

    /// Run `entry` with the given (untainted) integer arguments.
    ///
    /// Dispatches to one of the policy-monomorphized engines: the paper's
    /// parameter-label policy, the security policy, or the measurement
    /// mode (`taint: false`) in which label propagation, shadow-label
    /// combining, control scopes, and record taint-merging compile out
    /// of the hot loop entirely ([`crate::policy`]).
    pub fn run(mut self, entry: FunctionId, args: &[i64]) -> Result<RunOutput, InterpError> {
        let argv: Vec<TVal> = args.iter().map(|&a| TVal::from_i64(a)).collect();
        let (ret, _incl) = match (self.config.taint, self.config.taint_policy) {
            (false, _) => self.exec_function::<Measure>(entry, &argv, None, Label::EMPTY)?,
            (true, PolicyKind::ParamSet) => {
                self.exec_function::<ParamPolicy>(entry, &argv, None, Label::EMPTY)?
            }
            (true, PolicyKind::Security) => {
                self.exec_function::<SecurityPolicy>(entry, &argv, None, Label::EMPTY)?
            }
        };
        self.flush_iterations();
        self.flush_branches();
        // Label-capacity overflow is a defined error, not a panic: base
        // labels introduced through infallible paths (host handlers, the
        // constructor's pre-intern) and exhausted union allocations latch
        // the table's capacity flag; both engines surface it identically.
        if let Some(msg) = self.labels.capacity_error() {
            return Err(InterpError::LabelCapacity(msg.to_string()));
        }
        Ok(RunOutput {
            ret,
            time: self.clock,
            insts: self.insts,
            records: self.records,
            profile: self.profile,
            labels: self.labels,
            tier: self.tier_stats,
        })
    }

    /// Run the function named `entry`.
    pub fn run_named(self, entry: &str, args: &[i64]) -> Result<RunOutput, InterpError> {
        let fid = self
            .module
            .function_by_name(entry)
            .ok_or_else(|| InterpError::UnknownFunction(entry.to_string()))?;
        self.run(fid, args)
    }

    /// Label union, compiled out of the measurement-mode engine: with
    /// `P::TAINT == false` every call collapses to `Label::EMPTY` at
    /// monomorphization time and the label table is never touched.
    #[inline(always)]
    fn union_t<P: PolicyMode>(&mut self, a: Label, b: Label) -> Label {
        if !P::TAINT {
            return Label::EMPTY;
        }
        self.labels.union(a, b)
    }

    #[inline]
    fn bump_iterations(&mut self, key: LoopKey) {
        match &mut self.iter_buf {
            Some((k, n)) if *k == key => *n += 1,
            _ => {
                self.flush_iterations();
                self.iter_buf = Some((key, 1));
            }
        }
    }

    fn flush_iterations(&mut self) {
        if let Some((key, n)) = self.iter_buf.take() {
            self.records.loops.entry(key).or_default().iterations += n;
        }
    }

    /// Union `pset` into the sink record for `key`, skipping the map
    /// lookup when the previous sink update was the identical (idempotent)
    /// pair.
    #[inline]
    fn record_sink(&mut self, key: LoopKey, pset: ParamSet) {
        if self.sink_memo == Some((key, pset)) {
            return;
        }
        let rec = self.records.loops.entry(key).or_default();
        rec.params = rec.params.union(pset);
        self.sink_memo = Some((key, pset));
    }

    /// Accumulate coverage of one tainted branch, buffered across
    /// consecutive hits of the same branch.
    #[inline]
    fn record_branch(&mut self, key: (FunctionId, BlockId), pset: ParamSet, taken: bool) {
        match &mut self.branch_buf {
            Some((k, rec)) if *k == key => {
                rec.params = rec.params.union(pset);
                if taken {
                    rec.taken_true += 1;
                } else {
                    rec.taken_false += 1;
                }
            }
            _ => {
                self.flush_branches();
                let mut rec = crate::records::BranchRecord {
                    params: pset,
                    ..Default::default()
                };
                if taken {
                    rec.taken_true = 1;
                } else {
                    rec.taken_false = 1;
                }
                self.branch_buf = Some((key, rec));
            }
        }
    }

    fn flush_branches(&mut self) {
        if let Some((key, buf)) = self.branch_buf.take() {
            let rec = self.records.branches.entry(key).or_default();
            rec.params = rec.params.union(buf.params);
            rec.taken_true += buf.taken_true;
            rec.taken_false += buf.taken_false;
        }
    }

    /// `records.paths.intern` behind a direct-mapped cache keyed by the
    /// callee id's low bits.
    #[inline]
    fn intern_path(&mut self, parent: Option<PathId>, fid: FunctionId) -> PathId {
        let slot = fid.0 as usize & (PATH_CACHE_SLOTS - 1);
        if let Some((p, f, path)) = self.path_cache[slot] {
            if p == parent && f == fid {
                return path;
            }
        }
        let path = self.records.paths.intern(parent, fid);
        self.path_cache[slot] = Some((parent, fid, path));
        path
    }

    fn exec_function<P: PolicyMode>(
        &mut self,
        fid: FunctionId,
        args: &[TVal],
        parent: Option<PathId>,
        inherited_ctx: Label,
    ) -> Result<(Option<TVal>, f64), InterpError> {
        self.depth += 1;
        if self.depth > self.config.max_depth {
            self.depth -= 1;
            return Err(InterpError::CallDepthExceeded);
        }
        // Tier dispatch: count the call, specialize on the hotness
        // threshold (warmup mode), and route through the threaded code
        // when the function has some. Both tiers produce bit-identical
        // outputs, so the choice here is pure policy.
        let i = fid.index();
        if i < self.tier_calls.len() {
            self.tier_calls[i] += 1;
            if self.config.tier.mode == TierMode::Warmup
                && self.tier_calls[i] == self.config.tier.hot_calls.max(1)
            {
                self.respecialize(fid);
            }
        }
        let tf = self.tier_funcs.get(i).and_then(Clone::clone);
        let result = match tf {
            // Frame-shape guard: the threaded code's operand indices were
            // audited against its `nregs` at specialize time, and the
            // executor's register access is unchecked on that basis. A
            // mismatched artifact (wrong module via `set_tier`) falls
            // back to the general loop instead.
            Some(tf) if tf.nregs as usize == self.prepared.decoded.func(fid).nregs => {
                self.exec_function_threaded::<P>(&tf, fid, args, parent, inherited_ctx)
            }
            _ => self.exec_function_inner::<P>(fid, args, parent, inherited_ctx),
        };
        self.depth -= 1;
        result
    }

    /// Specialize `fid` mid-run (the warmup→hot transition). The branch
    /// coverage accumulated *so far in this very run* biases the threaded
    /// layout — re-specialization from live evidence, not just a prior
    /// run's. Flushing the branch buffer first is observation-neutral
    /// (the flush is an additive merge that happens at run end anyway).
    fn respecialize(&mut self, fid: FunctionId) {
        let prepared: &'m PreparedModule = self.prepared;
        let f = prepared.decoded.func(fid);
        if !f.ssa_clean {
            return;
        }
        let i = fid.index();
        let mut any = false;
        if self.config.tier.fast_path && !self.tier_fast[i] {
            self.tier_fast[i] = true;
            any = true;
        }
        if self.config.tier.threaded && self.tier_funcs[i].is_none() {
            let _span = pt_util::trace::span("tier", "respecialize");
            self.flush_branches();
            let tf =
                tier::compile_function(f, fid, Some(&self.records.branches), &self.config.tier);
            // Same bounds audit as `tier::specialize`: unverifiable code
            // stays on the general loop.
            if tf.check_bounds() {
                self.tier_funcs[i] = Some(Arc::new(tf));
                any = true;
            }
        }
        if any {
            self.tier_stats.respecialized += 1;
        }
    }

    fn exec_function_inner<P: PolicyMode>(
        &mut self,
        fid: FunctionId,
        args: &[TVal],
        parent: Option<PathId>,
        inherited_ctx: Label,
    ) -> Result<(Option<TVal>, f64), InterpError> {
        debug_assert_eq!(P::TAINT, self.config.taint);
        // Reborrow through the `'m` reference so the decoded program can be
        // held across `&mut self` calls.
        let prepared: &'m PreparedModule = self.prepared;
        let dfunc: &'m DecodedFunction = prepared.decoded.func(fid);
        // A missing argument is a defined error in both engines (shared
        // differential behavior; previously the engines diverged here).
        if args.len() < dfunc.nparams {
            return Err(InterpError::ArityMismatch {
                func: dfunc.name.clone(),
                expected: dfunc.nparams,
                got: args.len(),
            });
        }
        let path = self.intern_path(parent, fid);
        self.records.executed[fid.index()] = true;

        // Hot per-instruction state lives in locals, synced with `self`
        // around calls, so the dispatch loop keeps it in registers. The
        // f64 additions happen in exactly the reference engine's order —
        // only the storage location differs — so the clock stays
        // bit-identical.
        let inst_cost = self.config.inst_cost;
        let fuel = self.config.fuel;
        let policy = self.config.policy;
        let coverage = self.config.coverage;
        let combine_ptr = P::TAINT && self.config.combine_ptr_labels;
        let store_ctx = P::TAINT && policy != CtlFlowPolicy::Off;
        let mut insts = self.insts;
        let mut clock = self.clock;

        let t_enter = clock;
        // Probe cost: charged to this function's exclusive time when the
        // measurement filter instruments it.
        if let Some(&probe) = self.config.probe_cost.get(fid.index()) {
            clock += probe;
        }
        let mut child_time = 0.0f64;

        let frame_mark = self.mem.mark();
        let mut regs = self.reg_pool.pop().unwrap_or_default();
        if dfunc.ssa_clean {
            // Definitions dominate uses (verified at decode time), so no
            // register is ever read before this frame writes it: stale
            // pooled contents are unobservable and the per-call frame
            // clear is skipped.
            regs.resize(dfunc.nregs, TVal::UNTAINTED_ZERO);
        } else {
            regs.clear();
            regs.resize(dfunc.nregs, TVal::UNTAINTED_ZERO);
        }
        // Arity was checked on entry; register allocation pins parameters
        // to the first `nparams` frame slots, so this stays one memcpy.
        regs[..dfunc.nparams].copy_from_slice(&args[..dfunc.nparams]);

        // Control-flow taint scopes. The inherited scope (from tainted
        // control in the caller) never pops within this frame.
        let mut ctl = self.ctl_pool.pop().unwrap_or_default();
        ctl.clear();
        let base_ctx = if policy == CtlFlowPolicy::Off {
            Label::EMPTY
        } else {
            inherited_ctx
        };

        // ---- tier-1 untainted fast-path engage -------------------------
        // Sound guard, never predictive (the Taint Rabbit move): enter
        // label-free execution only when the inherited control context and
        // every argument are untainted. While engaged, every register in
        // flight is label-free by induction — fast arms only write empty
        // labels, loads peek and bail on a tainted shadow word, and call
        // results are guarded after the write — so skipping the statically
        // EMPTY∪EMPTY unions is bit-identical (they early-out without
        // touching the label table). Any bail ("deopt") hands the block to
        // the general loop at an instruction boundary.
        let mut fast = P::TAINT
            && base_ctx.is_empty()
            && self.tier_fast.get(fid.index()).copied().unwrap_or(false)
            && args[..dfunc.nparams].iter().all(|a| a.label.is_empty());
        let deopt_every = if fast {
            self.config.tier.deopt_every
        } else {
            0
        };
        if fast {
            self.tier_stats.fast_entries += 1;
        }

        let mut block = dfunc.entry;
        let ret_val: Option<TVal>;
        // Base of this function's flat visit flags, hoisted so the
        // per-block mark is one bounds check and one store.
        let vb_base = self.records.visited_blocks.offset(fid);

        'blocks: loop {
            if coverage {
                self.records.visited_blocks.set(vb_base + block.index());
            }
            // The phi moves of the edge just taken already ran (at the
            // branch site, under the pre-pop scope stack — the value choice
            // is the control-dependent act); now scopes joining here close.
            if insts > fuel {
                return Err(InterpError::OutOfFuel);
            }
            while matches!(ctl.last(), Some(s) if s.join == Some(block)) {
                ctl.pop();
            }

            // The control context is constant across a straight-line run:
            // scopes only push at conditional branches and pop at block
            // entries.
            let ctx = if store_ctx {
                ctl.last().map_or(base_ctx, |s| s.label)
            } else {
                Label::EMPTY
            };
            let apply_all = P::TAINT && policy == CtlFlowPolicy::All && !ctx.is_empty();

            let dblock = &dfunc.blocks[block.index()];

            // ---- tier-1 fast path ---------------------------------------
            // Label-free execution of this block. `deopt_to` is where the
            // general loop takes over: the deopting instruction itself when
            // it has had no effects yet (counters untouched — the general
            // loop re-executes it identically), or one past it when it
            // completed (call-result guard). A deopt is sticky for the rest
            // of the frame.
            let mut start = 0usize;
            if fast {
                debug_assert!(ctx.is_empty(), "fast mode implies empty control context");
                let fast_mark = insts;
                let mut deopt_to: Option<usize> = None;
                let mut k = 0usize;
                'fast: while k < dblock.insts.len() {
                    if deopt_every != 0 {
                        self.tier_guard += 1;
                        if self.tier_guard >= deopt_every {
                            self.tier_guard = 0;
                            deopt_to = Some(k);
                            break 'fast;
                        }
                    }
                    let di = &dblock.insts[k];
                    match &di.op {
                        DOp::Const { bits } => {
                            insts += 1;
                            clock += inst_cost;
                            regs[di.dst as usize] = TVal {
                                bits: *bits,
                                label: Label::EMPTY,
                            };
                        }
                        DOp::BinI { op, a, b } => {
                            insts += 1;
                            clock += inst_cost;
                            let a = resolve(*a, &regs);
                            let b = resolve(*b, &regs);
                            let (x, y) = (a.as_i64(), b.as_i64());
                            let r = match op {
                                BinOp::Add => x.wrapping_add(y),
                                BinOp::Sub => x.wrapping_sub(y),
                                BinOp::Mul => x.wrapping_mul(y),
                                BinOp::Div => {
                                    if y == 0 {
                                        return Err(InterpError::DivisionByZero {
                                            func: dfunc.name.clone(),
                                        });
                                    }
                                    x.wrapping_div(y)
                                }
                                BinOp::Rem => {
                                    if y == 0 {
                                        return Err(InterpError::DivisionByZero {
                                            func: dfunc.name.clone(),
                                        });
                                    }
                                    x.wrapping_rem(y)
                                }
                                BinOp::And => x & y,
                                BinOp::Or => x | y,
                                BinOp::Xor => x ^ y,
                                BinOp::Shl => crate::ops::shl_i64(x, y),
                                BinOp::Shr => crate::ops::shr_i64(x, y),
                                BinOp::Min => x.min(y),
                                BinOp::Max => x.max(y),
                            };
                            regs[di.dst as usize] = TVal {
                                bits: r as u64,
                                label: Label::EMPTY,
                            };
                        }
                        DOp::BinF { op, a, b } => {
                            insts += 1;
                            clock += inst_cost;
                            let a = resolve(*a, &regs);
                            let b = resolve(*b, &regs);
                            let (x, y) = (a.as_f64(), b.as_f64());
                            let r = match op {
                                BinOp::Add => x + y,
                                BinOp::Sub => x - y,
                                BinOp::Mul => x * y,
                                BinOp::Div => x / y,
                                BinOp::Rem => x % y,
                                BinOp::Min => x.min(y),
                                BinOp::Max => x.max(y),
                                _ => unreachable!("bitwise float ops decode to Trap"),
                            };
                            regs[di.dst as usize] = TVal {
                                bits: r.to_bits(),
                                label: Label::EMPTY,
                            };
                        }
                        DOp::NegI { a } => {
                            insts += 1;
                            clock += inst_cost;
                            let a = resolve(*a, &regs);
                            regs[di.dst as usize] = TVal {
                                bits: a.as_i64().wrapping_neg() as u64,
                                label: Label::EMPTY,
                            };
                        }
                        DOp::NegF { a } => {
                            insts += 1;
                            clock += inst_cost;
                            let a = resolve(*a, &regs);
                            regs[di.dst as usize] = TVal {
                                bits: (-a.as_f64()).to_bits(),
                                label: Label::EMPTY,
                            };
                        }
                        DOp::NotBool { a } => {
                            insts += 1;
                            clock += inst_cost;
                            let a = resolve(*a, &regs);
                            regs[di.dst as usize] = TVal {
                                bits: (a.bits == 0) as u64,
                                label: Label::EMPTY,
                            };
                        }
                        DOp::NotInt { a } => {
                            insts += 1;
                            clock += inst_cost;
                            let a = resolve(*a, &regs);
                            regs[di.dst as usize] = TVal {
                                bits: !a.as_i64() as u64,
                                label: Label::EMPTY,
                            };
                        }
                        DOp::IntToFloat { a } => {
                            insts += 1;
                            clock += inst_cost;
                            let a = resolve(*a, &regs);
                            regs[di.dst as usize] = TVal {
                                bits: (a.as_i64() as f64).to_bits(),
                                label: Label::EMPTY,
                            };
                        }
                        DOp::FloatToInt { a } => {
                            insts += 1;
                            clock += inst_cost;
                            let a = resolve(*a, &regs);
                            let f = a.as_f64();
                            let clamped = if f.is_nan() {
                                0
                            } else {
                                f.clamp(i64::MIN as f64, i64::MAX as f64) as i64
                            };
                            regs[di.dst as usize] = TVal {
                                bits: clamped as u64,
                                label: Label::EMPTY,
                            };
                        }
                        DOp::Sqrt { a } => {
                            insts += 1;
                            clock += inst_cost;
                            let a = resolve(*a, &regs);
                            regs[di.dst as usize] = TVal {
                                bits: a.as_f64().max(0.0).sqrt().to_bits(),
                                label: Label::EMPTY,
                            };
                        }
                        DOp::AbsI { a } => {
                            insts += 1;
                            clock += inst_cost;
                            let a = resolve(*a, &regs);
                            regs[di.dst as usize] = TVal {
                                bits: a.as_i64().wrapping_abs() as u64,
                                label: Label::EMPTY,
                            };
                        }
                        DOp::AbsF { a } => {
                            insts += 1;
                            clock += inst_cost;
                            let a = resolve(*a, &regs);
                            regs[di.dst as usize] = TVal {
                                bits: a.as_f64().abs().to_bits(),
                                label: Label::EMPTY,
                            };
                        }
                        DOp::CmpI { pred, a, b } => {
                            insts += 1;
                            clock += inst_cost;
                            let a = resolve(*a, &regs);
                            let b = resolve(*b, &regs);
                            regs[di.dst as usize] = TVal {
                                bits: pred.eval(a.as_i64(), b.as_i64()) as u64,
                                label: Label::EMPTY,
                            };
                        }
                        DOp::CmpF { pred, a, b } => {
                            insts += 1;
                            clock += inst_cost;
                            let a = resolve(*a, &regs);
                            let b = resolve(*b, &regs);
                            regs[di.dst as usize] = TVal {
                                bits: pred.eval(a.as_f64(), b.as_f64()) as u64,
                                label: Label::EMPTY,
                            };
                        }
                        DOp::Select { c, t, e } => {
                            insts += 1;
                            clock += inst_cost;
                            let c = resolve(*c, &regs);
                            let chosen = if c.as_bool() {
                                resolve(*t, &regs)
                            } else {
                                resolve(*e, &regs)
                            };
                            regs[di.dst as usize] = TVal {
                                bits: chosen.bits,
                                label: Label::EMPTY,
                            };
                        }
                        DOp::Alloca { words } => {
                            insts += 1;
                            clock += inst_cost;
                            let n = resolve(*words, &regs).as_i64();
                            if n < 0 {
                                return Err(InterpError::Trap(format!(
                                    "negative alloca in {}",
                                    dfunc.name
                                )));
                            }
                            let addr = self.mem.alloc(n as usize);
                            regs[di.dst as usize] = TVal::from_i64(addr as i64);
                        }
                        DOp::Load { addr } => {
                            // Peek before retiring (`Memory::load` is
                            // pure): a tainted shadow word or a memory
                            // error deopts with no counters touched, and
                            // the general loop re-executes identically.
                            let a = resolve(*addr, &regs);
                            match self.mem.load(a.as_addr()) {
                                Ok(v) if v.label.is_empty() => {
                                    insts += 1;
                                    clock += inst_cost;
                                    regs[di.dst as usize] = v;
                                }
                                _ => {
                                    deopt_to = Some(k);
                                    break 'fast;
                                }
                            }
                        }
                        DOp::Store { addr, value } => {
                            insts += 1;
                            clock += inst_cost;
                            let a = resolve(*addr, &regs);
                            let v = resolve(*value, &regs);
                            self.mem.store(a.as_addr(), v)?;
                            regs[di.dst as usize] = TVal::UNTAINTED_ZERO;
                        }
                        DOp::Gep {
                            base,
                            index,
                            stride,
                        } => {
                            insts += 1;
                            clock += inst_cost;
                            let b = resolve(*base, &regs);
                            let i = resolve(*index, &regs);
                            let addr = b.as_i64().wrapping_add(i.as_i64().wrapping_mul(*stride));
                            regs[di.dst as usize] = TVal {
                                bits: addr as u64,
                                label: Label::EMPTY,
                            };
                        }
                        DOp::LoadIdx {
                            base,
                            index,
                            stride,
                        } => {
                            let b = resolve(*base, &regs);
                            let i = resolve(*index, &regs);
                            let addr = b.as_i64().wrapping_add(i.as_i64().wrapping_mul(*stride));
                            match self.mem.load(addr as u64 as usize) {
                                Ok(v) if v.label.is_empty() => {
                                    // Fused gep+load retires both halves.
                                    insts += 1;
                                    clock += inst_cost;
                                    insts += 1;
                                    clock += inst_cost;
                                    regs[di.dst as usize] = v;
                                }
                                _ => {
                                    deopt_to = Some(k);
                                    break 'fast;
                                }
                            }
                        }
                        DOp::StoreIdx {
                            base,
                            index,
                            stride,
                            value,
                        } => {
                            insts += 1;
                            clock += inst_cost;
                            let b = resolve(*base, &regs);
                            let i = resolve(*index, &regs);
                            let addr = b.as_i64().wrapping_add(i.as_i64().wrapping_mul(*stride));
                            insts += 1;
                            clock += inst_cost;
                            let v = resolve(*value, &regs);
                            self.mem.store(addr as u64 as usize, v)?;
                            regs[di.dst as usize] = TVal::UNTAINTED_ZERO;
                        }
                        DOp::CallInternal { callee, args } => {
                            // Calls run exactly as in the general loop
                            // (args are all label-free, so the records
                            // they produce are identical); the result is
                            // written, then guarded — a tainted return
                            // deopts to the *next* instruction.
                            insts += 1;
                            clock += inst_cost;
                            resolve_argv!(args, &regs, argv);
                            self.insts = insts;
                            self.clock = clock;
                            let (ret, incl) =
                                self.exec_function::<P>(*callee, argv, Some(path), ctx)?;
                            insts = self.insts;
                            clock = self.clock;
                            child_time += incl;
                            let out = ret.unwrap_or(TVal::UNTAINTED_ZERO);
                            regs[di.dst as usize] = out;
                            if !out.label.is_empty() {
                                deopt_to = Some(k + 1);
                                break 'fast;
                            }
                        }
                        DOp::CallInlined {
                            callee,
                            entry,
                            body,
                            ret,
                        } => {
                            insts += 1;
                            clock += inst_cost;
                            let out = self.exec_inlined::<P>(
                                *callee,
                                *entry,
                                body,
                                *ret,
                                &mut regs,
                                &mut insts,
                                &mut clock,
                                &mut child_time,
                                path,
                                ctx,
                                apply_all,
                                store_ctx,
                                combine_ptr,
                                coverage,
                                fuel,
                                inst_cost,
                            )?;
                            regs[di.dst as usize] = out;
                            if !out.label.is_empty() {
                                deopt_to = Some(k + 1);
                                break 'fast;
                            }
                        }
                        DOp::CallIntrinsic { which, args } => {
                            insts += 1;
                            clock += inst_cost;
                            resolve_argv!(args, &regs, argv);
                            let out = self.exec_intrinsic::<P>(*which, argv)?;
                            regs[di.dst as usize] = out;
                            if !out.label.is_empty() {
                                deopt_to = Some(k + 1);
                                break 'fast;
                            }
                        }
                        DOp::CallHostPrim { name, prim, args } => {
                            insts += 1;
                            clock += inst_cost;
                            resolve_argv!(args, &regs, argv);
                            let token = self.prim_tokens[*prim as usize];
                            let out = self.exec_host_call(
                                name,
                                token,
                                *prim << 1,
                                argv,
                                fid,
                                path,
                                &mut clock,
                                &mut child_time,
                                None,
                            )?;
                            regs[di.dst as usize] = out;
                            if !out.label.is_empty() {
                                deopt_to = Some(k + 1);
                                break 'fast;
                            }
                        }
                        DOp::CallLibrary { name, ext_id, args } => {
                            insts += 1;
                            clock += inst_cost;
                            resolve_argv!(args, &regs, argv);
                            let ext_index = ext_id.index() - self.module.functions.len();
                            let token = self.lib_tokens[ext_index];
                            let out = self.exec_host_call(
                                name,
                                token,
                                (ext_index as u32) << 1 | 1,
                                argv,
                                fid,
                                path,
                                &mut clock,
                                &mut child_time,
                                Some(*ext_id),
                            )?;
                            regs[di.dst as usize] = out;
                            if !out.label.is_empty() {
                                deopt_to = Some(k + 1);
                                break 'fast;
                            }
                        }
                        DOp::Trap { message } => {
                            // The general loop bumps counters before the
                            // trap, but its local copies die with the error
                            // return too — errors carry no `RunOutput`.
                            return Err(InterpError::Trap(message.to_string()));
                        }
                    }
                    k += 1;
                }
                self.tier_stats.fast_insts += insts - fast_mark;
                match deopt_to {
                    // Fast path completed the block; skip the general loop.
                    None => start = dblock.insts.len(),
                    Some(r) => {
                        self.tier_stats.fast_deopts += 1;
                        fast = false;
                        start = r;
                    }
                }
            }

            for di in dblock.insts[start..].iter() {
                insts += 1;
                clock += inst_cost;
                let out: TVal = match &di.op {
                    DOp::Const { bits } => {
                        // Folded constant: the original op's operands were
                        // all immediates, so its label was the union of
                        // empty labels — empty, with no table mutation
                        // (the union early-outs). The shared apply-all
                        // tail below still joins the control context,
                        // exactly like the unfolded op.
                        TVal {
                            bits: *bits,
                            label: Label::EMPTY,
                        }
                    }
                    DOp::BinI { op, a, b } => {
                        let a = resolve(*a, &regs);
                        let b = resolve(*b, &regs);
                        let label = self.union_t::<P>(a.label, b.label);
                        let (x, y) = (a.as_i64(), b.as_i64());
                        let r = match op {
                            BinOp::Add => x.wrapping_add(y),
                            BinOp::Sub => x.wrapping_sub(y),
                            BinOp::Mul => x.wrapping_mul(y),
                            BinOp::Div => {
                                if y == 0 {
                                    return Err(InterpError::DivisionByZero {
                                        func: dfunc.name.clone(),
                                    });
                                }
                                x.wrapping_div(y)
                            }
                            BinOp::Rem => {
                                if y == 0 {
                                    return Err(InterpError::DivisionByZero {
                                        func: dfunc.name.clone(),
                                    });
                                }
                                x.wrapping_rem(y)
                            }
                            BinOp::And => x & y,
                            BinOp::Or => x | y,
                            BinOp::Xor => x ^ y,
                            BinOp::Shl => crate::ops::shl_i64(x, y),
                            BinOp::Shr => crate::ops::shr_i64(x, y),
                            BinOp::Min => x.min(y),
                            BinOp::Max => x.max(y),
                        };
                        TVal {
                            bits: r as u64,
                            label,
                        }
                    }
                    DOp::BinF { op, a, b } => {
                        let a = resolve(*a, &regs);
                        let b = resolve(*b, &regs);
                        let label = self.union_t::<P>(a.label, b.label);
                        let (x, y) = (a.as_f64(), b.as_f64());
                        let r = match op {
                            BinOp::Add => x + y,
                            BinOp::Sub => x - y,
                            BinOp::Mul => x * y,
                            BinOp::Div => x / y,
                            BinOp::Rem => x % y,
                            BinOp::Min => x.min(y),
                            BinOp::Max => x.max(y),
                            _ => unreachable!("bitwise float ops decode to Trap"),
                        };
                        TVal {
                            bits: r.to_bits(),
                            label,
                        }
                    }
                    DOp::NegI { a } => {
                        let a = resolve(*a, &regs);
                        TVal {
                            bits: a.as_i64().wrapping_neg() as u64,
                            label: a.label,
                        }
                    }
                    DOp::NegF { a } => {
                        let a = resolve(*a, &regs);
                        TVal {
                            bits: (-a.as_f64()).to_bits(),
                            label: a.label,
                        }
                    }
                    DOp::NotBool { a } => {
                        let a = resolve(*a, &regs);
                        TVal {
                            bits: (a.bits == 0) as u64,
                            label: a.label,
                        }
                    }
                    DOp::NotInt { a } => {
                        let a = resolve(*a, &regs);
                        TVal {
                            bits: !a.as_i64() as u64,
                            label: a.label,
                        }
                    }
                    DOp::IntToFloat { a } => {
                        let a = resolve(*a, &regs);
                        TVal {
                            bits: (a.as_i64() as f64).to_bits(),
                            label: a.label,
                        }
                    }
                    DOp::FloatToInt { a } => {
                        let a = resolve(*a, &regs);
                        let f = a.as_f64();
                        let clamped = if f.is_nan() {
                            0
                        } else {
                            f.clamp(i64::MIN as f64, i64::MAX as f64) as i64
                        };
                        TVal {
                            bits: clamped as u64,
                            label: a.label,
                        }
                    }
                    DOp::Sqrt { a } => {
                        let a = resolve(*a, &regs);
                        TVal {
                            bits: a.as_f64().max(0.0).sqrt().to_bits(),
                            label: a.label,
                        }
                    }
                    DOp::AbsI { a } => {
                        let a = resolve(*a, &regs);
                        TVal {
                            bits: a.as_i64().wrapping_abs() as u64,
                            label: a.label,
                        }
                    }
                    DOp::AbsF { a } => {
                        let a = resolve(*a, &regs);
                        TVal {
                            bits: a.as_f64().abs().to_bits(),
                            label: a.label,
                        }
                    }
                    DOp::CmpI { pred, a, b } => {
                        let a = resolve(*a, &regs);
                        let b = resolve(*b, &regs);
                        let label = self.union_t::<P>(a.label, b.label);
                        TVal {
                            bits: pred.eval(a.as_i64(), b.as_i64()) as u64,
                            label,
                        }
                    }
                    DOp::CmpF { pred, a, b } => {
                        let a = resolve(*a, &regs);
                        let b = resolve(*b, &regs);
                        let label = self.union_t::<P>(a.label, b.label);
                        TVal {
                            bits: pred.eval(a.as_f64(), b.as_f64()) as u64,
                            label,
                        }
                    }
                    DOp::Select { c, t, e } => {
                        let c = resolve(*c, &regs);
                        let chosen = if c.as_bool() {
                            resolve(*t, &regs)
                        } else {
                            resolve(*e, &regs)
                        };
                        let label = self.union_t::<P>(c.label, chosen.label);
                        TVal {
                            bits: chosen.bits,
                            label,
                        }
                    }
                    DOp::Alloca { words } => {
                        let n = resolve(*words, &regs).as_i64();
                        if n < 0 {
                            return Err(InterpError::Trap(format!(
                                "negative alloca in {}",
                                dfunc.name
                            )));
                        }
                        let addr = self.mem.alloc(n as usize);
                        TVal::from_i64(addr as i64)
                    }
                    DOp::Load { addr } => {
                        let a = resolve(*addr, &regs);
                        let mut v = self.mem.load(a.as_addr())?;
                        if combine_ptr {
                            v.label = self.union_t::<P>(v.label, a.label);
                        }
                        v
                    }
                    DOp::Store { addr, value } => {
                        let a = resolve(*addr, &regs);
                        let mut v = resolve(*value, &regs);
                        if store_ctx {
                            // StoresOnly and All both taint stored values
                            // with the control context.
                            v.label = self.union_t::<P>(v.label, ctx);
                        }
                        self.mem.store(a.as_addr(), v)?;
                        TVal::UNTAINTED_ZERO
                    }
                    DOp::Gep {
                        base,
                        index,
                        stride,
                    } => {
                        let b = resolve(*base, &regs);
                        let i = resolve(*index, &regs);
                        let label = self.union_t::<P>(b.label, i.label);
                        let addr = b.as_i64().wrapping_add(i.as_i64().wrapping_mul(*stride));
                        TVal {
                            bits: addr as u64,
                            label,
                        }
                    }
                    DOp::LoadIdx {
                        base,
                        index,
                        stride,
                    } => {
                        // Fused gep+load: this dispatch retires both. The
                        // loop header charged the gep; its label unions run
                        // here in the original order, then the load half
                        // charges itself before touching memory.
                        let b = resolve(*base, &regs);
                        let i = resolve(*index, &regs);
                        let mut la = self.union_t::<P>(b.label, i.label);
                        if apply_all {
                            la = self.union_t::<P>(la, ctx);
                        }
                        let addr = b.as_i64().wrapping_add(i.as_i64().wrapping_mul(*stride));
                        insts += 1;
                        clock += inst_cost;
                        let mut v = self.mem.load(addr as u64 as usize)?;
                        if combine_ptr {
                            v.label = self.union_t::<P>(v.label, la);
                        }
                        v
                    }
                    DOp::StoreIdx {
                        base,
                        index,
                        stride,
                        value,
                    } => {
                        // Fused gep+store, charged like LoadIdx.
                        let b = resolve(*base, &regs);
                        let i = resolve(*index, &regs);
                        let gep_label = self.union_t::<P>(b.label, i.label);
                        if apply_all {
                            // The fused-away gep result would have carried
                            // the control context; the union must still
                            // happen so the label table stays identical.
                            let _ = self.union_t::<P>(gep_label, ctx);
                        }
                        let addr = b.as_i64().wrapping_add(i.as_i64().wrapping_mul(*stride));
                        insts += 1;
                        clock += inst_cost;
                        let mut v = resolve(*value, &regs);
                        if store_ctx {
                            v.label = self.union_t::<P>(v.label, ctx);
                        }
                        self.mem.store(addr as u64 as usize, v)?;
                        TVal::UNTAINTED_ZERO
                    }
                    DOp::CallInternal { callee, args } => {
                        resolve_argv!(args, &regs, argv);
                        self.insts = insts;
                        self.clock = clock;
                        let (ret, incl) =
                            self.exec_function::<P>(*callee, argv, Some(path), ctx)?;
                        insts = self.insts;
                        clock = self.clock;
                        child_time += incl;
                        ret.unwrap_or(TVal::UNTAINTED_ZERO)
                    }
                    DOp::CallInlined {
                        callee,
                        entry,
                        body,
                        ret,
                    } => self.exec_inlined::<P>(
                        *callee,
                        *entry,
                        body,
                        *ret,
                        &mut regs,
                        &mut insts,
                        &mut clock,
                        &mut child_time,
                        path,
                        ctx,
                        apply_all,
                        store_ctx,
                        combine_ptr,
                        coverage,
                        fuel,
                        inst_cost,
                    )?,
                    DOp::CallIntrinsic { which, args } => {
                        // Intrinsics never touch the clock or instruction
                        // count — no counter sync needed.
                        resolve_argv!(args, &regs, argv);
                        self.exec_intrinsic::<P>(*which, argv)?
                    }
                    DOp::CallHostPrim { name, prim, args } => {
                        // Host calls never touch the instruction counter,
                        // and the clock rides along by reference — no
                        // round-trip through `self`.
                        resolve_argv!(args, &regs, argv);
                        let token = self.prim_tokens[*prim as usize];
                        self.exec_host_call(
                            name,
                            token,
                            *prim << 1,
                            argv,
                            fid,
                            path,
                            &mut clock,
                            &mut child_time,
                            None,
                        )?
                    }
                    DOp::CallLibrary { name, ext_id, args } => {
                        resolve_argv!(args, &regs, argv);
                        let ext_index = ext_id.index() - self.module.functions.len();
                        let token = self.lib_tokens[ext_index];
                        self.exec_host_call(
                            name,
                            token,
                            (ext_index as u32) << 1 | 1,
                            argv,
                            fid,
                            path,
                            &mut clock,
                            &mut child_time,
                            Some(*ext_id),
                        )?
                    }
                    DOp::Trap { message } => {
                        return Err(InterpError::Trap(message.to_string()));
                    }
                };
                let out = if apply_all {
                    let mut t = out;
                    t.label = self.union_t::<P>(t.label, ctx);
                    t
                } else {
                    out
                };
                regs[di.dst as usize] = out;
            }
            if insts > fuel {
                return Err(InterpError::OutOfFuel);
            }

            match &dblock.term {
                DTerm::Br(edge) => {
                    self.take_edge::<P>(
                        edge, fid, path, &mut regs, &ctl, base_ctx, &mut insts, &mut clock,
                    );
                    block = edge.target;
                }
                DTerm::CondBr {
                    cond,
                    then_edge,
                    else_edge,
                    exiting,
                    join,
                } => {
                    let cv = resolve(*cond, &regs);
                    if P::TAINT {
                        // Sinks: loop-exit conditions (§4.1).
                        for &lid in exiting.iter() {
                            let pset = self.labels.params_of(cv.label);
                            self.record_sink(
                                LoopKey {
                                    func: fid,
                                    loop_id: lid,
                                    path,
                                },
                                pset,
                            );
                        }
                        // Branch coverage for tainted conditions (§4.4, §C2).
                        if coverage && !cv.label.is_empty() {
                            let pset = self.labels.params_of(cv.label);
                            self.record_branch((fid, block), pset, cv.as_bool());
                        }
                        // Open a control scope for tainted branches.
                        if policy != CtlFlowPolicy::Off && !cv.label.is_empty() {
                            let enclosing = ctl.last().map_or(base_ctx, |s| s.label);
                            let label = self.union_t::<P>(cv.label, enclosing);
                            ctl.push(CtlScope { join: *join, label });
                        }
                    }
                    let edge = if cv.as_bool() { then_edge } else { else_edge };
                    self.take_edge::<P>(
                        edge, fid, path, &mut regs, &ctl, base_ctx, &mut insts, &mut clock,
                    );
                    block = edge.target;
                }
                DTerm::CondBrCmp {
                    pred,
                    float,
                    a,
                    b,
                    then_edge,
                    else_edge,
                    exiting,
                    join,
                } => {
                    // Fused cmp+condbr. The comparison half retires here —
                    // count, clock, and label unions in exactly the order
                    // the standalone cmp produced them — then the fuel
                    // boundary that used to sit between the cmp and the
                    // branch is re-checked before any branch effect.
                    insts += 1;
                    clock += inst_cost;
                    let av = resolve(*a, &regs);
                    let bv = resolve(*b, &regs);
                    let mut cond_label = self.union_t::<P>(av.label, bv.label);
                    let taken = if *float {
                        pred.eval(av.as_f64(), bv.as_f64())
                    } else {
                        pred.eval(av.as_i64(), bv.as_i64())
                    };
                    if apply_all {
                        cond_label = self.union_t::<P>(cond_label, ctx);
                    }
                    if insts > fuel {
                        return Err(InterpError::OutOfFuel);
                    }
                    if P::TAINT {
                        for &lid in exiting.iter() {
                            let pset = self.labels.params_of(cond_label);
                            self.record_sink(
                                LoopKey {
                                    func: fid,
                                    loop_id: lid,
                                    path,
                                },
                                pset,
                            );
                        }
                        if coverage && !cond_label.is_empty() {
                            let pset = self.labels.params_of(cond_label);
                            self.record_branch((fid, block), pset, taken);
                        }
                        if policy != CtlFlowPolicy::Off && !cond_label.is_empty() {
                            let enclosing = ctl.last().map_or(base_ctx, |s| s.label);
                            let label = self.union_t::<P>(cond_label, enclosing);
                            ctl.push(CtlScope { join: *join, label });
                        }
                    }
                    let edge = if taken { then_edge } else { else_edge };
                    self.take_edge::<P>(
                        edge, fid, path, &mut regs, &ctl, base_ctx, &mut insts, &mut clock,
                    );
                    block = edge.target;
                }
                DTerm::Ret(v) => {
                    ret_val = (*v).map(|op| resolve(op, &regs));
                    break 'blocks;
                }
                DTerm::Unreachable => {
                    return Err(InterpError::Trap(format!(
                        "reached unreachable in {}",
                        dfunc.name
                    )));
                }
            }
        }

        self.mem.release_to(frame_mark);
        self.insts = insts;
        self.clock = clock;
        let inclusive = clock - t_enter;
        let exclusive = inclusive - child_time;
        self.profile.record_call(path, fid, inclusive, exclusive);
        // Returned frames keep their (stale) contents: SSA-clean callees
        // never read a register before writing it, and unclean callees
        // clear explicitly at frame setup.
        self.reg_pool.push(regs);
        ctl.clear();
        self.ctl_pool.push(ctl);
        Ok((ret_val, inclusive))
    }

    /// The tier-1 direct-threaded executor: one `pc`-driven dispatch loop
    /// over a [`ThreadedFunction`]'s flat op array. Per-op semantics are
    /// copied verbatim from the general loop — same counter bumps, same
    /// union order, same error points — so outputs stay bit-identical;
    /// what changes is pure dispatch: opcode selectors pre-folded, block
    /// boundaries explicit ([`TInst::Enter`]), straight-line fallthroughs
    /// elided at specialization time, and branch targets resolved to op
    /// positions through [`ThreadedFunction::entry_of`].
    fn exec_function_threaded<P: PolicyMode>(
        &mut self,
        tf: &ThreadedFunction,
        fid: FunctionId,
        args: &[TVal],
        parent: Option<PathId>,
        inherited_ctx: Label,
    ) -> Result<(Option<TVal>, f64), InterpError> {
        debug_assert_eq!(P::TAINT, self.config.taint);
        let prepared: &'m PreparedModule = self.prepared;
        let dfunc: &'m DecodedFunction = prepared.decoded.func(fid);
        if args.len() < dfunc.nparams {
            return Err(InterpError::ArityMismatch {
                func: dfunc.name.clone(),
                expected: dfunc.nparams,
                got: args.len(),
            });
        }
        let path = self.intern_path(parent, fid);
        self.records.executed[fid.index()] = true;
        self.tier_stats.threaded_entries += 1;

        let inst_cost = self.config.inst_cost;
        let fuel = self.config.fuel;
        let policy = self.config.policy;
        let coverage = self.config.coverage;
        let combine_ptr = P::TAINT && self.config.combine_ptr_labels;
        let store_ctx = P::TAINT && policy != CtlFlowPolicy::Off;
        let mut insts = self.insts;
        let mut clock = self.clock;

        let t_enter = clock;
        if let Some(&probe) = self.config.probe_cost.get(fid.index()) {
            clock += probe;
        }
        let mut child_time = 0.0f64;

        let frame_mark = self.mem.mark();
        let mut regs = self.reg_pool.pop().unwrap_or_default();
        // Only ssa-verified functions are specialized, so the stale-frame
        // skip of the general engine always applies here.
        debug_assert!(dfunc.ssa_clean);
        regs.resize(dfunc.nregs, TVal::UNTAINTED_ZERO);
        regs[..dfunc.nparams].copy_from_slice(&args[..dfunc.nparams]);

        let mut ctl = self.ctl_pool.pop().unwrap_or_default();
        ctl.clear();
        let base_ctx = if policy == CtlFlowPolicy::Off {
            Label::EMPTY
        } else {
            inherited_ctx
        };
        let vb_base = self.records.visited_blocks.offset(fid);

        let ops: &[TInst] = &tf.ops;
        let consts: &[u64] = &tf.consts;
        let mut pc = tf.entry as usize;
        // Set by the first op (function entry points at an `Enter`).
        let mut ctx = Label::EMPTY;
        let mut apply_all = false;
        let mut dispatched = 0u64;
        let ret_val: Option<TVal>;

        // Block-entry bookkeeping: the exact sequence the general loop
        // runs at each block top. Branch sites inline it and jump one
        // past the target's `Enter`, so taken edges cost one dispatch,
        // not two; the `Enter` op itself still runs at function entry
        // and on elided-branch fallthrough.
        macro_rules! enter_block {
            ($block:expr) => {{
                let block = $block;
                if coverage {
                    self.records.visited_blocks.set(vb_base + block.index());
                }
                if insts > fuel {
                    return Err(InterpError::OutOfFuel);
                }
                while matches!(ctl.last(), Some(s) if s.join == Some(block)) {
                    ctl.pop();
                }
                ctx = if store_ctx {
                    ctl.last().map_or(base_ctx, |s| s.label)
                } else {
                    Label::EMPTY
                };
                apply_all = P::TAINT && policy == CtlFlowPolicy::All && !ctx.is_empty();
            }};
        }

        'dispatch: loop {
            // In-bounds by construction: the final block in layout order
            // never elides its terminator, `Ret`/`Unreachable` leave the
            // loop, and branches jump to an `Enter` (or one past it),
            // so `pc` can't walk off the end of `ops`.
            debug_assert!(pc < ops.len());
            let op = unsafe { *ops.get_unchecked(pc) };
            pc += 1;
            dispatched += 1;
            // One flat match — the dispatch cost per instruction is a
            // single jump. Block bookkeeping (`Enter`/`Term`) and calls
            // (`Slow`) finish their own work and `continue`; every other
            // arm produces `(dst, out)` for the shared bump + write-back
            // tail below. Bumping *after* the op is bit-identical to the
            // general loop's loop-top bump: the counters are only
            // observable at block-boundary fuel checks and at call
            // entries, and `Slow` keeps its bump ahead of the call.
            let (dst, out): (u32, TVal) = match op {
                TInst::Enter { block } => {
                    enter_block!(block);
                    continue 'dispatch;
                }
                TInst::Jmp { jump } => {
                    if insts > fuel {
                        return Err(InterpError::OutOfFuel);
                    }
                    // Audited: `jump < jumps.len()`, `pc` one past an Enter.
                    debug_assert!((jump as usize) < tf.jumps.len());
                    let j = unsafe { tf.jumps.get_unchecked(jump as usize) };
                    self.take_edge::<P>(
                        &j.edge, fid, path, &mut regs, &ctl, base_ctx, &mut insts, &mut clock,
                    );
                    pc = j.pc as usize;
                    enter_block!(j.edge.target);
                    continue 'dispatch;
                }
                TInst::AddIcJmp { dst, a, imm, jump } => {
                    // Add half: the exact `AddIC` sequence — op, bump,
                    // apply-all join, write-back — then the `Jmp` half
                    // verbatim. Fusing removes one dispatch, nothing else.
                    let av = tres(a, &regs, consts);
                    let mut out = TVal {
                        bits: av.as_i64().wrapping_add(imm as i64) as u64,
                        label: av.label,
                    };
                    insts += 1;
                    clock += inst_cost;
                    if apply_all {
                        out.label = self.union_t::<P>(out.label, ctx);
                    }
                    debug_assert!((dst as usize) < regs.len());
                    unsafe { *regs.get_unchecked_mut(dst as usize) = out };
                    if insts > fuel {
                        return Err(InterpError::OutOfFuel);
                    }
                    debug_assert!((jump as usize) < tf.jumps.len());
                    let j = unsafe { tf.jumps.get_unchecked(jump as usize) };
                    self.take_edge::<P>(
                        &j.edge, fid, path, &mut regs, &ctl, base_ctx, &mut insts, &mut clock,
                    );
                    pc = j.pc as usize;
                    enter_block!(j.edge.target);
                    continue 'dispatch;
                }
                TInst::CondBr { cond, br } => {
                    if insts > fuel {
                        return Err(InterpError::OutOfFuel);
                    }
                    debug_assert!((br as usize) < tf.branches.len());
                    let brd = unsafe { tf.branches.get_unchecked(br as usize) };
                    let cv = tres(cond, &regs, consts);
                    if P::TAINT {
                        for &lid in brd.exiting.iter() {
                            let pset = self.labels.params_of(cv.label);
                            self.record_sink(
                                LoopKey {
                                    func: fid,
                                    loop_id: lid,
                                    path,
                                },
                                pset,
                            );
                        }
                        if coverage && !cv.label.is_empty() {
                            let pset = self.labels.params_of(cv.label);
                            self.record_branch((fid, brd.block), pset, cv.as_bool());
                        }
                        if policy != CtlFlowPolicy::Off && !cv.label.is_empty() {
                            let enclosing = ctl.last().map_or(base_ctx, |s| s.label);
                            let label = self.union_t::<P>(cv.label, enclosing);
                            ctl.push(CtlScope {
                                join: brd.join,
                                label,
                            });
                        }
                    }
                    let (edge, target_pc) = if cv.as_bool() {
                        (&brd.then_edge, brd.then_pc)
                    } else {
                        (&brd.else_edge, brd.else_pc)
                    };
                    self.take_edge::<P>(
                        edge, fid, path, &mut regs, &ctl, base_ctx, &mut insts, &mut clock,
                    );
                    pc = target_pc as usize;
                    enter_block!(edge.target);
                    continue 'dispatch;
                }
                TInst::CondBrCmp {
                    pred,
                    float,
                    a,
                    b,
                    br,
                } => {
                    // Same two fuel boundaries as the general loop: the
                    // pre-terminator check, then the re-check after the
                    // comparison half retires.
                    if insts > fuel {
                        return Err(InterpError::OutOfFuel);
                    }
                    insts += 1;
                    clock += inst_cost;
                    let av = tres(a, &regs, consts);
                    let bv = tres(b, &regs, consts);
                    let mut cond_label = self.union_t::<P>(av.label, bv.label);
                    let taken = if float {
                        pred.eval(av.as_f64(), bv.as_f64())
                    } else {
                        pred.eval(av.as_i64(), bv.as_i64())
                    };
                    if apply_all {
                        cond_label = self.union_t::<P>(cond_label, ctx);
                    }
                    if insts > fuel {
                        return Err(InterpError::OutOfFuel);
                    }
                    debug_assert!((br as usize) < tf.branches.len());
                    let brd = unsafe { tf.branches.get_unchecked(br as usize) };
                    if P::TAINT {
                        for &lid in brd.exiting.iter() {
                            let pset = self.labels.params_of(cond_label);
                            self.record_sink(
                                LoopKey {
                                    func: fid,
                                    loop_id: lid,
                                    path,
                                },
                                pset,
                            );
                        }
                        if coverage && !cond_label.is_empty() {
                            let pset = self.labels.params_of(cond_label);
                            self.record_branch((fid, brd.block), pset, taken);
                        }
                        if policy != CtlFlowPolicy::Off && !cond_label.is_empty() {
                            let enclosing = ctl.last().map_or(base_ctx, |s| s.label);
                            let label = self.union_t::<P>(cond_label, enclosing);
                            ctl.push(CtlScope {
                                join: brd.join,
                                label,
                            });
                        }
                    }
                    let (edge, target_pc) = if taken {
                        (&brd.then_edge, brd.then_pc)
                    } else {
                        (&brd.else_edge, brd.else_pc)
                    };
                    self.take_edge::<P>(
                        edge, fid, path, &mut regs, &ctl, base_ctx, &mut insts, &mut clock,
                    );
                    pc = target_pc as usize;
                    enter_block!(edge.target);
                    continue 'dispatch;
                }
                TInst::Ret { val } => {
                    if insts > fuel {
                        return Err(InterpError::OutOfFuel);
                    }
                    ret_val = Some(tres(val, &regs, consts));
                    break 'dispatch;
                }
                TInst::RetVoid => {
                    if insts > fuel {
                        return Err(InterpError::OutOfFuel);
                    }
                    ret_val = None;
                    break 'dispatch;
                }
                TInst::Unreachable => {
                    if insts > fuel {
                        return Err(InterpError::OutOfFuel);
                    }
                    return Err(InterpError::Trap(format!(
                        "reached unreachable in {}",
                        dfunc.name
                    )));
                }
                TInst::AddI { dst, a, b } => {
                    let (a, b) = (tres(a, &regs, consts), tres(b, &regs, consts));
                    let label = self.union_t::<P>(a.label, b.label);
                    (
                        dst,
                        TVal {
                            bits: a.as_i64().wrapping_add(b.as_i64()) as u64,
                            label,
                        },
                    )
                }
                TInst::SubI { dst, a, b } => {
                    let (a, b) = (tres(a, &regs, consts), tres(b, &regs, consts));
                    let label = self.union_t::<P>(a.label, b.label);
                    (
                        dst,
                        TVal {
                            bits: a.as_i64().wrapping_sub(b.as_i64()) as u64,
                            label,
                        },
                    )
                }
                TInst::MulI { dst, a, b } => {
                    let (a, b) = (tres(a, &regs, consts), tres(b, &regs, consts));
                    let label = self.union_t::<P>(a.label, b.label);
                    (
                        dst,
                        TVal {
                            bits: a.as_i64().wrapping_mul(b.as_i64()) as u64,
                            label,
                        },
                    )
                }
                TInst::DivI { dst, a, b } => {
                    let (a, b) = (tres(a, &regs, consts), tres(b, &regs, consts));
                    let label = self.union_t::<P>(a.label, b.label);
                    let y = b.as_i64();
                    if y == 0 {
                        return Err(InterpError::DivisionByZero {
                            func: dfunc.name.clone(),
                        });
                    }
                    (
                        dst,
                        TVal {
                            bits: a.as_i64().wrapping_div(y) as u64,
                            label,
                        },
                    )
                }
                TInst::RemI { dst, a, b } => {
                    let (a, b) = (tres(a, &regs, consts), tres(b, &regs, consts));
                    let label = self.union_t::<P>(a.label, b.label);
                    let y = b.as_i64();
                    if y == 0 {
                        return Err(InterpError::DivisionByZero {
                            func: dfunc.name.clone(),
                        });
                    }
                    (
                        dst,
                        TVal {
                            bits: a.as_i64().wrapping_rem(y) as u64,
                            label,
                        },
                    )
                }
                TInst::AndI { dst, a, b } => {
                    let (a, b) = (tres(a, &regs, consts), tres(b, &regs, consts));
                    let label = self.union_t::<P>(a.label, b.label);
                    (
                        dst,
                        TVal {
                            bits: (a.as_i64() & b.as_i64()) as u64,
                            label,
                        },
                    )
                }
                TInst::OrI { dst, a, b } => {
                    let (a, b) = (tres(a, &regs, consts), tres(b, &regs, consts));
                    let label = self.union_t::<P>(a.label, b.label);
                    (
                        dst,
                        TVal {
                            bits: (a.as_i64() | b.as_i64()) as u64,
                            label,
                        },
                    )
                }
                TInst::XorI { dst, a, b } => {
                    let (a, b) = (tres(a, &regs, consts), tres(b, &regs, consts));
                    let label = self.union_t::<P>(a.label, b.label);
                    (
                        dst,
                        TVal {
                            bits: (a.as_i64() ^ b.as_i64()) as u64,
                            label,
                        },
                    )
                }
                TInst::ShlI { dst, a, b } => {
                    let (a, b) = (tres(a, &regs, consts), tres(b, &regs, consts));
                    let label = self.union_t::<P>(a.label, b.label);
                    (
                        dst,
                        TVal {
                            bits: crate::ops::shl_i64(a.as_i64(), b.as_i64()) as u64,
                            label,
                        },
                    )
                }
                TInst::ShrI { dst, a, b } => {
                    let (a, b) = (tres(a, &regs, consts), tres(b, &regs, consts));
                    let label = self.union_t::<P>(a.label, b.label);
                    (
                        dst,
                        TVal {
                            bits: crate::ops::shr_i64(a.as_i64(), b.as_i64()) as u64,
                            label,
                        },
                    )
                }
                TInst::MinI { dst, a, b } => {
                    let (a, b) = (tres(a, &regs, consts), tres(b, &regs, consts));
                    let label = self.union_t::<P>(a.label, b.label);
                    (
                        dst,
                        TVal {
                            bits: a.as_i64().min(b.as_i64()) as u64,
                            label,
                        },
                    )
                }
                TInst::MaxI { dst, a, b } => {
                    let (a, b) = (tres(a, &regs, consts), tres(b, &regs, consts));
                    let label = self.union_t::<P>(a.label, b.label);
                    (
                        dst,
                        TVal {
                            bits: a.as_i64().max(b.as_i64()) as u64,
                            label,
                        },
                    )
                }
                TInst::AddF { dst, a, b } => {
                    let (a, b) = (tres(a, &regs, consts), tres(b, &regs, consts));
                    let label = self.union_t::<P>(a.label, b.label);
                    (
                        dst,
                        TVal {
                            bits: (a.as_f64() + b.as_f64()).to_bits(),
                            label,
                        },
                    )
                }
                TInst::SubF { dst, a, b } => {
                    let (a, b) = (tres(a, &regs, consts), tres(b, &regs, consts));
                    let label = self.union_t::<P>(a.label, b.label);
                    (
                        dst,
                        TVal {
                            bits: (a.as_f64() - b.as_f64()).to_bits(),
                            label,
                        },
                    )
                }
                TInst::MulF { dst, a, b } => {
                    let (a, b) = (tres(a, &regs, consts), tres(b, &regs, consts));
                    let label = self.union_t::<P>(a.label, b.label);
                    (
                        dst,
                        TVal {
                            bits: (a.as_f64() * b.as_f64()).to_bits(),
                            label,
                        },
                    )
                }
                TInst::DivF { dst, a, b } => {
                    let (a, b) = (tres(a, &regs, consts), tres(b, &regs, consts));
                    let label = self.union_t::<P>(a.label, b.label);
                    (
                        dst,
                        TVal {
                            bits: (a.as_f64() / b.as_f64()).to_bits(),
                            label,
                        },
                    )
                }
                TInst::RemF { dst, a, b } => {
                    let (a, b) = (tres(a, &regs, consts), tres(b, &regs, consts));
                    let label = self.union_t::<P>(a.label, b.label);
                    (
                        dst,
                        TVal {
                            bits: (a.as_f64() % b.as_f64()).to_bits(),
                            label,
                        },
                    )
                }
                TInst::MinF { dst, a, b } => {
                    let (a, b) = (tres(a, &regs, consts), tres(b, &regs, consts));
                    let label = self.union_t::<P>(a.label, b.label);
                    (
                        dst,
                        TVal {
                            bits: a.as_f64().min(b.as_f64()).to_bits(),
                            label,
                        },
                    )
                }
                TInst::MaxF { dst, a, b } => {
                    let (a, b) = (tres(a, &regs, consts), tres(b, &regs, consts));
                    let label = self.union_t::<P>(a.label, b.label);
                    (
                        dst,
                        TVal {
                            bits: a.as_f64().max(b.as_f64()).to_bits(),
                            label,
                        },
                    )
                }
                TInst::NegI { dst, a } => {
                    let a = tres(a, &regs, consts);
                    (
                        dst,
                        TVal {
                            bits: a.as_i64().wrapping_neg() as u64,
                            label: a.label,
                        },
                    )
                }
                TInst::NegF { dst, a } => {
                    let a = tres(a, &regs, consts);
                    (
                        dst,
                        TVal {
                            bits: (-a.as_f64()).to_bits(),
                            label: a.label,
                        },
                    )
                }
                TInst::NotBool { dst, a } => {
                    let a = tres(a, &regs, consts);
                    (
                        dst,
                        TVal {
                            bits: (a.bits == 0) as u64,
                            label: a.label,
                        },
                    )
                }
                TInst::NotInt { dst, a } => {
                    let a = tres(a, &regs, consts);
                    (
                        dst,
                        TVal {
                            bits: !a.as_i64() as u64,
                            label: a.label,
                        },
                    )
                }
                TInst::IntToFloat { dst, a } => {
                    let a = tres(a, &regs, consts);
                    (
                        dst,
                        TVal {
                            bits: (a.as_i64() as f64).to_bits(),
                            label: a.label,
                        },
                    )
                }
                TInst::FloatToInt { dst, a } => {
                    let a = tres(a, &regs, consts);
                    let f = a.as_f64();
                    let clamped = if f.is_nan() {
                        0
                    } else {
                        f.clamp(i64::MIN as f64, i64::MAX as f64) as i64
                    };
                    (
                        dst,
                        TVal {
                            bits: clamped as u64,
                            label: a.label,
                        },
                    )
                }
                TInst::Sqrt { dst, a } => {
                    let a = tres(a, &regs, consts);
                    (
                        dst,
                        TVal {
                            bits: a.as_f64().max(0.0).sqrt().to_bits(),
                            label: a.label,
                        },
                    )
                }
                TInst::AbsI { dst, a } => {
                    let a = tres(a, &regs, consts);
                    (
                        dst,
                        TVal {
                            bits: a.as_i64().wrapping_abs() as u64,
                            label: a.label,
                        },
                    )
                }
                TInst::AbsF { dst, a } => {
                    let a = tres(a, &regs, consts);
                    (
                        dst,
                        TVal {
                            bits: a.as_f64().abs().to_bits(),
                            label: a.label,
                        },
                    )
                }
                TInst::CmpI { dst, pred, a, b } => {
                    let (a, b) = (tres(a, &regs, consts), tres(b, &regs, consts));
                    let label = self.union_t::<P>(a.label, b.label);
                    (
                        dst,
                        TVal {
                            bits: pred.eval(a.as_i64(), b.as_i64()) as u64,
                            label,
                        },
                    )
                }
                TInst::CmpF { dst, pred, a, b } => {
                    let (a, b) = (tres(a, &regs, consts), tres(b, &regs, consts));
                    let label = self.union_t::<P>(a.label, b.label);
                    (
                        dst,
                        TVal {
                            bits: pred.eval(a.as_f64(), b.as_f64()) as u64,
                            label,
                        },
                    )
                }
                // Immediate forms: the constant half never touches the
                // pool or the label table — `union(l, EMPTY)` is `l`
                // with no table effect, so copying the register
                // operand's label is exact.
                TInst::AddIC { dst, a, imm } => {
                    let a = tres(a, &regs, consts);
                    (
                        dst,
                        TVal {
                            bits: a.as_i64().wrapping_add(imm as i64) as u64,
                            label: a.label,
                        },
                    )
                }
                TInst::SubIC { dst, a, imm } => {
                    let a = tres(a, &regs, consts);
                    (
                        dst,
                        TVal {
                            bits: a.as_i64().wrapping_sub(imm as i64) as u64,
                            label: a.label,
                        },
                    )
                }
                TInst::MulIC { dst, a, imm } => {
                    let a = tres(a, &regs, consts);
                    (
                        dst,
                        TVal {
                            bits: a.as_i64().wrapping_mul(imm as i64) as u64,
                            label: a.label,
                        },
                    )
                }
                TInst::AndIC { dst, a, imm } => {
                    let a = tres(a, &regs, consts);
                    (
                        dst,
                        TVal {
                            bits: (a.as_i64() & imm as i64) as u64,
                            label: a.label,
                        },
                    )
                }
                TInst::OrIC { dst, a, imm } => {
                    let a = tres(a, &regs, consts);
                    (
                        dst,
                        TVal {
                            bits: (a.as_i64() | imm as i64) as u64,
                            label: a.label,
                        },
                    )
                }
                TInst::XorIC { dst, a, imm } => {
                    let a = tres(a, &regs, consts);
                    (
                        dst,
                        TVal {
                            bits: (a.as_i64() ^ imm as i64) as u64,
                            label: a.label,
                        },
                    )
                }
                TInst::ShlIC { dst, a, imm } => {
                    let a = tres(a, &regs, consts);
                    (
                        dst,
                        TVal {
                            bits: crate::ops::shl_i64(a.as_i64(), imm as i64) as u64,
                            label: a.label,
                        },
                    )
                }
                TInst::ShrIC { dst, a, imm } => {
                    let a = tres(a, &regs, consts);
                    (
                        dst,
                        TVal {
                            bits: crate::ops::shr_i64(a.as_i64(), imm as i64) as u64,
                            label: a.label,
                        },
                    )
                }
                TInst::CmpIC { dst, pred, a, imm } => {
                    let a = tres(a, &regs, consts);
                    (
                        dst,
                        TVal {
                            bits: pred.eval(a.as_i64(), imm as i64) as u64,
                            label: a.label,
                        },
                    )
                }
                TInst::DivIC { dst, a, imm } => {
                    // `imm != 0` by construction — the trap check is
                    // resolved at specialize time.
                    let a = tres(a, &regs, consts);
                    (
                        dst,
                        TVal {
                            bits: a.as_i64().wrapping_div(imm as i64) as u64,
                            label: a.label,
                        },
                    )
                }
                TInst::RemIC { dst, a, imm } => {
                    let a = tres(a, &regs, consts);
                    (
                        dst,
                        TVal {
                            bits: a.as_i64().wrapping_rem(imm as i64) as u64,
                            label: a.label,
                        },
                    )
                }
                TInst::AddFC { dst, a, imm } => {
                    let a = tres(a, &regs, consts);
                    (
                        dst,
                        TVal {
                            bits: (a.as_f64() + f64::from_bits(imm)).to_bits(),
                            label: a.label,
                        },
                    )
                }
                TInst::MulFC { dst, a, imm } => {
                    let a = tres(a, &regs, consts);
                    (
                        dst,
                        TVal {
                            bits: (a.as_f64() * f64::from_bits(imm)).to_bits(),
                            label: a.label,
                        },
                    )
                }
                TInst::SubFC { dst, a, imm } => {
                    let a = tres(a, &regs, consts);
                    (
                        dst,
                        TVal {
                            bits: (a.as_f64() - f64::from_bits(imm)).to_bits(),
                            label: a.label,
                        },
                    )
                }
                TInst::DivFC { dst, a, imm } => {
                    let a = tres(a, &regs, consts);
                    (
                        dst,
                        TVal {
                            bits: (a.as_f64() / f64::from_bits(imm)).to_bits(),
                            label: a.label,
                        },
                    )
                }
                TInst::Sel { dst, c, t, e } => {
                    let c = tres(c, &regs, consts);
                    let chosen = if c.as_bool() {
                        tres(t, &regs, consts)
                    } else {
                        tres(e, &regs, consts)
                    };
                    let label = self.union_t::<P>(c.label, chosen.label);
                    (
                        dst,
                        TVal {
                            bits: chosen.bits,
                            label,
                        },
                    )
                }
                TInst::Const { dst, bits } => (
                    dst,
                    TVal {
                        bits,
                        label: Label::EMPTY,
                    },
                ),
                TInst::Alloca { dst, words } => {
                    let n = tres(words, &regs, consts).as_i64();
                    if n < 0 {
                        return Err(InterpError::Trap(format!(
                            "negative alloca in {}",
                            dfunc.name
                        )));
                    }
                    let addr = self.mem.alloc(n as usize);
                    (dst, TVal::from_i64(addr as i64))
                }
                TInst::Load { dst, addr } => {
                    let a = tres(addr, &regs, consts);
                    let mut v = self.mem.load(a.as_addr())?;
                    if combine_ptr {
                        v.label = self.union_t::<P>(v.label, a.label);
                    }
                    (dst, v)
                }
                TInst::Store { dst, addr, value } => {
                    let a = tres(addr, &regs, consts);
                    let mut v = tres(value, &regs, consts);
                    if store_ctx {
                        v.label = self.union_t::<P>(v.label, ctx);
                    }
                    self.mem.store(a.as_addr(), v)?;
                    (dst, TVal::UNTAINTED_ZERO)
                }
                TInst::Gep {
                    dst,
                    base,
                    index,
                    stride,
                } => {
                    let b = tres(base, &regs, consts);
                    let i = tres(index, &regs, consts);
                    let label = self.union_t::<P>(b.label, i.label);
                    let addr = b
                        .as_i64()
                        .wrapping_add(i.as_i64().wrapping_mul(tconst(stride, consts) as i64));
                    (
                        dst,
                        TVal {
                            bits: addr as u64,
                            label,
                        },
                    )
                }
                TInst::LoadIdx {
                    dst,
                    base,
                    index,
                    stride,
                } => {
                    let b = tres(base, &regs, consts);
                    let i = tres(index, &regs, consts);
                    let mut la = self.union_t::<P>(b.label, i.label);
                    if apply_all {
                        la = self.union_t::<P>(la, ctx);
                    }
                    let addr = b
                        .as_i64()
                        .wrapping_add(i.as_i64().wrapping_mul(tconst(stride, consts) as i64));
                    insts += 1;
                    clock += inst_cost;
                    let mut v = self.mem.load(addr as u64 as usize)?;
                    if combine_ptr {
                        v.label = self.union_t::<P>(v.label, la);
                    }
                    (dst, v)
                }
                TInst::StoreIdx {
                    dst,
                    base,
                    index,
                    stride,
                    value,
                } => {
                    let b = tres(base, &regs, consts);
                    let i = tres(index, &regs, consts);
                    let gep_label = self.union_t::<P>(b.label, i.label);
                    if apply_all {
                        let _ = self.union_t::<P>(gep_label, ctx);
                    }
                    let addr = b
                        .as_i64()
                        .wrapping_add(i.as_i64().wrapping_mul(tconst(stride, consts) as i64));
                    insts += 1;
                    clock += inst_cost;
                    let mut v = tres(value, &regs, consts);
                    if store_ctx {
                        v.label = self.union_t::<P>(v.label, ctx);
                    }
                    self.mem.store(addr as u64 as usize, v)?;
                    (dst, TVal::UNTAINTED_ZERO)
                }
                TInst::Slow { slow } => {
                    // Calls bump *before* executing (matching the
                    // general loop's loop-top bump, which the
                    // callee's simulated entry time observes) and
                    // do their own write-back, so the shared
                    // post-op tail never runs for them.
                    insts += 1;
                    clock += inst_cost;
                    // Audited: `slow < slow_ops.len()`.
                    debug_assert!((slow as usize) < tf.slow_ops.len());
                    let di: &DInst = unsafe { tf.slow_ops.get_unchecked(slow as usize) };
                    let out: TVal = match &di.op {
                        DOp::CallInternal { callee, args } => {
                            resolve_argv!(args, &regs, argv);
                            self.insts = insts;
                            self.clock = clock;
                            let (ret, incl) =
                                self.exec_function::<P>(*callee, argv, Some(path), ctx)?;
                            insts = self.insts;
                            clock = self.clock;
                            child_time += incl;
                            ret.unwrap_or(TVal::UNTAINTED_ZERO)
                        }
                        DOp::CallInlined {
                            callee,
                            entry,
                            body,
                            ret,
                        } => self.exec_inlined::<P>(
                            *callee,
                            *entry,
                            body,
                            *ret,
                            &mut regs,
                            &mut insts,
                            &mut clock,
                            &mut child_time,
                            path,
                            ctx,
                            apply_all,
                            store_ctx,
                            combine_ptr,
                            coverage,
                            fuel,
                            inst_cost,
                        )?,
                        DOp::CallIntrinsic { which, args } => {
                            resolve_argv!(args, &regs, argv);
                            self.exec_intrinsic::<P>(*which, argv)?
                        }
                        DOp::CallHostPrim { name, prim, args } => {
                            resolve_argv!(args, &regs, argv);
                            let token = self.prim_tokens[*prim as usize];
                            self.exec_host_call(
                                name,
                                token,
                                *prim << 1,
                                argv,
                                fid,
                                path,
                                &mut clock,
                                &mut child_time,
                                None,
                            )?
                        }
                        DOp::CallLibrary { name, ext_id, args } => {
                            resolve_argv!(args, &regs, argv);
                            let ext_index = ext_id.index() - self.module.functions.len();
                            let token = self.lib_tokens[ext_index];
                            self.exec_host_call(
                                name,
                                token,
                                (ext_index as u32) << 1 | 1,
                                argv,
                                fid,
                                path,
                                &mut clock,
                                &mut child_time,
                                Some(*ext_id),
                            )?
                        }
                        DOp::Trap { message } => {
                            return Err(InterpError::Trap(message.to_string()));
                        }
                        _ => unreachable!("only calls and traps lower to Slow"),
                    };
                    let out = if apply_all {
                        let mut t = out;
                        t.label = self.union_t::<P>(t.label, ctx);
                        t
                    } else {
                        out
                    };
                    regs[di.dst as usize] = out;
                    continue 'dispatch;
                }
            };
            insts += 1;
            clock += inst_cost;
            let out = if apply_all {
                let mut t = out;
                t.label = self.union_t::<P>(t.label, ctx);
                t
            } else {
                out
            };
            // Audited like `tres`: `dst < nregs == regs.len()`.
            debug_assert!((dst as usize) < regs.len());
            unsafe { *regs.get_unchecked_mut(dst as usize) = out };
        }

        self.tier_stats.threaded_insts += dispatched;
        self.mem.release_to(frame_mark);
        self.insts = insts;
        self.clock = clock;
        let inclusive = clock - t_enter;
        let exclusive = inclusive - child_time;
        self.profile.record_call(path, fid, inclusive, exclusive);
        self.reg_pool.push(regs);
        ctl.clear();
        self.ctl_pool.push(ctl);
        Ok((ret_val, inclusive))
    }

    /// Take a decoded CFG edge: loop bookkeeping, then the target's phi
    /// parallel copy for this predecessor. Sources are all read before the
    /// first write (staged), so swap / lost-copy cycles behave like the
    /// reference engine's simultaneous assignment.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn take_edge<P: PolicyMode>(
        &mut self,
        edge: &Edge,
        fid: FunctionId,
        path: PathId,
        regs: &mut [TVal],
        ctl: &[CtlScope],
        base_ctx: Label,
        insts: &mut u64,
        clock: &mut f64,
    ) {
        if P::TAINT {
            if let Some(lid) = edge.back_edge {
                self.bump_iterations(LoopKey {
                    func: fid,
                    loop_id: lid,
                    path,
                });
            } else if let Some(lid) = edge.enters {
                let rec = self
                    .records
                    .loops
                    .entry(LoopKey {
                        func: fid,
                        loop_id: lid,
                        path,
                    })
                    .or_default();
                rec.entries += 1;
            }
        }
        if edge.moves.is_empty() {
            return;
        }
        // Phis evaluate under the scope that closes at the target (it pops
        // only after the copy) — including a scope this very branch pushed.
        let apply = P::TAINT && self.config.policy == CtlFlowPolicy::All;
        let ctx = ctl.last().map_or(base_ctx, |s| s.label);
        let inst_cost = self.config.inst_cost;
        if let [mv] = edge.moves.as_ref() {
            // Single-phi edges (every builder loop's induction variable)
            // need no staging: one move cannot hazard with itself reading
            // its own register.
            *insts += 1;
            *clock += inst_cost;
            let mut tv = resolve(mv.src, regs);
            if apply {
                tv.label = self.union_t::<P>(tv.label, ctx);
            }
            regs[mv.dst as usize] = tv;
            return;
        }
        let mut stage = std::mem::take(&mut self.phi_stage);
        stage.clear();
        for mv in edge.moves.iter() {
            *insts += 1;
            *clock += inst_cost;
            let mut tv = resolve(mv.src, regs);
            if apply {
                tv.label = self.union_t::<P>(tv.label, ctx);
            }
            stage.push((mv.dst, tv));
        }
        for (dst, tv) in stage.drain(..) {
            regs[dst as usize] = tv;
        }
        self.phi_stage = stage;
    }

    /// Execute a [`DOp::CallInlined`] superinstruction: an entire leaf
    /// call — depth and fuel boundaries, path interning, executed/visited
    /// marks, probe cost, body, per-call profile entry — replayed inline
    /// over the caller's frame. The caller's loop header already charged
    /// the call instruction itself; the callee's control context equals
    /// the caller's at the call site (a single-block callee can neither
    /// push nor pop scopes), so `ctx`/`apply_all`/`store_ctx` carry over
    /// unchanged.
    #[allow(clippy::too_many_arguments)]
    fn exec_inlined<P: PolicyMode>(
        &mut self,
        callee: FunctionId,
        entry: BlockId,
        body: &[DInst],
        ret: Option<Opnd>,
        regs: &mut [TVal],
        insts: &mut u64,
        clock: &mut f64,
        child_time: &mut f64,
        path: PathId,
        ctx: Label,
        apply_all: bool,
        store_ctx: bool,
        combine_ptr: bool,
        coverage: bool,
        fuel: u64,
        inst_cost: f64,
    ) -> Result<TVal, InterpError> {
        self.depth += 1;
        if self.depth > self.config.max_depth {
            self.depth -= 1;
            return Err(InterpError::CallDepthExceeded);
        }
        let ipath = self.intern_path(Some(path), callee);
        self.records.executed[callee.index()] = true;
        let t_enter = *clock;
        if let Some(&probe) = self.config.probe_cost.get(callee.index()) {
            *clock += probe;
        }
        if coverage {
            self.records.visited_blocks.mark(callee, entry);
        }
        let result = self.exec_inlined_body::<P>(
            body,
            regs,
            insts,
            clock,
            ctx,
            apply_all,
            store_ctx,
            combine_ptr,
            fuel,
            inst_cost,
            callee,
            ipath,
        );
        self.depth -= 1;
        result?;
        let rv = ret.map_or(TVal::UNTAINTED_ZERO, |o| resolve(o, regs));
        // No children and no alloca: exclusive == inclusive, and the
        // memory watermark is untouched.
        let inclusive = *clock - t_enter;
        self.profile
            .record_call(ipath, callee, inclusive, inclusive);
        *child_time += inclusive;
        Ok(rv)
    }

    /// The restricted dispatch for inlined bodies: pure scalar ops,
    /// memory accesses, and host-primitive calls only (the inlining pass
    /// guarantees it). Mirrors the corresponding arms of the main loop
    /// exactly — the differential suites pin the two against the
    /// reference engine.
    #[allow(clippy::too_many_arguments)]
    fn exec_inlined_body<P: PolicyMode>(
        &mut self,
        body: &[DInst],
        regs: &mut [TVal],
        insts: &mut u64,
        clock: &mut f64,
        ctx: Label,
        apply_all: bool,
        store_ctx: bool,
        combine_ptr: bool,
        fuel: u64,
        inst_cost: f64,
        callee: FunctionId,
        ipath: PathId,
    ) -> Result<(), InterpError> {
        // The fuel boundary the reference engine checks at the callee's
        // block entry.
        if *insts > fuel {
            return Err(InterpError::OutOfFuel);
        }
        // Copy out the `'m` reference so error paths can read the callee
        // name without borrowing `self`.
        let decoded: &'m crate::decode::DecodedModule = &self.prepared.decoded;
        let callee_name = move || decoded.func(callee).name.clone();
        for di in body {
            *insts += 1;
            *clock += inst_cost;
            let out: TVal = match &di.op {
                DOp::Const { bits } => TVal {
                    bits: *bits,
                    label: Label::EMPTY,
                },
                DOp::BinI { op, a, b } => {
                    let a = resolve(*a, regs);
                    let b = resolve(*b, regs);
                    let label = self.union_t::<P>(a.label, b.label);
                    let (x, y) = (a.as_i64(), b.as_i64());
                    let r = match op {
                        BinOp::Add => x.wrapping_add(y),
                        BinOp::Sub => x.wrapping_sub(y),
                        BinOp::Mul => x.wrapping_mul(y),
                        BinOp::Div => {
                            if y == 0 {
                                return Err(InterpError::DivisionByZero {
                                    func: callee_name(),
                                });
                            }
                            x.wrapping_div(y)
                        }
                        BinOp::Rem => {
                            if y == 0 {
                                return Err(InterpError::DivisionByZero {
                                    func: callee_name(),
                                });
                            }
                            x.wrapping_rem(y)
                        }
                        BinOp::And => x & y,
                        BinOp::Or => x | y,
                        BinOp::Xor => x ^ y,
                        BinOp::Shl => crate::ops::shl_i64(x, y),
                        BinOp::Shr => crate::ops::shr_i64(x, y),
                        BinOp::Min => x.min(y),
                        BinOp::Max => x.max(y),
                    };
                    TVal {
                        bits: r as u64,
                        label,
                    }
                }
                DOp::BinF { op, a, b } => {
                    let a = resolve(*a, regs);
                    let b = resolve(*b, regs);
                    let label = self.union_t::<P>(a.label, b.label);
                    let (x, y) = (a.as_f64(), b.as_f64());
                    let r = match op {
                        BinOp::Add => x + y,
                        BinOp::Sub => x - y,
                        BinOp::Mul => x * y,
                        BinOp::Div => x / y,
                        BinOp::Rem => x % y,
                        BinOp::Min => x.min(y),
                        BinOp::Max => x.max(y),
                        _ => unreachable!("bitwise float ops decode to Trap"),
                    };
                    TVal {
                        bits: r.to_bits(),
                        label,
                    }
                }
                DOp::NegI { a } => {
                    let a = resolve(*a, regs);
                    TVal {
                        bits: a.as_i64().wrapping_neg() as u64,
                        label: a.label,
                    }
                }
                DOp::NegF { a } => {
                    let a = resolve(*a, regs);
                    TVal {
                        bits: (-a.as_f64()).to_bits(),
                        label: a.label,
                    }
                }
                DOp::NotBool { a } => {
                    let a = resolve(*a, regs);
                    TVal {
                        bits: (a.bits == 0) as u64,
                        label: a.label,
                    }
                }
                DOp::NotInt { a } => {
                    let a = resolve(*a, regs);
                    TVal {
                        bits: !a.as_i64() as u64,
                        label: a.label,
                    }
                }
                DOp::IntToFloat { a } => {
                    let a = resolve(*a, regs);
                    TVal {
                        bits: (a.as_i64() as f64).to_bits(),
                        label: a.label,
                    }
                }
                DOp::FloatToInt { a } => {
                    let a = resolve(*a, regs);
                    let f = a.as_f64();
                    let clamped = if f.is_nan() {
                        0
                    } else {
                        f.clamp(i64::MIN as f64, i64::MAX as f64) as i64
                    };
                    TVal {
                        bits: clamped as u64,
                        label: a.label,
                    }
                }
                DOp::Sqrt { a } => {
                    let a = resolve(*a, regs);
                    TVal {
                        bits: a.as_f64().max(0.0).sqrt().to_bits(),
                        label: a.label,
                    }
                }
                DOp::AbsI { a } => {
                    let a = resolve(*a, regs);
                    TVal {
                        bits: a.as_i64().wrapping_abs() as u64,
                        label: a.label,
                    }
                }
                DOp::AbsF { a } => {
                    let a = resolve(*a, regs);
                    TVal {
                        bits: a.as_f64().abs().to_bits(),
                        label: a.label,
                    }
                }
                DOp::CmpI { pred, a, b } => {
                    let a = resolve(*a, regs);
                    let b = resolve(*b, regs);
                    let label = self.union_t::<P>(a.label, b.label);
                    TVal {
                        bits: pred.eval(a.as_i64(), b.as_i64()) as u64,
                        label,
                    }
                }
                DOp::CmpF { pred, a, b } => {
                    let a = resolve(*a, regs);
                    let b = resolve(*b, regs);
                    let label = self.union_t::<P>(a.label, b.label);
                    TVal {
                        bits: pred.eval(a.as_f64(), b.as_f64()) as u64,
                        label,
                    }
                }
                DOp::Select { c, t, e } => {
                    let c = resolve(*c, regs);
                    let chosen = if c.as_bool() {
                        resolve(*t, regs)
                    } else {
                        resolve(*e, regs)
                    };
                    let label = self.union_t::<P>(c.label, chosen.label);
                    TVal {
                        bits: chosen.bits,
                        label,
                    }
                }
                DOp::Load { addr } => {
                    let a = resolve(*addr, regs);
                    let mut v = self.mem.load(a.as_addr())?;
                    if combine_ptr {
                        v.label = self.union_t::<P>(v.label, a.label);
                    }
                    v
                }
                DOp::Store { addr, value } => {
                    let a = resolve(*addr, regs);
                    let mut v = resolve(*value, regs);
                    if store_ctx {
                        v.label = self.union_t::<P>(v.label, ctx);
                    }
                    self.mem.store(a.as_addr(), v)?;
                    TVal::UNTAINTED_ZERO
                }
                DOp::Gep {
                    base,
                    index,
                    stride,
                } => {
                    let b = resolve(*base, regs);
                    let i = resolve(*index, regs);
                    let label = self.union_t::<P>(b.label, i.label);
                    let addr = b.as_i64().wrapping_add(i.as_i64().wrapping_mul(*stride));
                    TVal {
                        bits: addr as u64,
                        label,
                    }
                }
                DOp::LoadIdx {
                    base,
                    index,
                    stride,
                } => {
                    let b = resolve(*base, regs);
                    let i = resolve(*index, regs);
                    let mut la = self.union_t::<P>(b.label, i.label);
                    if apply_all {
                        la = self.union_t::<P>(la, ctx);
                    }
                    let addr = b.as_i64().wrapping_add(i.as_i64().wrapping_mul(*stride));
                    *insts += 1;
                    *clock += inst_cost;
                    let mut v = self.mem.load(addr as u64 as usize)?;
                    if combine_ptr {
                        v.label = self.union_t::<P>(v.label, la);
                    }
                    v
                }
                DOp::StoreIdx {
                    base,
                    index,
                    stride,
                    value,
                } => {
                    let b = resolve(*base, regs);
                    let i = resolve(*index, regs);
                    let gep_label = self.union_t::<P>(b.label, i.label);
                    if apply_all {
                        let _ = self.union_t::<P>(gep_label, ctx);
                    }
                    let addr = b.as_i64().wrapping_add(i.as_i64().wrapping_mul(*stride));
                    *insts += 1;
                    *clock += inst_cost;
                    let mut v = resolve(*value, regs);
                    if store_ctx {
                        v.label = self.union_t::<P>(v.label, ctx);
                    }
                    self.mem.store(addr as u64 as usize, v)?;
                    TVal::UNTAINTED_ZERO
                }
                DOp::CallHostPrim { name, prim, args } => {
                    // A host-primitive call replayed inline: the resolved
                    // token dispatch, extern-argument record (keyed by the
                    // *callee* as caller, exactly as a real frame would),
                    // and cost charge are identical to the real-frame arm.
                    // Work primitives never touch the callee's child time
                    // (`ext_id: None` charges the clock only), so the
                    // inlined frame's exclusive == inclusive invariant
                    // still holds.
                    resolve_argv!(args, regs, argv);
                    let token = self.prim_tokens[*prim as usize];
                    let mut no_child = 0.0;
                    self.exec_host_call(
                        name,
                        token,
                        *prim << 1,
                        argv,
                        callee,
                        ipath,
                        clock,
                        &mut no_child,
                        None,
                    )?
                }
                DOp::Trap { message } => {
                    return Err(InterpError::Trap(message.to_string()));
                }
                DOp::Alloca { .. }
                | DOp::CallInternal { .. }
                | DOp::CallIntrinsic { .. }
                | DOp::CallLibrary { .. }
                | DOp::CallInlined { .. } => {
                    unreachable!("op excluded from inlined bodies by the pass")
                }
            };
            let out = if apply_all {
                let mut t = out;
                t.label = self.union_t::<P>(t.label, ctx);
                t
            } else {
                out
            };
            regs[di.dst as usize] = out;
        }
        // The fuel boundary after the callee's straight-line body.
        if *insts > fuel {
            return Err(InterpError::OutOfFuel);
        }
        Ok(())
    }

    /// Interpreter-resolved taint intrinsics (parameter sources, the
    /// security policy's source/sanitize/sink-check triple, and test
    /// assertions). Generic over the policy: every call site sits inside
    /// a policy-monomorphized loop, so the `P::TAINT` / `P::SECURITY`
    /// branches here fold away like the loop's own.
    fn exec_intrinsic<P: PolicyMode>(
        &mut self,
        which: Intrinsic,
        argv: &[TVal],
    ) -> Result<TVal, InterpError> {
        match which {
            Intrinsic::ParamI64 => {
                let idx = argv[0].as_i64() as usize;
                let (name, value) =
                    self.params.get(idx).cloned().ok_or_else(|| {
                        InterpError::Trap(format!("pt_param_i64: no param {idx}"))
                    })?;
                let label = if P::TAINT {
                    self.labels
                        .try_base_label(&name)
                        .map_err(InterpError::LabelCapacity)?
                } else {
                    Label::EMPTY
                };
                Ok(TVal::from_i64(value).with_label(label))
            }
            Intrinsic::RegisterParam => {
                let addr = argv[0].as_addr();
                let idx = argv[1].as_i64() as usize;
                let (name, _) = self.params.get(idx).cloned().ok_or_else(|| {
                    InterpError::Trap(format!("pt_register_param: no param {idx}"))
                })?;
                if P::TAINT {
                    let label = self
                        .labels
                        .try_base_label(&name)
                        .map_err(InterpError::LabelCapacity)?;
                    self.mem.set_label(addr, label)?;
                }
                Ok(TVal::UNTAINTED_ZERO)
            }
            Intrinsic::TaintSource => {
                // Pass-through of the value; under the security policy the
                // source base `src#id` is joined into its label (may-taint:
                // the incoming label is kept, never replaced).
                let v = argv[0];
                if P::SECURITY {
                    let id = argv[1].as_i64();
                    let base = self
                        .labels
                        .try_base_label(&crate::policy::source_base_name(id))
                        .map_err(InterpError::LabelCapacity)?;
                    let label = self.labels.union(v.label, base);
                    Ok(v.with_label(label))
                } else {
                    Ok(v)
                }
            }
            Intrinsic::Sanitize => {
                // Under the security policy, clear the label to bottom;
                // otherwise identity (value *and* label survive, so the
                // paper policy is observably unchanged by sanitize calls).
                let v = argv[0];
                if P::SECURITY {
                    Ok(v.with_label(Label::EMPTY))
                } else {
                    Ok(v)
                }
            }
            Intrinsic::SinkCheck => {
                let v = argv[0];
                if P::SECURITY {
                    let id = argv[1].as_i64();
                    let pset = self.labels.params_of(v.label);
                    let rec = self.records.sink_checks.entry(id).or_default();
                    rec.checks += 1;
                    if !v.label.is_empty() {
                        rec.violations += 1;
                        rec.params = rec.params.union(pset);
                    }
                }
                Ok(v)
            }
            Intrinsic::AssertHasParam => {
                if P::TAINT {
                    let idx = argv[1].as_i64() as usize;
                    if !self.labels.params_of(argv[0].label).contains(idx) {
                        return Err(InterpError::Trap(format!(
                            "taint assertion failed: value lacks parameter #{idx} (has {:?})",
                            self.labels.params_of(argv[0].label)
                        )));
                    }
                }
                Ok(TVal::UNTAINTED_ZERO)
            }
            Intrinsic::AssertNotParam => {
                if P::TAINT {
                    let idx = argv[1].as_i64() as usize;
                    if self.labels.params_of(argv[0].label).contains(idx) {
                        return Err(InterpError::Trap(format!(
                            "taint assertion failed: value unexpectedly carries parameter #{idx}"
                        )));
                    }
                }
                Ok(TVal::UNTAINTED_ZERO)
            }
            Intrinsic::LabelParams => {
                let set = self.labels.params_of(argv[0].label);
                Ok(TVal::from_i64(set.0 as i64))
            }
        }
    }

    /// Dispatch a non-intrinsic external to the handler. `ext_id` is
    /// `None` for `pt_*` work primitives (cost charged inline to the
    /// caller) and the pre-bound pseudo id for library routines (which get
    /// their own profile entries, §B1). `token` is the handler dispatch
    /// token pre-resolved at construction; symbols the handler does not
    /// resolve fall back to by-name dispatch.
    #[allow(clippy::too_many_arguments)]
    fn exec_host_call(
        &mut self,
        name: &str,
        token: Option<u32>,
        sym: u32,
        argv: &[TVal],
        caller: FunctionId,
        path: PathId,
        clock: &mut f64,
        child_time: &mut f64,
        ext_id: Option<FunctionId>,
    ) -> Result<TVal, InterpError> {
        // Record the parameters tainting the call's arguments — the library
        // database turns these into parametric dependencies of the caller
        // (the count-argument mechanism of §5.3). Unions are idempotent,
        // so a repeat of the previous `(caller, symbol, set)` triple skips
        // the string-keyed map (and its key allocation) outright.
        if self.config.taint {
            let mut pset = ParamSet::EMPTY;
            for a in argv {
                pset = pset.union(self.labels.params_of(a.label));
            }
            if !pset.is_empty() && self.extern_arg_memo != Some(((caller, sym), pset)) {
                let e = self
                    .records
                    .extern_args
                    .entry((caller, name.to_string()))
                    .or_default();
                *e = e.union(pset);
                self.extern_arg_memo = Some(((caller, sym), pset));
            }
        }

        let mut ctx = HostCtx {
            mem: &mut self.mem,
            labels: &mut self.labels,
            params: &self.params,
            taint: self.config.taint,
        };
        let called = match token {
            Some(t) => self.handler.call_token(t, argv, &mut ctx),
            None => self.handler.call(name, argv, &mut ctx),
        };
        let (ret, cost) = called.map_err(|message| InterpError::ExternalFailed {
            name: name.to_string(),
            message,
        })?;
        match ext_id {
            None => {
                *clock += cost;
                Ok(ret)
            }
            Some(ext_id) => {
                let probe = self
                    .config
                    .probe_cost
                    .get(ext_id.index())
                    .copied()
                    .unwrap_or(0.0);
                let total = cost + probe;
                *clock += total;
                *child_time += total;
                self.records.executed[ext_id.index()] = true;
                let ext_path = self.records.paths.intern(Some(path), ext_id);
                self.profile.record_call(ext_path, ext_id, total, total);
                Ok(ret)
            }
        }
    }
}
