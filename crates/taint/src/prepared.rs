//! Per-function static facts precomputed for the interpreter.
//!
//! The dynamic taint run needs, at every conditional branch, to know (a)
//! which loops this branch can exit (those conditions are the taint *sinks*,
//! §4.1), (b) whether a CFG edge is a loop back edge (for iteration
//! counting), and (c) the immediate postdominator of the branch block (the
//! join point where a control-flow taint scope closes, §5.2 control-flow
//! tainting). All of that is static, so we compute it once per module.
//!
//! On top of those facts, [`PreparedModule::compute`] runs the **decode
//! stage** ([`crate::decode`]): each function is compiled once into a flat
//! [`DecodedFunction`] bytecode that the production interpreter executes.
//! Both live here so anything that shares a `PreparedModule` (a
//! `perf_taint::Session`'s static artifacts, the bench scenario cache, the
//! analysis service) automatically shares the decoded program too.

use crate::decode::passes::PassStats;
use crate::decode::DecodedModule;
use pt_analysis::dom::DomTree;
use pt_analysis::loops::{LoopForest, LoopId};
use pt_analysis::scev::{all_trip_counts, TripCount};
use pt_ir::{BlockId, Function, FunctionId, InstKind, Module, Type};
use std::collections::HashMap;

/// Static facts about one function.
///
/// Everything in here is a pure function of the function body alone (no
/// module-level inputs), which is what lets the incremental static stage
/// cache and reuse it per function; `Clone` supports assembling a
/// [`PreparedModule`] from cached units.
#[derive(Debug, Clone)]
pub struct PreparedFunction {
    pub forest: LoopForest,
    pub trip_counts: Vec<TripCount>,
    /// For each block: the loops for which this block is an exiting block.
    pub exiting_loops: Vec<Vec<LoopId>>,
    /// Back edges `(latch, header) → loop`.
    pub back_edges: HashMap<(BlockId, BlockId), LoopId>,
    /// For each block: the innermost loop containing it, if any.
    pub innermost: Vec<Option<LoopId>>,
    /// For each block: the loop it heads, if any.
    pub header_of: Vec<Option<LoopId>>,
    /// Immediate postdominator per block (None = function exit).
    pub ipostdom: Vec<Option<BlockId>>,
    /// Cached result type per instruction (interpreter dispatch).
    pub result_tys: Vec<Type>,
    /// Whether the operands of arithmetic/compare instruction `i` are f64.
    pub operand_float: Vec<bool>,
}

impl PreparedFunction {
    pub fn compute(func: &Function) -> PreparedFunction {
        let dt = DomTree::dominators(func);
        let forest = LoopForest::compute(func, &dt);
        let postdom = DomTree::postdominators(func);
        let trip_counts = all_trip_counts(func, &forest);

        let nblocks = func.blocks.len();
        let mut exiting_loops = vec![Vec::new(); nblocks];
        let mut back_edges = HashMap::new();
        let mut header_of = vec![None; nblocks];
        for l in &forest.loops {
            for &b in &l.exiting {
                exiting_loops[b.index()].push(l.id);
            }
            for &latch in &l.latches {
                back_edges.insert((latch, l.header), l.id);
            }
            header_of[l.header.index()] = Some(l.id);
        }
        let innermost = (0..nblocks)
            .map(|i| forest.loop_of(BlockId(i as u32)))
            .collect();
        let ipostdom = (0..nblocks)
            .map(|i| postdom.ipostdom_of(BlockId(i as u32)))
            .collect();

        let mut result_tys = Vec::with_capacity(func.insts.len());
        let mut operand_float = Vec::with_capacity(func.insts.len());
        for inst in &func.insts {
            result_tys.push(inst.result_type(|v| func.value_type(v)));
            let fl = match &inst.kind {
                InstKind::Bin { lhs, .. }
                | InstKind::Cmp { lhs, .. }
                | InstKind::Un { operand: lhs, .. } => func.value_type(*lhs) == Type::F64,
                InstKind::Select { then_v, .. } => func.value_type(*then_v) == Type::F64,
                _ => false,
            };
            operand_float.push(fl);
        }

        PreparedFunction {
            forest,
            trip_counts,
            exiting_loops,
            back_edges,
            innermost,
            header_of,
            ipostdom,
            result_tys,
            operand_float,
        }
    }

    /// Whether the loop's trip count is a compile-time constant (such loops
    /// are pruned statically and their sink records carry no information).
    pub fn loop_is_constant(&self, id: LoopId) -> bool {
        self.trip_counts[id.index()].is_constant()
    }
}

/// Static facts for every function of a module, plus the decoded program.
pub struct PreparedModule {
    pub functions: Vec<PreparedFunction>,
    /// The flat bytecode the interpreter's hot loop executes: decoded,
    /// superinstruction-fused, and register-allocated (frame sizes in
    /// each [`crate::decode::DecodedFunction::nregs`] reflect the
    /// allocated register pressure, not the instruction count).
    pub decoded: DecodedModule,
    /// What the post-decode pass pipeline ([`crate::decode::passes`]) did:
    /// fused pair counts and frame registers before/after allocation.
    pub pass_stats: PassStats,
    /// Wall seconds the decode stage (including the pass pipeline) took
    /// (reported by the `taint_throughput` bench scenario; *not* part of
    /// any deterministic summary).
    pub decode_seconds: f64,
    /// Wall seconds of `decode_seconds` spent inside the post-decode pass
    /// pipeline alone (fusion + inlining + register allocation) — the
    /// per-stage attribution `bench_compare` localizes regressions with.
    pub pass_seconds: f64,
}

impl PreparedModule {
    pub fn compute(module: &Module) -> PreparedModule {
        let _span = pt_util::trace::span("taint", "decode");
        let functions: Vec<PreparedFunction> = module
            .functions
            .iter()
            .map(PreparedFunction::compute)
            .collect();
        let t0 = std::time::Instant::now();
        let mut decoded = DecodedModule::decode(module, &functions);
        // Register allocation (and the frame fast path it unlocks) is only
        // sound when definitions dominate uses; malformed programs keep
        // the naive frame so both engines observe identical zero-filled
        // registers.
        let ssa_clean: Vec<bool> = module
            .functions
            .iter()
            .map(|f| pt_analysis::ssa_verify::verify_ssa(f).is_ok())
            .collect();
        let p0 = std::time::Instant::now();
        let pass_stats = crate::decode::passes::optimize(&mut decoded, &ssa_clean);
        let pass_seconds = p0.elapsed().as_secs_f64();
        PreparedModule {
            functions,
            decoded,
            pass_stats,
            decode_seconds: t0.elapsed().as_secs_f64(),
            pass_seconds,
        }
    }

    #[inline]
    pub fn func(&self, id: FunctionId) -> &PreparedFunction {
        &self.functions[id.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_ir::{FunctionBuilder, Type};

    #[test]
    fn loop_facts_prepared() {
        let mut b = FunctionBuilder::new("f", vec![("n".into(), Type::I64)], Type::Void);
        b.for_loop(0i64, b.param(0), 1i64, |_, _| {});
        b.for_loop(0i64, 4i64, 1i64, |_, _| {});
        b.ret(None);
        let f = b.finish();
        let p = PreparedFunction::compute(&f);
        assert_eq!(p.forest.len(), 2);
        assert_eq!(p.back_edges.len(), 2);
        // One loop parametric, one constant.
        let consts: Vec<bool> = (0..2)
            .map(|i| p.loop_is_constant(LoopId(i as u32)))
            .collect();
        assert_eq!(consts.iter().filter(|c| **c).count(), 1);
        // Headers have an exiting entry.
        let total_exiting: usize = p.exiting_loops.iter().map(|v| v.len()).sum();
        assert_eq!(total_exiting, 2);
    }

    #[test]
    fn module_prepared_per_function() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("a", vec![], Type::Void);
        b.ret(None);
        m.add_function(b.finish());
        let mut b = FunctionBuilder::new("b", vec![("n".into(), Type::I64)], Type::Void);
        b.for_loop(0i64, b.param(0), 1i64, |_, _| {});
        b.ret(None);
        m.add_function(b.finish());
        let p = PreparedModule::compute(&m);
        assert_eq!(p.functions.len(), 2);
        assert_eq!(p.func(FunctionId(0)).forest.len(), 0);
        assert_eq!(p.func(FunctionId(1)).forest.len(), 1);
    }
}
