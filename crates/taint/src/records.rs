//! Artifacts of a dynamic taint run: loop sink records, branch coverage,
//! visited code, and the calling-context table.
//!
//! The record maps are `BTreeMap`s on purpose: summaries and report JSON
//! are built by iterating them, and ordered maps make that iteration —
//! and therefore every rendered report — independent of hasher state.

use crate::label::ParamSet;
use crate::path::{CallPathTable, PathId};
use pt_analysis::loops::LoopId;
use pt_ir::{BlockId, FunctionId};
use std::collections::BTreeMap;

/// Key of a loop record: one loop observed under one calling context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LoopKey {
    pub func: FunctionId,
    pub loop_id: LoopId,
    pub path: PathId,
}

/// What the taint sinks observed for one loop (per calling context).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoopRecord {
    /// Union of the parameter sets of all exit-condition labels observed.
    pub params: ParamSet,
    /// Total iterations (back-edge traversals) across all entries.
    pub iterations: u64,
    /// Number of times the loop was entered.
    pub entries: u64,
}

/// Coverage of one conditional branch whose condition was tainted (§4.4:
/// detection of parameter-driven algorithm selection and never-taken paths).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchRecord {
    pub params: ParamSet,
    pub taken_true: u64,
    pub taken_false: u64,
}

impl BranchRecord {
    /// Whether only one direction was ever taken in this run.
    pub fn one_sided(&self) -> bool {
        (self.taken_true == 0) != (self.taken_false == 0)
    }
}

/// What one `pt_sink_check(v, id)` site observed over a run (security
/// policy only; the paper policy never populates these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SinkRecord {
    /// Union of the parameter/source sets of all checked values.
    pub params: ParamSet,
    /// Total checks executed.
    pub checks: u64,
    /// Checks whose value carried a non-empty label (taint reached the
    /// sink unsanitized).
    pub violations: u64,
}

/// Per-function, per-block visit flags, stored as one flat vector with a
/// per-function offset table. The interpreter marks a block on every
/// entry — the hottest record write of a run — so the layout is one
/// bounds check and one store, with the function's base offset hoisted
/// out of the block loop ([`BlockCoverage::offset`] + [`BlockCoverage::set`]).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BlockCoverage {
    flags: Vec<bool>,
    /// `offsets[f]..offsets[f + 1]` is function `f`'s slice of `flags`.
    offsets: Vec<u32>,
}

impl BlockCoverage {
    pub fn new(blocks_per_func: &[usize]) -> BlockCoverage {
        let mut offsets = Vec::with_capacity(blocks_per_func.len() + 1);
        let mut total = 0u32;
        offsets.push(0);
        for &n in blocks_per_func {
            total += n as u32;
            offsets.push(total);
        }
        BlockCoverage {
            flags: vec![false; total as usize],
            offsets,
        }
    }

    /// Base index of `func`'s flags (hoist out of hot loops, then [`Self::set`]).
    #[inline]
    pub fn offset(&self, func: FunctionId) -> usize {
        self.offsets[func.index()] as usize
    }

    /// Mark the flat index `offset(func) + block.index()` visited.
    #[inline]
    pub fn set(&mut self, flat: usize) {
        self.flags[flat] = true;
    }

    /// Mark `block` of `func` visited (cold-path convenience).
    #[inline]
    pub fn mark(&mut self, func: FunctionId, block: BlockId) {
        let base = self.offset(func);
        self.set(base + block.index());
    }

    /// The visit flags of `func`, indexed by block.
    pub fn func(&self, func: FunctionId) -> &[bool] {
        &self.flags[self.offsets[func.index()] as usize..self.offsets[func.index() + 1] as usize]
    }
}

/// All records produced by a taint run.
#[derive(Debug, Default)]
pub struct TaintRecords {
    pub loops: BTreeMap<LoopKey, LoopRecord>,
    pub branches: BTreeMap<(FunctionId, BlockId), BranchRecord>,
    /// Per (calling function, external symbol): union of the parameter sets
    /// of all argument labels observed — feeds the library database's
    /// count-argument dependencies (§5.3).
    pub extern_args: BTreeMap<(FunctionId, String), ParamSet>,
    /// Per function: whether it was executed at all (dynamic pruning in
    /// Table 2: "Pruned Dynamically").
    pub executed: Vec<bool>,
    /// Per function, per block: executed? (never-visited code, §4.4).
    pub visited_blocks: BlockCoverage,
    /// Per sink id: the security policy's check/violation ledger.
    pub sink_checks: BTreeMap<i64, SinkRecord>,
    pub paths: CallPathTable,
}

impl TaintRecords {
    pub fn new(nfuncs: usize, blocks_per_func: &[usize]) -> TaintRecords {
        debug_assert_eq!(nfuncs, blocks_per_func.len());
        TaintRecords {
            loops: BTreeMap::new(),
            branches: BTreeMap::new(),
            extern_args: BTreeMap::new(),
            executed: vec![false; nfuncs],
            visited_blocks: BlockCoverage::new(blocks_per_func),
            sink_checks: BTreeMap::new(),
            paths: CallPathTable::new(),
        }
    }

    /// Aggregate loop records per (function, loop), merging calling contexts.
    pub fn loops_by_function(&self) -> BTreeMap<(FunctionId, LoopId), LoopRecord> {
        let mut out: BTreeMap<(FunctionId, LoopId), LoopRecord> = BTreeMap::new();
        for (k, r) in &self.loops {
            let e = out.entry((k.func, k.loop_id)).or_default();
            e.params = e.params.union(r.params);
            e.iterations += r.iterations;
            e.entries += r.entries;
        }
        out
    }

    /// Union of parameters observed in any loop of `func` (any context).
    pub fn function_params(&self, func: FunctionId) -> ParamSet {
        self.loops
            .iter()
            .filter(|(k, _)| k.func == func)
            .fold(ParamSet::EMPTY, |acc, (_, r)| acc.union(r.params))
    }

    /// Functions never executed during the taint run.
    pub fn never_executed(&self) -> Vec<FunctionId> {
        self.executed
            .iter()
            .enumerate()
            .filter(|(_, e)| !**e)
            .map(|(i, _)| FunctionId(i as u32))
            .collect()
    }

    /// Tainted branches where both directions were observed — candidates for
    /// qualitative behavior changes across the modeling domain (§C2).
    pub fn two_sided_branches(&self) -> Vec<((FunctionId, BlockId), BranchRecord)> {
        let mut v: Vec<_> = self
            .branches
            .iter()
            .filter(|(_, r)| !r.one_sided())
            .map(|(k, r)| (*k, *r))
            .collect();
        v.sort_by_key(|(k, _)| *k);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_aggregation_merges_paths() {
        let mut r = TaintRecords::new(2, &[1, 1]);
        let p1 = r.paths.intern(None, FunctionId(0));
        let p2 = r.paths.intern(Some(p1), FunctionId(1));
        let p3 = r.paths.intern(None, FunctionId(1));
        let lid = LoopId(0);
        r.loops.insert(
            LoopKey {
                func: FunctionId(1),
                loop_id: lid,
                path: p2,
            },
            LoopRecord {
                params: ParamSet::single(0),
                iterations: 10,
                entries: 1,
            },
        );
        r.loops.insert(
            LoopKey {
                func: FunctionId(1),
                loop_id: lid,
                path: p3,
            },
            LoopRecord {
                params: ParamSet::single(1),
                iterations: 5,
                entries: 2,
            },
        );
        let agg = r.loops_by_function();
        let rec = agg[&(FunctionId(1), lid)];
        assert_eq!(rec.iterations, 15);
        assert_eq!(rec.entries, 3);
        assert!(rec.params.contains(0) && rec.params.contains(1));
        assert_eq!(r.function_params(FunctionId(1)).len(), 2);
        assert_eq!(r.function_params(FunctionId(0)), ParamSet::EMPTY);
    }

    #[test]
    fn never_executed_lists_unvisited() {
        let mut r = TaintRecords::new(3, &[1, 1, 1]);
        r.executed[1] = true;
        assert_eq!(r.never_executed(), vec![FunctionId(0), FunctionId(2)]);
    }

    #[test]
    fn branch_sidedness() {
        let one = BranchRecord {
            params: ParamSet::single(0),
            taken_true: 4,
            taken_false: 0,
        };
        let two = BranchRecord {
            params: ParamSet::single(0),
            taken_true: 4,
            taken_false: 1,
        };
        assert!(one.one_sided());
        assert!(!two.one_sided());
    }
}
