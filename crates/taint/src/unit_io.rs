//! JSON round-trip for [`FunctionUnit`]s — the disk format of the
//! per-function artifact cache.
//!
//! Hand-written against the service JSON model ([`serde::json::Value`]).
//! Design constraints:
//!
//! * the wire model stores numbers as `f64`, so anything that can exceed
//!   2⁵³ — immediate bit patterns (`Opnd::Imm` carries raw f64 bits),
//!   `gep` strides, constant trip counts — is encoded as a decimal
//!   *string*;
//! * decoding is total: any malformed document yields `None`, which the
//!   cache treats as a miss and recomputes — a corrupt store entry can
//!   never poison an analysis;
//! * the schema is versioned ([`UNIT_SCHEMA_VERSION`]); the version is
//!   folded into the artifact *key* by the cache layer, so a schema bump
//!   silently invalidates old entries instead of misreading them.

use crate::decode::passes::{InlineSpec, PassStats};
use crate::decode::{
    DInst, DOp, DTerm, DecodedBlock, DecodedFunction, Edge, Intrinsic, Opnd, PhiMove,
};
use crate::prepared::PreparedFunction;
use crate::unit::FunctionUnit;
use pt_analysis::loops::{LoopForest, LoopId, LoopInfo};
use pt_analysis::scev::TripCount;
use pt_ir::{BinOp, BlockId, CmpPred, FunctionId, Type};
use serde::json::Value;
use std::collections::HashMap;

/// Bump when the encoding below changes shape. Folded into artifact keys.
/// v2: `DOp::Const` ("const"), `PassStats::{folded, reduced_geps}`.
pub const UNIT_SCHEMA_VERSION: u32 = 2;

pub fn unit_to_json(u: &FunctionUnit) -> Value {
    Value::obj(vec![
        ("v", Value::int(UNIT_SCHEMA_VERSION as i64)),
        ("prep", prep_to(&u.prepared)),
        ("dec", func_to(&u.decoded)),
        (
            "spec",
            match &u.inline_spec {
                Some(s) => spec_to(s),
                None => Value::Null,
            },
        ),
        ("ssa", Value::Bool(u.ssa_clean)),
        ("stats", stats_to(&u.stats)),
    ])
}

pub fn unit_from_json(v: &Value) -> Option<FunctionUnit> {
    if v.get("v")?.as_u64()? != UNIT_SCHEMA_VERSION as u64 {
        return None;
    }
    Some(FunctionUnit {
        prepared: prep_from(v.get("prep")?)?,
        decoded: func_from(v.get("dec")?)?,
        inline_spec: match v.get("spec")? {
            Value::Null => None,
            s => Some(spec_from(s)?),
        },
        ssa_clean: v.get("ssa")?.as_bool()?,
        stats: stats_from(v.get("stats")?)?,
    })
}

// ---- small scalar helpers ---------------------------------------------

fn u(n: impl TryInto<i64>) -> Value {
    Value::int(n.try_into().ok().expect("index fits i64"))
}

fn arr(items: impl IntoIterator<Item = Value>) -> Value {
    Value::Arr(items.into_iter().collect())
}

fn as_usize(v: &Value) -> Option<usize> {
    v.as_u64().map(|n| n as usize)
}

fn as_u32(v: &Value) -> Option<u32> {
    v.as_u64().and_then(|n| u32::try_from(n).ok())
}

/// u64 as decimal string (raw bit patterns exceed f64's exact range).
fn u64_to(n: u64) -> Value {
    Value::str(n.to_string())
}

fn u64_from(v: &Value) -> Option<u64> {
    v.as_str()?.parse().ok()
}

fn i64_to(n: i64) -> Value {
    Value::str(n.to_string())
}

fn i64_from(v: &Value) -> Option<i64> {
    v.as_str()?.parse().ok()
}

fn opt_to(o: Option<Value>) -> Value {
    o.unwrap_or(Value::Null)
}

fn block_to(b: BlockId) -> Value {
    u(b.0)
}

fn block_from(v: &Value) -> Option<BlockId> {
    as_u32(v).map(BlockId)
}

fn opt_block_to(b: Option<BlockId>) -> Value {
    opt_to(b.map(block_to))
}

fn opt_block_from(v: &Value) -> Option<Option<BlockId>> {
    match v {
        Value::Null => Some(None),
        other => Some(Some(block_from(other)?)),
    }
}

fn loop_to(l: LoopId) -> Value {
    u(l.0)
}

fn loop_from(v: &Value) -> Option<LoopId> {
    as_u32(v).map(LoopId)
}

fn opt_loop_to(l: Option<LoopId>) -> Value {
    opt_to(l.map(loop_to))
}

fn opt_loop_from(v: &Value) -> Option<Option<LoopId>> {
    match v {
        Value::Null => Some(None),
        other => Some(Some(loop_from(other)?)),
    }
}

// ---- operands, instructions, terminators ------------------------------

fn opnd_to(o: &Opnd) -> Value {
    match o {
        Opnd::Reg(r) => arr([Value::str("r"), u(*r)]),
        Opnd::Imm(bits) => arr([Value::str("i"), u64_to(*bits)]),
    }
}

fn opnd_from(v: &Value) -> Option<Opnd> {
    let a = v.as_arr()?;
    match a.first()?.as_str()? {
        "r" => Some(Opnd::Reg(as_u32(a.get(1)?)?)),
        "i" => Some(Opnd::Imm(u64_from(a.get(1)?)?)),
        _ => None,
    }
}

fn opt_opnd_to(o: &Option<Opnd>) -> Value {
    opt_to(o.as_ref().map(opnd_to))
}

fn opt_opnd_from(v: &Value) -> Option<Option<Opnd>> {
    match v {
        Value::Null => Some(None),
        other => Some(Some(opnd_from(other)?)),
    }
}

fn opnds_to(os: &[Opnd]) -> Value {
    arr(os.iter().map(opnd_to))
}

fn opnds_from(v: &Value) -> Option<Box<[Opnd]>> {
    v.as_arr()?.iter().map(opnd_from).collect()
}

fn edge_to(e: &Edge) -> Value {
    arr([
        block_to(e.target),
        arr(e.moves.iter().map(|m| arr([u(m.dst), opnd_to(&m.src)]))),
        opt_loop_to(e.back_edge),
        opt_loop_to(e.enters),
    ])
}

fn edge_from(v: &Value) -> Option<Edge> {
    let a = v.as_arr()?;
    let moves: Option<Box<[PhiMove]>> = a
        .get(1)?
        .as_arr()?
        .iter()
        .map(|m| {
            let m = m.as_arr()?;
            Some(PhiMove {
                dst: as_u32(m.first()?)?,
                src: opnd_from(m.get(1)?)?,
            })
        })
        .collect();
    Some(Edge {
        target: block_from(a.first()?)?,
        moves: moves?,
        back_edge: opt_loop_from(a.get(2)?)?,
        enters: opt_loop_from(a.get(3)?)?,
    })
}

fn bin_op_to(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "add",
        BinOp::Sub => "sub",
        BinOp::Mul => "mul",
        BinOp::Div => "div",
        BinOp::Rem => "rem",
        BinOp::And => "and",
        BinOp::Or => "or",
        BinOp::Xor => "xor",
        BinOp::Shl => "shl",
        BinOp::Shr => "shr",
        BinOp::Min => "min",
        BinOp::Max => "max",
    }
}

fn bin_op_from(s: &str) -> Option<BinOp> {
    Some(match s {
        "add" => BinOp::Add,
        "sub" => BinOp::Sub,
        "mul" => BinOp::Mul,
        "div" => BinOp::Div,
        "rem" => BinOp::Rem,
        "and" => BinOp::And,
        "or" => BinOp::Or,
        "xor" => BinOp::Xor,
        "shl" => BinOp::Shl,
        "shr" => BinOp::Shr,
        "min" => BinOp::Min,
        "max" => BinOp::Max,
        _ => return None,
    })
}

fn pred_to(p: CmpPred) -> &'static str {
    match p {
        CmpPred::Eq => "eq",
        CmpPred::Ne => "ne",
        CmpPred::Lt => "lt",
        CmpPred::Le => "le",
        CmpPred::Gt => "gt",
        CmpPred::Ge => "ge",
    }
}

fn pred_from(s: &str) -> Option<CmpPred> {
    Some(match s {
        "eq" => CmpPred::Eq,
        "ne" => CmpPred::Ne,
        "lt" => CmpPred::Lt,
        "le" => CmpPred::Le,
        "gt" => CmpPred::Gt,
        "ge" => CmpPred::Ge,
        _ => return None,
    })
}

fn intrinsic_to(i: Intrinsic) -> &'static str {
    match i {
        Intrinsic::ParamI64 => "pt_param_i64",
        Intrinsic::RegisterParam => "pt_register_param",
        Intrinsic::AssertHasParam => "pt_assert_has_param",
        Intrinsic::AssertNotParam => "pt_assert_not_param",
        Intrinsic::LabelParams => "pt_label_params",
        Intrinsic::TaintSource => "pt_taint_source",
        Intrinsic::Sanitize => "pt_sanitize",
        Intrinsic::SinkCheck => "pt_sink_check",
    }
}

fn op_to(op: &DOp) -> Value {
    let tag = |t: &str, rest: Vec<Value>| {
        let mut items = vec![Value::str(t)];
        items.extend(rest);
        Value::Arr(items)
    };
    match op {
        DOp::Const { bits } => tag("const", vec![u64_to(*bits)]),
        DOp::BinI { op, a, b } => tag(
            "bi",
            vec![Value::str(bin_op_to(*op)), opnd_to(a), opnd_to(b)],
        ),
        DOp::BinF { op, a, b } => tag(
            "bf",
            vec![Value::str(bin_op_to(*op)), opnd_to(a), opnd_to(b)],
        ),
        DOp::NegI { a } => tag("negi", vec![opnd_to(a)]),
        DOp::NegF { a } => tag("negf", vec![opnd_to(a)]),
        DOp::NotBool { a } => tag("notb", vec![opnd_to(a)]),
        DOp::NotInt { a } => tag("noti", vec![opnd_to(a)]),
        DOp::IntToFloat { a } => tag("itof", vec![opnd_to(a)]),
        DOp::FloatToInt { a } => tag("ftoi", vec![opnd_to(a)]),
        DOp::Sqrt { a } => tag("sqrt", vec![opnd_to(a)]),
        DOp::AbsI { a } => tag("absi", vec![opnd_to(a)]),
        DOp::AbsF { a } => tag("absf", vec![opnd_to(a)]),
        DOp::CmpI { pred, a, b } => tag(
            "ci",
            vec![Value::str(pred_to(*pred)), opnd_to(a), opnd_to(b)],
        ),
        DOp::CmpF { pred, a, b } => tag(
            "cf",
            vec![Value::str(pred_to(*pred)), opnd_to(a), opnd_to(b)],
        ),
        DOp::Select { c, t, e } => tag("sel", vec![opnd_to(c), opnd_to(t), opnd_to(e)]),
        DOp::Alloca { words } => tag("alloca", vec![opnd_to(words)]),
        DOp::Load { addr } => tag("ld", vec![opnd_to(addr)]),
        DOp::Store { addr, value } => tag("st", vec![opnd_to(addr), opnd_to(value)]),
        DOp::Gep {
            base,
            index,
            stride,
        } => tag("gep", vec![opnd_to(base), opnd_to(index), i64_to(*stride)]),
        DOp::LoadIdx {
            base,
            index,
            stride,
        } => tag("ldx", vec![opnd_to(base), opnd_to(index), i64_to(*stride)]),
        DOp::StoreIdx {
            base,
            index,
            stride,
            value,
        } => tag(
            "stx",
            vec![
                opnd_to(base),
                opnd_to(index),
                i64_to(*stride),
                opnd_to(value),
            ],
        ),
        DOp::CallInternal { callee, args } => tag("call", vec![u(callee.0), opnds_to(args)]),
        DOp::CallInlined {
            callee,
            entry,
            body,
            ret,
        } => tag(
            "inl",
            vec![
                u(callee.0),
                block_to(*entry),
                arr(body.iter().map(inst_to)),
                opt_opnd_to(ret),
            ],
        ),
        DOp::CallIntrinsic { which, args } => tag(
            "intr",
            vec![Value::str(intrinsic_to(*which)), opnds_to(args)],
        ),
        DOp::CallHostPrim { name, prim, args } => {
            tag("prim", vec![Value::str(&**name), u(*prim), opnds_to(args)])
        }
        DOp::CallLibrary { name, ext_id, args } => tag(
            "lib",
            vec![Value::str(&**name), u(ext_id.0), opnds_to(args)],
        ),
        DOp::Trap { message } => tag("trap", vec![Value::str(&**message)]),
    }
}

fn op_from(v: &Value) -> Option<DOp> {
    let a = v.as_arr()?;
    let o = |i: usize| opnd_from(a.get(i)?);
    Some(match a.first()?.as_str()? {
        "const" => DOp::Const {
            bits: u64_from(a.get(1)?)?,
        },
        "bi" => DOp::BinI {
            op: bin_op_from(a.get(1)?.as_str()?)?,
            a: o(2)?,
            b: o(3)?,
        },
        "bf" => DOp::BinF {
            op: bin_op_from(a.get(1)?.as_str()?)?,
            a: o(2)?,
            b: o(3)?,
        },
        "negi" => DOp::NegI { a: o(1)? },
        "negf" => DOp::NegF { a: o(1)? },
        "notb" => DOp::NotBool { a: o(1)? },
        "noti" => DOp::NotInt { a: o(1)? },
        "itof" => DOp::IntToFloat { a: o(1)? },
        "ftoi" => DOp::FloatToInt { a: o(1)? },
        "sqrt" => DOp::Sqrt { a: o(1)? },
        "absi" => DOp::AbsI { a: o(1)? },
        "absf" => DOp::AbsF { a: o(1)? },
        "ci" => DOp::CmpI {
            pred: pred_from(a.get(1)?.as_str()?)?,
            a: o(2)?,
            b: o(3)?,
        },
        "cf" => DOp::CmpF {
            pred: pred_from(a.get(1)?.as_str()?)?,
            a: o(2)?,
            b: o(3)?,
        },
        "sel" => DOp::Select {
            c: o(1)?,
            t: o(2)?,
            e: o(3)?,
        },
        "alloca" => DOp::Alloca { words: o(1)? },
        "ld" => DOp::Load { addr: o(1)? },
        "st" => DOp::Store {
            addr: o(1)?,
            value: o(2)?,
        },
        "gep" => DOp::Gep {
            base: o(1)?,
            index: o(2)?,
            stride: i64_from(a.get(3)?)?,
        },
        "ldx" => DOp::LoadIdx {
            base: o(1)?,
            index: o(2)?,
            stride: i64_from(a.get(3)?)?,
        },
        "stx" => DOp::StoreIdx {
            base: o(1)?,
            index: o(2)?,
            stride: i64_from(a.get(3)?)?,
            value: o(4)?,
        },
        "call" => DOp::CallInternal {
            callee: FunctionId(as_u32(a.get(1)?)?),
            args: opnds_from(a.get(2)?)?,
        },
        "inl" => DOp::CallInlined {
            callee: FunctionId(as_u32(a.get(1)?)?),
            entry: block_from(a.get(2)?)?,
            body: a
                .get(3)?
                .as_arr()?
                .iter()
                .map(inst_from)
                .collect::<Option<_>>()?,
            ret: opt_opnd_from(a.get(4)?)?,
        },
        "intr" => DOp::CallIntrinsic {
            which: Intrinsic::by_name(a.get(1)?.as_str()?)?,
            args: opnds_from(a.get(2)?)?,
        },
        "prim" => DOp::CallHostPrim {
            name: a.get(1)?.as_str()?.into(),
            prim: as_u32(a.get(2)?)?,
            args: opnds_from(a.get(3)?)?,
        },
        "lib" => DOp::CallLibrary {
            name: a.get(1)?.as_str()?.into(),
            ext_id: FunctionId(as_u32(a.get(2)?)?),
            args: opnds_from(a.get(3)?)?,
        },
        "trap" => DOp::Trap {
            message: a.get(1)?.as_str()?.into(),
        },
        _ => return None,
    })
}

fn inst_to(di: &DInst) -> Value {
    arr([u(di.dst), op_to(&di.op)])
}

fn inst_from(v: &Value) -> Option<DInst> {
    let a = v.as_arr()?;
    Some(DInst {
        dst: as_u32(a.first()?)?,
        op: op_from(a.get(1)?)?,
    })
}

fn term_to(t: &DTerm) -> Value {
    match t {
        DTerm::Br(e) => arr([Value::str("br"), edge_to(e)]),
        DTerm::CondBr {
            cond,
            then_edge,
            else_edge,
            exiting,
            join,
        } => arr([
            Value::str("cbr"),
            opnd_to(cond),
            edge_to(then_edge),
            edge_to(else_edge),
            arr(exiting.iter().map(|l| loop_to(*l))),
            opt_block_to(*join),
        ]),
        DTerm::CondBrCmp {
            pred,
            float,
            a,
            b,
            then_edge,
            else_edge,
            exiting,
            join,
        } => arr([
            Value::str("cbrc"),
            Value::str(pred_to(*pred)),
            Value::Bool(*float),
            opnd_to(a),
            opnd_to(b),
            edge_to(then_edge),
            edge_to(else_edge),
            arr(exiting.iter().map(|l| loop_to(*l))),
            opt_block_to(*join),
        ]),
        DTerm::Ret(v) => arr([Value::str("ret"), opt_opnd_to(v)]),
        DTerm::Unreachable => arr([Value::str("unr")]),
    }
}

fn loops_from(v: &Value) -> Option<Box<[LoopId]>> {
    v.as_arr()?.iter().map(loop_from).collect()
}

fn term_from(v: &Value) -> Option<DTerm> {
    let a = v.as_arr()?;
    Some(match a.first()?.as_str()? {
        "br" => DTerm::Br(edge_from(a.get(1)?)?),
        "cbr" => DTerm::CondBr {
            cond: opnd_from(a.get(1)?)?,
            then_edge: edge_from(a.get(2)?)?,
            else_edge: edge_from(a.get(3)?)?,
            exiting: loops_from(a.get(4)?)?,
            join: opt_block_from(a.get(5)?)?,
        },
        "cbrc" => DTerm::CondBrCmp {
            pred: pred_from(a.get(1)?.as_str()?)?,
            float: a.get(2)?.as_bool()?,
            a: opnd_from(a.get(3)?)?,
            b: opnd_from(a.get(4)?)?,
            then_edge: edge_from(a.get(5)?)?,
            else_edge: edge_from(a.get(6)?)?,
            exiting: loops_from(a.get(7)?)?,
            join: opt_block_from(a.get(8)?)?,
        },
        "ret" => DTerm::Ret(opt_opnd_from(a.get(1)?)?),
        "unr" => DTerm::Unreachable,
        _ => return None,
    })
}

fn func_to(f: &DecodedFunction) -> Value {
    Value::obj(vec![
        ("name", Value::str(&f.name)),
        ("nparams", u(f.nparams as u64)),
        ("nregs", u(f.nregs as u64)),
        ("ssa", Value::Bool(f.ssa_clean)),
        ("entry", block_to(f.entry)),
        (
            "blocks",
            arr(f
                .blocks
                .iter()
                .map(|b| arr([arr(b.insts.iter().map(inst_to)), term_to(&b.term)]))),
        ),
    ])
}

fn func_from(v: &Value) -> Option<DecodedFunction> {
    let blocks: Option<Vec<DecodedBlock>> = v
        .get("blocks")?
        .as_arr()?
        .iter()
        .map(|b| {
            let b = b.as_arr()?;
            let insts: Option<Box<[DInst]>> = b.first()?.as_arr()?.iter().map(inst_from).collect();
            Some(DecodedBlock {
                insts: insts?,
                term: term_from(b.get(1)?)?,
            })
        })
        .collect();
    Some(DecodedFunction {
        name: v.get("name")?.as_str()?.to_string(),
        nparams: as_usize(v.get("nparams")?)?,
        nregs: as_usize(v.get("nregs")?)?,
        ssa_clean: v.get("ssa")?.as_bool()?,
        entry: block_from(v.get("entry")?)?,
        blocks: blocks?,
    })
}

fn spec_to(s: &InlineSpec) -> Value {
    Value::obj(vec![
        ("entry", block_to(s.entry)),
        ("nparams", u(s.nparams as u64)),
        ("nlocals", u(s.nlocals as u64)),
        ("body", arr(s.body.iter().map(inst_to))),
        ("ret", opt_opnd_to(&s.ret)),
    ])
}

fn spec_from(v: &Value) -> Option<InlineSpec> {
    let body: Option<Vec<DInst>> = v.get("body")?.as_arr()?.iter().map(inst_from).collect();
    Some(InlineSpec {
        entry: block_from(v.get("entry")?)?,
        nparams: as_usize(v.get("nparams")?)?,
        nlocals: as_usize(v.get("nlocals")?)?,
        body: body?,
        ret: opt_opnd_from(v.get("ret")?)?,
    })
}

fn stats_to(s: &PassStats) -> Value {
    arr([
        u(s.fused_cmp_br as u64),
        u(s.fused_loads as u64),
        u(s.fused_stores as u64),
        u(s.inlined_calls as u64),
        u(s.regs_before as u64),
        u(s.regs_after as u64),
        u(s.folded as u64),
        u(s.reduced_geps as u64),
    ])
}

fn stats_from(v: &Value) -> Option<PassStats> {
    let a = v.as_arr()?;
    Some(PassStats {
        fused_cmp_br: as_usize(a.first()?)?,
        fused_loads: as_usize(a.get(1)?)?,
        fused_stores: as_usize(a.get(2)?)?,
        inlined_calls: as_usize(a.get(3)?)?,
        regs_before: as_usize(a.get(4)?)?,
        regs_after: as_usize(a.get(5)?)?,
        folded: as_usize(a.get(6)?)?,
        reduced_geps: as_usize(a.get(7)?)?,
    })
}

// ---- prepared facts ----------------------------------------------------

fn trip_to(t: &TripCount) -> Value {
    match t {
        TripCount::Constant(n) => u64_to(*n),
        TripCount::Unknown => Value::Null,
    }
}

fn trip_from(v: &Value) -> Option<TripCount> {
    match v {
        Value::Null => Some(TripCount::Unknown),
        other => Some(TripCount::Constant(u64_from(other)?)),
    }
}

fn blocks_to(bs: &[BlockId]) -> Value {
    arr(bs.iter().map(|b| block_to(*b)))
}

fn blocks_from(v: &Value) -> Option<Vec<BlockId>> {
    v.as_arr()?.iter().map(block_from).collect()
}

fn loop_info_to(l: &LoopInfo) -> Value {
    arr([
        block_to(l.header),
        blocks_to(&l.latches),
        blocks_to(&l.blocks),
        opt_loop_to(l.parent),
        arr(l.children.iter().map(|c| loop_to(*c))),
        blocks_to(&l.exiting),
        blocks_to(&l.exits),
        u(l.depth),
    ])
}

fn loop_info_from(id: usize, v: &Value) -> Option<LoopInfo> {
    let a = v.as_arr()?;
    Some(LoopInfo {
        id: LoopId(id as u32),
        header: block_from(a.first()?)?,
        latches: blocks_from(a.get(1)?)?,
        blocks: blocks_from(a.get(2)?)?,
        parent: opt_loop_from(a.get(3)?)?,
        children: a
            .get(4)?
            .as_arr()?
            .iter()
            .map(loop_from)
            .collect::<Option<_>>()?,
        exiting: blocks_from(a.get(5)?)?,
        exits: blocks_from(a.get(6)?)?,
        depth: as_u32(a.get(7)?)?,
    })
}

fn ty_to(t: Type) -> &'static str {
    match t {
        Type::I64 => "i",
        Type::F64 => "f",
        Type::Bool => "b",
        Type::Ptr => "p",
        Type::Void => "v",
    }
}

fn ty_from(s: &str) -> Option<Type> {
    Some(match s {
        "i" => Type::I64,
        "f" => Type::F64,
        "b" => Type::Bool,
        "p" => Type::Ptr,
        "v" => Type::Void,
        _ => return None,
    })
}

fn prep_to(p: &PreparedFunction) -> Value {
    // Back edges sorted for a deterministic document (the in-memory map is
    // unordered; artifact bytes should not depend on hash order).
    let mut back: Vec<(&(BlockId, BlockId), &LoopId)> = p.back_edges.iter().collect();
    back.sort();
    Value::obj(vec![
        ("loops", arr(p.forest.loops.iter().map(loop_info_to))),
        (
            "bl",
            arr(p.forest.block_map().iter().map(|l| opt_loop_to(*l))),
        ),
        (
            "irr",
            arr(p
                .forest
                .irreducible
                .iter()
                .map(|(a, b)| arr([block_to(*a), block_to(*b)]))),
        ),
        ("trips", arr(p.trip_counts.iter().map(trip_to))),
        (
            "exiting",
            arr(p
                .exiting_loops
                .iter()
                .map(|ls| arr(ls.iter().map(|l| loop_to(*l))))),
        ),
        (
            "back",
            arr(back
                .iter()
                .map(|((from, to), lid)| arr([block_to(*from), block_to(*to), loop_to(**lid)]))),
        ),
        ("inner", arr(p.innermost.iter().map(|l| opt_loop_to(*l)))),
        ("header", arr(p.header_of.iter().map(|l| opt_loop_to(*l)))),
        ("ipd", arr(p.ipostdom.iter().map(|b| opt_block_to(*b)))),
        (
            "rty",
            arr(p.result_tys.iter().map(|t| Value::str(ty_to(*t)))),
        ),
        ("ofl", arr(p.operand_float.iter().map(|b| Value::Bool(*b)))),
    ])
}

fn prep_from(v: &Value) -> Option<PreparedFunction> {
    let loops: Option<Vec<LoopInfo>> = v
        .get("loops")?
        .as_arr()?
        .iter()
        .enumerate()
        .map(|(i, l)| loop_info_from(i, l))
        .collect();
    let block_loop: Option<Vec<Option<LoopId>>> =
        v.get("bl")?.as_arr()?.iter().map(opt_loop_from).collect();
    let irreducible: Option<Vec<(BlockId, BlockId)>> = v
        .get("irr")?
        .as_arr()?
        .iter()
        .map(|e| {
            let e = e.as_arr()?;
            Some((block_from(e.first()?)?, block_from(e.get(1)?)?))
        })
        .collect();
    let forest = LoopForest::from_parts(loops?, block_loop?, irreducible?);
    let trip_counts: Option<Vec<TripCount>> =
        v.get("trips")?.as_arr()?.iter().map(trip_from).collect();
    let exiting_loops: Option<Vec<Vec<LoopId>>> = v
        .get("exiting")?
        .as_arr()?
        .iter()
        .map(|ls| ls.as_arr()?.iter().map(loop_from).collect())
        .collect();
    let mut back_edges = HashMap::new();
    for e in v.get("back")?.as_arr()? {
        let e = e.as_arr()?;
        back_edges.insert(
            (block_from(e.first()?)?, block_from(e.get(1)?)?),
            loop_from(e.get(2)?)?,
        );
    }
    let innermost: Option<Vec<Option<LoopId>>> = v
        .get("inner")?
        .as_arr()?
        .iter()
        .map(opt_loop_from)
        .collect();
    let header_of: Option<Vec<Option<LoopId>>> = v
        .get("header")?
        .as_arr()?
        .iter()
        .map(opt_loop_from)
        .collect();
    let ipostdom: Option<Vec<Option<BlockId>>> =
        v.get("ipd")?.as_arr()?.iter().map(opt_block_from).collect();
    let result_tys: Option<Vec<Type>> = v
        .get("rty")?
        .as_arr()?
        .iter()
        .map(|t| ty_from(t.as_str()?))
        .collect();
    let operand_float: Option<Vec<bool>> = v
        .get("ofl")?
        .as_arr()?
        .iter()
        .map(|b| b.as_bool())
        .collect();
    Some(PreparedFunction {
        forest,
        trip_counts: trip_counts?,
        exiting_loops: exiting_loops?,
        back_edges,
        innermost: innermost?,
        header_of: header_of?,
        ipostdom: ipostdom?,
        result_tys: result_tys?,
        operand_float: operand_float?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unit::compute_units;
    use pt_ir::{FunctionBuilder, Module, Value as IrValue};

    fn roundtrip(u: &FunctionUnit) -> FunctionUnit {
        let text = unit_to_json(u).render();
        let doc = Value::parse(&text).expect("rendered JSON reparses");
        unit_from_json(&doc).expect("decodes")
    }

    #[test]
    fn units_roundtrip_bit_identically() {
        let mut m = Module::new("rt");
        let mut b = FunctionBuilder::new("leaf", vec![("x".into(), Type::F64)], Type::F64);
        let v = b.bin(BinOp::Mul, b.param(0), 2.5f64);
        b.ret(Some(v));
        let leaf = m.add_function(b.finish());
        let mut b = FunctionBuilder::new("kern", vec![("n".into(), Type::I64)], Type::I64);
        let buf = b.alloca(16i64);
        b.for_loop(0i64, b.param(0), 1i64, |b, iv| {
            let a = b.gep(buf, iv, 1);
            b.store(a, iv);
            b.call_external("pt_work_flops", vec![IrValue::int(1)], Type::Void);
        });
        b.call(leaf, vec![IrValue::float(1.0)], Type::F64);
        b.call_external("MPI_Allreduce", vec![IrValue::int(0)], Type::Void);
        let out = b.load(buf, Type::I64);
        b.ret(Some(out));
        m.add_function(b.finish());

        for unit in &compute_units(&m) {
            let rt = roundtrip(unit);
            assert_eq!(format!("{rt:?}"), format!("{unit:?}"));
        }
    }

    #[test]
    fn malformed_documents_decode_to_none() {
        for text in ["{}", "{\"v\": 999}", "{\"v\": 1, \"prep\": 3}", "[1, 2, 3]"] {
            let doc = Value::parse(text).expect("valid JSON");
            assert!(unit_from_json(&doc).is_none(), "{text} must be rejected");
        }
    }
}
