//! The taint-policy lattice abstraction.
//!
//! The paper's dynamic stage propagates exactly one label domain: *which
//! program parameters* reach a value ([`crate::label`]). This module lifts
//! that hardwired choice into a policy seam with two layers:
//!
//! * [`PolicyKind`] — the runtime identity of a policy. It selects the
//!   engine specialization, salts content-addressed artifact keys (two
//!   policies must never share a cached analysis), and travels over the
//!   wire (protocol v1.4 `policy` field).
//! * [`PolicyMode`] — the compile-time face of the same choice. The
//!   interpreter's hot loops are generic over `P: PolicyMode` and branch
//!   on the associated `const`s, so each policy monomorphizes to its own
//!   dispatch loop. The paper policy ([`ParamPolicy`]) compiles to exactly
//!   the code the old `<const TAINT: bool>` specialization produced —
//!   every `P::SECURITY` branch folds away — which is how bit-identity of
//!   the default path is preserved by construction, not by testing alone.
//!
//! ## The lattice contract
//!
//! All policies share the [`crate::label::LabelTable`] representation: a
//! label is a node in a dedup'd union tree over *base labels*, and the
//! join is [`LabelTable::union`] — associative, commutative, idempotent,
//! with `Label::EMPTY` as bottom. Policies differ in **where base labels
//! enter** and **what the run reports**:
//!
//! * [`PolicyKind::ParamSet`] — bases are the marked program parameters
//!   (`pt_param_i64` / `pt_register_param`); sinks are loop-exit branch
//!   conditions (§4.1). The security intrinsics are inert pass-throughs.
//! * [`PolicyKind::Security`] — a strict superset: parameter sources stay
//!   active (so any program without security intrinsics behaves
//!   bit-identically under either policy, which is what lets CI re-run
//!   the whole differential matrix under `PT_POLICY=security` with zero
//!   carve-outs), and three intrinsics come alive: `pt_taint_source`
//!   introduces a source base label (may-taint join with the value's
//!   existing label), `pt_sanitize` clears a value's label to bottom,
//!   and `pt_sink_check` records a per-sink violation ledger
//!   ([`crate::records::SinkRecord`]) without altering the value.
//!
//! [`LabelTable::union`]: crate::label::LabelTable::union

/// Runtime identity of the taint policy a run executes under.
///
/// Defaults come from the `PT_POLICY` environment variable (mirroring
/// `PT_TIER` for the execution tiers) so the whole test matrix can be
/// flipped to the security policy without touching any call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum PolicyKind {
    /// The paper's parameter-label domain (the default).
    #[default]
    ParamSet,
    /// Source/sink/sanitizer policy with a may-taint join.
    Security,
}

impl PolicyKind {
    /// Canonical wire/key name. This string is part of content-addressed
    /// artifact keys (store keys, unit-key environment digests) — never
    /// change it for an existing policy.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::ParamSet => "param-set",
            PolicyKind::Security => "security",
        }
    }

    /// Parse a wire/environment name. Accepts the canonical names plus
    /// `default` as an alias for the paper policy.
    pub fn parse(s: &str) -> Option<PolicyKind> {
        match s {
            "param-set" | "paramset" | "default" => Some(PolicyKind::ParamSet),
            "security" => Some(PolicyKind::Security),
            _ => None,
        }
    }

    /// Read the policy from the `PT_POLICY` environment variable:
    /// `security`, `param-set`, or anything else / unset → [`PolicyKind::ParamSet`].
    pub fn from_env() -> PolicyKind {
        match std::env::var("PT_POLICY") {
            Ok(s) => PolicyKind::parse(&s).unwrap_or_default(),
            Err(_) => PolicyKind::default(),
        }
    }

    /// All policies, for enumerating test/bench matrices.
    pub const ALL: [PolicyKind; 2] = [PolicyKind::ParamSet, PolicyKind::Security];
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Compile-time face of a policy: the interpreter loops are generic over
/// `P: PolicyMode` and read these `const`s, so the optimizer folds every
/// policy branch at monomorphization time. Three modes exist because
/// "taint off" (the measurement sweep) is itself a policy specialization.
pub trait PolicyMode {
    /// Labels propagate at all. `false` compiles label unions, control
    /// scopes, and record merging out of the loop (the measurement mode).
    const TAINT: bool;
    /// The security source/sink/sanitizer intrinsics are live.
    const SECURITY: bool;
}

/// Measurement mode: no label propagation at all (`taint: false`).
pub struct Measure;

/// The paper's parameter-label policy (`taint: true`, default).
pub struct ParamPolicy;

/// The security source/sink/sanitizer policy.
pub struct SecurityPolicy;

impl PolicyMode for Measure {
    const TAINT: bool = false;
    const SECURITY: bool = false;
}

impl PolicyMode for ParamPolicy {
    const TAINT: bool = true;
    const SECURITY: bool = false;
}

impl PolicyMode for SecurityPolicy {
    const TAINT: bool = true;
    const SECURITY: bool = true;
}

/// The base-label name for security source id `id`. Source bases share
/// the label table with parameter bases; the `src#` prefix keeps them
/// out of the program-parameter namespace (parameter names are
/// identifiers and cannot contain `#`).
pub fn source_base_name(id: i64) -> String {
    format!("src#{id}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_round_trip() {
        for kind in PolicyKind::ALL {
            assert_eq!(PolicyKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.to_string(), kind.name());
        }
        assert_eq!(PolicyKind::parse("default"), Some(PolicyKind::ParamSet));
        assert_eq!(PolicyKind::parse("bogus"), None);
    }

    #[test]
    fn default_is_the_paper_policy() {
        assert_eq!(PolicyKind::default(), PolicyKind::ParamSet);
        const { assert!(ParamPolicy::TAINT && !ParamPolicy::SECURITY) };
        const { assert!(SecurityPolicy::TAINT && SecurityPolicy::SECURITY) };
        const { assert!(!Measure::TAINT && !Measure::SECURITY) };
    }

    #[test]
    fn source_bases_cannot_collide_with_parameters() {
        // Parameter names are IR identifiers; `#` is not in that alphabet.
        assert!(source_base_name(3).contains('#'));
    }
}
