//! # pt-taint — dynamic taint analysis for performance modeling
//!
//! The dynamic half of Perf-Taint (PPoPP'21, §3–§5): a DataFlowSanitizer-
//! style taint runtime driving an interpreter over [`pt_ir`] programs.
//!
//! * [`label`] — 16-bit taint labels organized as a deduplicated union tree
//!   (the DFSan design described in §5.2), with memoized parameter sets.
//! * [`memory`] — word-granular memory with a 1:1 shadow label per word.
//! * [`path`] — calling-context interning (context-aware records, §5.2).
//! * [`prepared`] — precomputed per-function facts (loops, postdominators,
//!   back edges, trip counts) plus the decoded program.
//! * [`decode`] — the decode stage: each function compiled once into a
//!   flat bytecode (pre-resolved operands, folded types, pre-bound
//!   callees, per-edge phi move lists, inlined branch metadata), then
//!   rewritten by the [`decode::passes`] pipeline (superinstruction
//!   fusion of `cmp+condbr` and `gep+load`/`gep+store`, linear-scan
//!   register allocation shrinking frames to true register pressure).
//! * [`ops`] — scalar semantics shared by both engines (shift behavior),
//!   defined once so the engines cannot diverge on them.
//! * [`host`] — the external-call interface; `pt-mpisim` plugs in here with
//!   the MPI library database of §5.3.
//! * [`interp`] — the execution engine: a dense dispatch loop over the
//!   decoded bytecode implementing data-flow propagation, the control-flow
//!   tainting extension, loop-exit sinks, branch coverage, simulated-time
//!   accounting, and call-path profiling.
//! * [`reference`] — the legacy tree-walking interpreter, kept as the
//!   reference implementation for differential testing.
//! * [`differential`] — the bit-identity contract between the two engines
//!   and the comparison helpers that enforce it.
//! * [`records`] / [`profile`] — run artifacts consumed by the `perf-taint`
//!   pipeline and by `pt-measure`.
//!
//! See `crates/taint/README.md` for the decode pipeline and bytecode
//! layout.
//!
//! ## Example
//!
//! ```
//! use pt_ir::{FunctionBuilder, Module, Type, Value};
//! use pt_taint::prepared::PreparedModule;
//! use pt_taint::interp::{Interpreter, InterpConfig};
//! use pt_taint::host::WorkOnlyHandler;
//!
//! // for (i = 0; i < n; i++) work(1);   -- n is the marked parameter
//! let mut m = Module::new("demo");
//! let mut b = FunctionBuilder::new("main", vec![], Type::Void);
//! let n = b.call_external("pt_param_i64", vec![Value::int(0)], Type::I64);
//! b.for_loop(0i64, n, 1i64, |b, _| {
//!     b.call_external("pt_work_flops", vec![Value::int(1)], Type::Void);
//! });
//! b.ret(None);
//! m.add_function(b.finish());
//!
//! let prepared = PreparedModule::compute(&m);
//! let interp = Interpreter::new(
//!     &m, &prepared, WorkOnlyHandler::default(),
//!     vec![("n".into(), 10)], InterpConfig::default(),
//! );
//! let out = interp.run_named("main", &[]).unwrap();
//! // The loop's exit condition was tainted by parameter 0 ("n") and the
//! // loop iterated 10 times.
//! let loops = out.records.loops_by_function();
//! let rec = loops.values().next().unwrap();
//! assert!(rec.params.contains(0));
//! assert_eq!(rec.iterations, 10);
//! ```

pub mod decode;
pub mod differential;
pub mod host;
pub mod interp;
pub mod label;
pub mod memory;
pub mod ops;
pub mod path;
pub mod policy;
pub mod prepared;
pub mod profile;
pub mod records;
pub mod reference;
pub mod tier;
pub mod unit;
pub mod unit_io;

pub use decode::passes::PassStats;
pub use decode::{DecodedFunction, DecodedModule};
pub use host::{ExternResult, ExternalHandler, HostCtx, NullHandler, WorkOnlyHandler};
pub use interp::{CtlFlowPolicy, InterpConfig, InterpError, Interpreter, RunOutput};
pub use label::{Label, LabelTable, ParamSet};
pub use memory::{MemError, Memory, TVal};
pub use path::{CallPathTable, PathId};
pub use policy::{Measure, ParamPolicy, PolicyKind, PolicyMode, SecurityPolicy};
pub use prepared::{PreparedFunction, PreparedModule};
pub use profile::{Profile, ProfileEntry};
pub use records::{BranchRecord, LoopKey, LoopRecord, SinkRecord, TaintRecords};
pub use reference::ReferenceInterpreter;
pub use tier::{SpecializedModule, TierConfig, TierMode, TierPlan, TierStats};
