//! Tiered execution: profile-guided re-specialization of hot functions.
//!
//! The decode-once engine ([`crate::interp`]) is tier 0: one generic
//! dispatch loop over [`crate::decode::DOp`] bytecode. This module adds a
//! second tier, built *from runtime evidence* — the per-call profile and
//! loop records of a warmup run (or the live counters of the current run)
//! pick the hot functions, and each hot function is re-specialized three
//! ways, every one individually toggleable for A/B benchmarking:
//!
//! * **all-operands-untainted fast path** ([`TierConfig::fast_path`]) —
//!   the interpreter's general loop switches to a label-free instruction
//!   loop while every value in flight is untainted, guarded exactly (the
//!   Taint Rabbit move): the frame enters fast mode only when every
//!   argument and the inherited control context are label-free, and bails
//!   back to the general loop the moment a tainted value appears (a load
//!   from tainted shadow memory, a call returning a tainted value). The
//!   guard is sound, never predictive, so the bailout — *deoptimization*
//!   — re-executes nothing that had visible effects and the run output
//!   stays bit-identical.
//! * **superblock formation** ([`TierConfig::superblocks`]) — hot-path
//!   straightening: blocks are laid out in warmup-biased trace order
//!   (branch records say which way each recorded conditional usually
//!   goes), and an unconditional branch to the next block in layout order
//!   is elided entirely — the side not taken keeps a full entry point, so
//!   side exits fall back into ordinary dispatch.
//! * **direct-threaded dispatch** ([`TierConfig::threaded`]) — the
//!   function is compiled into a flat [`TInst`] array: one opcode per
//!   handler (binop/compare selectors folded into the opcode at
//!   specialization time), block boundaries as explicit [`TInst::Enter`]
//!   ops, terminators as self-contained branch ops ([`TInst::Jmp`],
//!   [`TInst::CondBr`], [`TInst::CondBrCmp`], [`TInst::Ret`]) whose edge
//!   data and jump targets are pre-resolved into side tables, and the
//!   rare heavyweight ops (calls, traps) as [`TInst::Slow`] indices into
//!   a dense clone of those instructions. The interpreter runs a single
//!   `pc`-driven loop over this array ([`crate::interp`]'s threaded
//!   executor).
//!
//! Specialization is gated per function on `pt_analysis::ssa_verify`
//! (`DecodedFunction::ssa_clean`): the register-renumbered, read-after-
//! write-safe layout both tiers rely on only exists for verified
//! functions.
//!
//! **The bit-identity contract is unconditional.** A function may run in
//! tier 0, tier 1, or deoptimize mid-run; the [`crate::interp::RunOutput`]
//! — clock bits, instruction counts, records, paths, profile, label table
//! — is identical in every case, and [`crate::differential`] pins all of
//! it against the reference engine. [`TierStats`] is the only addition,
//! and it is deliberately excluded from the differential comparison.

use crate::decode::{DInst, DOp, DTerm, DecodedFunction, DecodedModule, Edge, Opnd};
use crate::label::Label;
use crate::memory::TVal;
use crate::profile::Profile;
use crate::records::{BranchRecord, TaintRecords};
use pt_analysis::loops::LoopId;
use pt_ir::{BinOp, BlockId, CmpPred, FunctionId};
use std::collections::BTreeMap;
use std::sync::Arc;

/// When tier-1 specialization happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TierMode {
    /// Never specialize (tier 0 only).
    Off,
    /// Specialize a function when it crosses the hotness thresholds
    /// ([`TierConfig::hot_calls`] live in-run; [`TierPlan::from_run`]
    /// additionally consults loop records between runs).
    #[default]
    Warmup,
    /// Specialize every eligible function up front (CI runs the
    /// differential suites this way so tier-1 paths are always
    /// exercised).
    Force,
}

impl TierMode {
    /// Read the mode from the `PT_TIER` environment variable:
    /// `off`, `force`, or anything else / unset → [`TierMode::Warmup`].
    pub fn from_env() -> TierMode {
        match std::env::var("PT_TIER").as_deref() {
            Ok("off") => TierMode::Off,
            Ok("force") => TierMode::Force,
            _ => TierMode::Warmup,
        }
    }
}

/// Tier-1 policy knobs. Defaults come from the environment
/// ([`TierMode::from_env`]) so the whole test matrix can be flipped to
/// forced tiering (`PT_TIER=force`) without touching any call site.
#[derive(Debug, Clone)]
pub struct TierConfig {
    pub mode: TierMode,
    /// Enable the all-operands-untainted fast path.
    pub fast_path: bool,
    /// Enable warmup-biased superblock layout (trace straightening).
    pub superblocks: bool,
    /// Enable direct-threaded dispatch for specialized functions.
    pub threaded: bool,
    /// Calls to one function before it is specialized mid-run
    /// ([`TierMode::Warmup`]).
    pub hot_calls: u64,
    /// Total loop iterations inside one function before a between-runs
    /// plan ([`TierPlan::from_run`]) marks it hot.
    pub hot_iters: u64,
    /// Chaos knob for tests: force a fast-path deoptimization every N
    /// guard checks (0 = never). Deopts are bit-identical by contract,
    /// so any value must leave outputs unchanged.
    pub deopt_every: u64,
}

impl Default for TierConfig {
    fn default() -> Self {
        TierConfig {
            mode: TierMode::from_env(),
            fast_path: true,
            superblocks: true,
            threaded: true,
            hot_calls: 64,
            hot_iters: 256,
            deopt_every: 0,
        }
    }
}

/// What the tiers did during one run. Carried on
/// [`crate::interp::RunOutput`] but **excluded** from the differential
/// comparison: it describes *how* the run executed, never *what* it
/// observed.
#[derive(Debug, Clone, Default)]
pub struct TierStats {
    /// Functions with at least one specialization active at run start.
    pub specialized: u64,
    /// Functions specialized mid-run on the hotness threshold.
    pub respecialized: u64,
    /// Frames entered through the threaded executor.
    pub threaded_entries: u64,
    /// Threaded ops dispatched (includes block entries and terminators).
    pub threaded_insts: u64,
    /// Frames that entered the untainted fast path.
    pub fast_entries: u64,
    /// Fast-path bailouts to the general loop.
    pub fast_deopts: u64,
    /// Instructions retired while the fast path was driving (descendant
    /// calls included).
    pub fast_insts: u64,
}

/// Which functions to specialize.
#[derive(Debug, Clone)]
pub struct TierPlan {
    pub hot: Vec<bool>,
}

impl TierPlan {
    /// Every function (the [`TierMode::Force`] plan).
    pub fn all(nfuncs: usize) -> TierPlan {
        TierPlan {
            hot: vec![true; nfuncs],
        }
    }

    /// Hotness from a finished run: a function is hot when its merged
    /// profile entry crossed [`TierConfig::hot_calls`] calls or its loops
    /// accumulated [`TierConfig::hot_iters`] iterations (the paper's loop
    /// records double as the hotness signal — a function called once that
    /// spins a large loop is exactly as hot as a small accessor called
    /// thousands of times).
    pub fn from_run(
        profile: &Profile,
        records: &TaintRecords,
        nfuncs: usize,
        cfg: &TierConfig,
    ) -> TierPlan {
        let mut hot = vec![false; nfuncs];
        for e in profile.by_function().values() {
            if e.calls >= cfg.hot_calls && e.func.index() < nfuncs {
                hot[e.func.index()] = true;
            }
        }
        let mut iters: BTreeMap<usize, u64> = BTreeMap::new();
        for (key, rec) in &records.loops {
            if key.func.index() < nfuncs {
                *iters.entry(key.func.index()).or_default() += rec.iterations;
            }
        }
        for (i, n) in iters {
            if n >= cfg.hot_iters {
                hot[i] = true;
            }
        }
        TierPlan { hot }
    }
}

/// The tier-1 artifact for a module: per-function threaded code (when
/// compiled) and fast-path eligibility. Shareable across runs — the code
/// is immutable once built.
#[derive(Debug, Clone, Default)]
pub struct SpecializedModule {
    /// Per internal function: threaded code, if compiled.
    pub funcs: Vec<Option<Arc<ThreadedFunction>>>,
    /// Per internal function: fast path enabled.
    pub fast_ok: Vec<bool>,
    /// Functions with at least one specialization.
    pub specialized: usize,
}

/// Build the tier-1 artifact for `plan`'s hot set. `branches` is the
/// warmup run's branch coverage (biases superblock layout); `None` falls
/// back to the static then-edge preference.
pub fn specialize(
    decoded: &DecodedModule,
    plan: &TierPlan,
    cfg: &TierConfig,
    branches: Option<&BTreeMap<(FunctionId, BlockId), BranchRecord>>,
) -> SpecializedModule {
    let n = decoded.functions.len();
    let mut funcs: Vec<Option<Arc<ThreadedFunction>>> = vec![None; n];
    let mut fast_ok = vec![false; n];
    let mut specialized = 0usize;
    for (i, f) in decoded.functions.iter().enumerate() {
        if !plan.hot.get(i).copied().unwrap_or(false) || !f.ssa_clean {
            continue;
        }
        let mut any = false;
        if cfg.fast_path {
            fast_ok[i] = true;
            any = true;
        }
        if cfg.threaded {
            let tf = compile_function(f, FunctionId(i as u32), branches, cfg);
            // Verification backing the executor's unchecked register and
            // pool access: a function whose compiled code fails the bounds
            // audit stays on the general loop (never expected — the audit
            // is defense in depth against compiler bugs).
            if tf.check_bounds() {
                funcs[i] = Some(Arc::new(tf));
                any = true;
            }
        }
        if any {
            specialized += 1;
        }
    }
    SpecializedModule {
        funcs,
        fast_ok,
        specialized,
    }
}

/// One function compiled for direct-threaded dispatch: a flat op array
/// driven by a single program counter.
#[derive(Debug)]
pub struct ThreadedFunction {
    pub ops: Vec<TInst>,
    /// Immediate pool: [`TOp`] operands with the constant bit address
    /// this table. Deduplicated per function.
    pub consts: Vec<u64>,
    /// Unconditional-branch data ([`TInst::Jmp`]), cloned out of the
    /// decoded terminators so a taken block boundary never detours back
    /// through [`DecodedFunction`]'s block table.
    pub jumps: Vec<TJump>,
    /// Conditional-branch data ([`TInst::CondBr`] / [`TInst::CondBrCmp`]).
    pub branches: Vec<TBranch>,
    /// Heavyweight ops ([`TInst::Slow`]: calls, traps), cloned into a
    /// dense table so call sites load one instruction directly instead of
    /// detouring through the decoded block table.
    pub slow_ops: Vec<DInst>,
    /// Block index → position of its [`TInst::Enter`] in `ops`.
    pub entry_of: Vec<u32>,
    /// Position of the entry block's `Enter`.
    pub entry: u32,
    /// Unconditional fallthrough branches elided by the layout.
    pub straightened: u32,
    /// The register-frame size every operand index in `ops` was audited
    /// against ([`Self::check_bounds`]). The executor refuses to run this
    /// code against a frame of any other size.
    pub nregs: u32,
}

/// Compiled unconditional branch: the cloned CFG edge (phi moves, loop
/// bookkeeping) plus its pre-resolved jump target (one past the target's
/// [`TInst::Enter`]).
#[derive(Debug, Clone)]
pub struct TJump {
    pub edge: Edge,
    pub pc: u32,
}

/// Compiled conditional branch: both cloned edges, the sink/scope
/// metadata, and both pre-resolved jump targets. Self-contained so the
/// executor's block boundaries never re-read the decoded terminator.
#[derive(Debug, Clone)]
pub struct TBranch {
    pub then_edge: Edge,
    pub else_edge: Edge,
    pub exiting: Box<[LoopId]>,
    pub join: Option<BlockId>,
    pub then_pc: u32,
    pub else_pc: u32,
    /// The branching block (branch-coverage record key).
    pub block: BlockId,
}

impl ThreadedFunction {
    /// Audit backing the executor's unchecked register/pool access: every
    /// index this code can present is within the frame (`nregs`), the
    /// immediate pool, the side tables, or the block table; the program
    /// counter can never run off the end of `ops` (the last op is a
    /// terminator, and every jump target — `entry`, `entry_of`, and the
    /// pre-resolved branch pcs — lands on or one past an `Enter`, which
    /// is never last).
    pub fn check_bounds(&self) -> bool {
        let nregs = self.nregs as usize;
        let r = |o: TOp| {
            if o.is_const() {
                o.index() < self.consts.len()
            } else {
                o.index() < nregs
            }
        };
        let d = |dst: u32| (dst as usize) < nregs;
        let blk = |b: BlockId| b.index() < self.entry_of.len();
        let jump_target = |e: u32| matches!(self.ops.get(e as usize), Some(TInst::Enter { .. }));
        // Branch pcs point one past an `Enter` (the inlined block-entry
        // bookkeeping at the jump site replaces the elided dispatch).
        let past_enter = |pc: u32| pc >= 1 && jump_target(pc - 1);
        if !matches!(
            self.ops.last(),
            Some(
                TInst::Jmp { .. }
                    | TInst::AddIcJmp { .. }
                    | TInst::CondBr { .. }
                    | TInst::CondBrCmp { .. }
                    | TInst::Ret { .. }
                    | TInst::RetVoid
                    | TInst::Unreachable
            )
        ) {
            return false;
        }
        if !jump_target(self.entry) || !self.entry_of.iter().all(|&e| jump_target(e)) {
            return false;
        }
        if !self
            .jumps
            .iter()
            .all(|j| past_enter(j.pc) && blk(j.edge.target))
        {
            return false;
        }
        if !self.branches.iter().all(|b| {
            past_enter(b.then_pc)
                && past_enter(b.else_pc)
                && blk(b.then_edge.target)
                && blk(b.else_edge.target)
                && blk(b.block)
        }) {
            return false;
        }
        self.ops.iter().all(|op| match *op {
            TInst::Enter { block } => blk(block),
            TInst::Slow { slow } => (slow as usize) < self.slow_ops.len(),
            TInst::Jmp { jump } => (jump as usize) < self.jumps.len(),
            TInst::AddIcJmp { dst, a, jump, .. } => {
                d(dst) && r(a) && (jump as usize) < self.jumps.len()
            }
            TInst::CondBr { cond, br } => r(cond) && (br as usize) < self.branches.len(),
            TInst::CondBrCmp { a, b, br, .. } => {
                r(a) && r(b) && (br as usize) < self.branches.len()
            }
            TInst::Ret { val } => r(val),
            TInst::RetVoid | TInst::Unreachable => true,
            TInst::Const { dst, .. } => d(dst),
            TInst::AddI { dst, a, b }
            | TInst::SubI { dst, a, b }
            | TInst::MulI { dst, a, b }
            | TInst::DivI { dst, a, b }
            | TInst::RemI { dst, a, b }
            | TInst::AndI { dst, a, b }
            | TInst::OrI { dst, a, b }
            | TInst::XorI { dst, a, b }
            | TInst::ShlI { dst, a, b }
            | TInst::ShrI { dst, a, b }
            | TInst::MinI { dst, a, b }
            | TInst::MaxI { dst, a, b }
            | TInst::AddF { dst, a, b }
            | TInst::SubF { dst, a, b }
            | TInst::MulF { dst, a, b }
            | TInst::DivF { dst, a, b }
            | TInst::RemF { dst, a, b }
            | TInst::MinF { dst, a, b }
            | TInst::MaxF { dst, a, b }
            | TInst::CmpI { dst, a, b, .. }
            | TInst::CmpF { dst, a, b, .. } => d(dst) && r(a) && r(b),
            TInst::NegI { dst, a }
            | TInst::NegF { dst, a }
            | TInst::NotBool { dst, a }
            | TInst::NotInt { dst, a }
            | TInst::IntToFloat { dst, a }
            | TInst::FloatToInt { dst, a }
            | TInst::Sqrt { dst, a }
            | TInst::AbsI { dst, a }
            | TInst::AbsF { dst, a }
            | TInst::AddIC { dst, a, .. }
            | TInst::SubIC { dst, a, .. }
            | TInst::MulIC { dst, a, .. }
            | TInst::AndIC { dst, a, .. }
            | TInst::OrIC { dst, a, .. }
            | TInst::XorIC { dst, a, .. }
            | TInst::ShlIC { dst, a, .. }
            | TInst::ShrIC { dst, a, .. }
            | TInst::CmpIC { dst, a, .. }
            | TInst::DivIC { dst, a, .. }
            | TInst::RemIC { dst, a, .. }
            | TInst::AddFC { dst, a, .. }
            | TInst::MulFC { dst, a, .. }
            | TInst::SubFC { dst, a, .. }
            | TInst::DivFC { dst, a, .. } => d(dst) && r(a),
            TInst::Sel { dst, c, t, e } => d(dst) && r(c) && r(t) && r(e),
            TInst::Alloca { dst, words } => d(dst) && r(words),
            TInst::Load { dst, addr } => d(dst) && r(addr),
            TInst::Store { dst, addr, value } => d(dst) && r(addr) && r(value),
            TInst::Gep {
                dst,
                base,
                index,
                stride,
            }
            | TInst::LoadIdx {
                dst,
                base,
                index,
                stride,
            } => d(dst) && r(base) && r(index) && (stride as usize) < self.consts.len(),
            TInst::StoreIdx {
                dst,
                base,
                index,
                stride,
                value,
            } => d(dst) && r(base) && r(index) && r(value) && (stride as usize) < self.consts.len(),
        })
    }
}

/// A compact threaded operand: a register index, or — with the top bit
/// set — an index into [`ThreadedFunction::consts`]. Four bytes instead
/// of the decoded program's 16-byte [`Opnd`], which keeps [`TInst`] small
/// enough (24 bytes) that fetching one per dispatch is a single cache
/// line's worth of work instead of a 64-byte struct copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TOp(pub u32);

impl TOp {
    const CONST: u32 = 1 << 31;

    /// True when this operand addresses the immediate pool. Immediates
    /// are untainted by construction, exactly like [`Opnd::Imm`] in the
    /// general loop.
    #[inline(always)]
    pub fn is_const(self) -> bool {
        self.0 & TOp::CONST != 0
    }

    /// Register or pool index, depending on [`Self::is_const`].
    #[inline(always)]
    pub fn index(self) -> usize {
        (self.0 & !TOp::CONST) as usize
    }

    /// Checked resolution against a frame and pool (tests and cold
    /// paths; the executor uses its audited unchecked equivalent).
    #[inline(always)]
    pub fn resolve(self, regs: &[TVal], consts: &[u64]) -> TVal {
        if self.is_const() {
            TVal {
                bits: consts[self.index()],
                label: Label::EMPTY,
            }
        } else {
            regs[self.index()]
        }
    }
}

/// The per-function immediate pool under construction.
#[derive(Default)]
struct Pool {
    consts: Vec<u64>,
    index: BTreeMap<u64, u32>,
}

impl Pool {
    fn intern(&mut self, bits: u64) -> u32 {
        if let Some(&i) = self.index.get(&bits) {
            return i;
        }
        let i = self.consts.len() as u32;
        self.consts.push(bits);
        self.index.insert(bits, i);
        i
    }

    fn op(&mut self, o: Opnd) -> TOp {
        match o {
            // Register indices come from decode's dense value numbering,
            // bounded by function size — nowhere near the 2^31 tag bit.
            Opnd::Reg(r) => TOp(r),
            Opnd::Imm(v) => TOp(self.intern(v) | TOp::CONST),
        }
    }
}

/// A threaded op. Selector dimensions that the generic loop dispatches on
/// at run time (int vs float binop kind, compare predicate location) are
/// folded into the opcode here, so the hot loop is a single jump-table
/// dispatch per op. Calls and traps — where dispatch cost is irrelevant —
/// stay in the decoded program and are reached through [`TInst::Slow`].
#[derive(Debug, Clone, Copy)]
pub enum TInst {
    /// Block entry: coverage mark, fuel boundary, control-scope pops,
    /// context recompute. Not an executed instruction.
    Enter {
        block: BlockId,
    },
    AddI {
        dst: u32,
        a: TOp,
        b: TOp,
    },
    SubI {
        dst: u32,
        a: TOp,
        b: TOp,
    },
    MulI {
        dst: u32,
        a: TOp,
        b: TOp,
    },
    DivI {
        dst: u32,
        a: TOp,
        b: TOp,
    },
    RemI {
        dst: u32,
        a: TOp,
        b: TOp,
    },
    AndI {
        dst: u32,
        a: TOp,
        b: TOp,
    },
    OrI {
        dst: u32,
        a: TOp,
        b: TOp,
    },
    XorI {
        dst: u32,
        a: TOp,
        b: TOp,
    },
    ShlI {
        dst: u32,
        a: TOp,
        b: TOp,
    },
    ShrI {
        dst: u32,
        a: TOp,
        b: TOp,
    },
    MinI {
        dst: u32,
        a: TOp,
        b: TOp,
    },
    MaxI {
        dst: u32,
        a: TOp,
        b: TOp,
    },
    AddF {
        dst: u32,
        a: TOp,
        b: TOp,
    },
    SubF {
        dst: u32,
        a: TOp,
        b: TOp,
    },
    MulF {
        dst: u32,
        a: TOp,
        b: TOp,
    },
    DivF {
        dst: u32,
        a: TOp,
        b: TOp,
    },
    RemF {
        dst: u32,
        a: TOp,
        b: TOp,
    },
    MinF {
        dst: u32,
        a: TOp,
        b: TOp,
    },
    MaxF {
        dst: u32,
        a: TOp,
        b: TOp,
    },
    NegI {
        dst: u32,
        a: TOp,
    },
    NegF {
        dst: u32,
        a: TOp,
    },
    NotBool {
        dst: u32,
        a: TOp,
    },
    NotInt {
        dst: u32,
        a: TOp,
    },
    IntToFloat {
        dst: u32,
        a: TOp,
    },
    FloatToInt {
        dst: u32,
        a: TOp,
    },
    Sqrt {
        dst: u32,
        a: TOp,
    },
    AbsI {
        dst: u32,
        a: TOp,
    },
    AbsF {
        dst: u32,
        a: TOp,
    },
    CmpI {
        dst: u32,
        pred: CmpPred,
        a: TOp,
        b: TOp,
    },
    CmpF {
        dst: u32,
        pred: CmpPred,
        a: TOp,
        b: TOp,
    },
    /// Immediate forms: one constant operand, folded into the op at
    /// specialization time. No pool load, no operand-kind branch in the
    /// hot arm, and the label union is skipped outright — an immediate's
    /// label is statically empty and `union(l, EMPTY)` is `l` with no
    /// table effect, so the result is bit-identical to the generic form.
    /// Commutative integer ops with the immediate on the left are
    /// swapped here (value and label results are order-exact); float and
    /// non-commutative shapes keep their operand order or stay generic.
    AddIC {
        dst: u32,
        a: TOp,
        imm: u64,
    },
    SubIC {
        dst: u32,
        a: TOp,
        imm: u64,
    },
    MulIC {
        dst: u32,
        a: TOp,
        imm: u64,
    },
    AndIC {
        dst: u32,
        a: TOp,
        imm: u64,
    },
    OrIC {
        dst: u32,
        a: TOp,
        imm: u64,
    },
    XorIC {
        dst: u32,
        a: TOp,
        imm: u64,
    },
    ShlIC {
        dst: u32,
        a: TOp,
        imm: u64,
    },
    ShrIC {
        dst: u32,
        a: TOp,
        imm: u64,
    },
    CmpIC {
        dst: u32,
        pred: CmpPred,
        a: TOp,
        imm: u64,
    },
    /// Integer divide by a nonzero immediate: the zero-divisor trap is
    /// decided at specialize time, so the runtime check disappears.
    DivIC {
        dst: u32,
        a: TOp,
        imm: u64,
    },
    /// Integer remainder by a nonzero immediate (see [`TInst::DivIC`]).
    RemIC {
        dst: u32,
        a: TOp,
        imm: u64,
    },
    AddFC {
        dst: u32,
        a: TOp,
        imm: u64,
    },
    MulFC {
        dst: u32,
        a: TOp,
        imm: u64,
    },
    SubFC {
        dst: u32,
        a: TOp,
        imm: u64,
    },
    DivFC {
        dst: u32,
        a: TOp,
        imm: u64,
    },
    Sel {
        dst: u32,
        c: TOp,
        t: TOp,
        e: TOp,
    },
    Const {
        dst: u32,
        bits: u64,
    },
    Alloca {
        dst: u32,
        words: TOp,
    },
    Load {
        dst: u32,
        addr: TOp,
    },
    Store {
        dst: u32,
        addr: TOp,
        value: TOp,
    },
    Gep {
        dst: u32,
        base: TOp,
        index: TOp,
        stride: u32,
    },
    LoadIdx {
        dst: u32,
        base: TOp,
        index: TOp,
        stride: u32,
    },
    StoreIdx {
        dst: u32,
        base: TOp,
        index: TOp,
        stride: u32,
        value: TOp,
    },
    /// A call or trap: executed by the general arm on the instruction
    /// cloned into [`ThreadedFunction::slow_ops`].
    Slow {
        slow: u32,
    },
    /// Unconditional branch: fuel boundary, edge effects (phi moves, loop
    /// bookkeeping) from [`ThreadedFunction::jumps`], then a direct `pc`
    /// jump. One dispatch per block boundary — the decoded terminator is
    /// never re-read.
    Jmp {
        jump: u32,
    },
    /// Fused loop latch: an [`TInst::AddIC`] whose very next op would be
    /// an unconditional [`TInst::Jmp`] — the common `iv += step; br
    /// header` back-edge. One dispatch per iteration instead of two; the
    /// add retires through the same bump/write-back sequence, then the
    /// jump half runs verbatim.
    AddIcJmp {
        dst: u32,
        a: TOp,
        imm: u64,
        jump: u32,
    },
    /// Conditional branch on an already-computed condition, through
    /// [`ThreadedFunction::branches`].
    CondBr {
        cond: TOp,
        br: u32,
    },
    /// Fused `cmp+condbr` (mirrors [`DTerm::CondBrCmp`]): the comparison
    /// half retires as one instruction here, then the branch half runs.
    CondBrCmp {
        pred: CmpPred,
        float: bool,
        a: TOp,
        b: TOp,
        br: u32,
    },
    /// Return a value.
    Ret {
        val: TOp,
    },
    /// Return nothing.
    RetVoid,
    /// `DTerm::Unreachable`: always a trap.
    Unreachable,
}

/// Compile one function to threaded code. `branches` biases the block
/// layout ([`TierConfig::superblocks`]); the code itself is layout-
/// independent (every block keeps its entry point).
pub fn compile_function(
    f: &DecodedFunction,
    fid: FunctionId,
    branches: Option<&BTreeMap<(FunctionId, BlockId), BranchRecord>>,
    cfg: &TierConfig,
) -> ThreadedFunction {
    let order = if cfg.superblocks {
        layout(f, fid, branches)
    } else {
        (0..f.blocks.len() as u32).map(BlockId).collect()
    };
    let mut ops: Vec<TInst> = Vec::new();
    let mut pool = Pool::default();
    let mut jumps: Vec<TJump> = Vec::new();
    let mut branches_tbl: Vec<TBranch> = Vec::new();
    let mut slow_ops: Vec<DInst> = Vec::new();
    let mut entry_of = vec![0u32; f.blocks.len()];
    let mut straightened = 0u32;
    for (oi, &b) in order.iter().enumerate() {
        entry_of[b.index()] = ops.len() as u32;
        ops.push(TInst::Enter { block: b });
        let blk = &f.blocks[b.index()];
        for di in blk.insts.iter() {
            ops.push(lower(di, &mut pool, &mut slow_ops));
        }
        // Terminators compile into the stream with their edge data cloned
        // into the side tables, so a block boundary is one dispatch that
        // never detours back through the decoded program. Target pcs are
        // patched below, once every block's position is known.
        match &blk.term {
            DTerm::Br(e) => {
                // Fallthrough elision: an unconditional branch with no phi
                // moves and no loop bookkeeping, whose target is laid out
                // next, has no observable effect at all — the target's
                // `Enter` replays the same coverage mark and fuel boundary
                // the branch separated.
                let elide = e.moves.is_empty()
                    && e.back_edge.is_none()
                    && e.enters.is_none()
                    && order.get(oi + 1) == Some(&e.target);
                if elide {
                    straightened += 1;
                } else {
                    let jump = jumps.len() as u32;
                    // Latch fusion: `iv += imm; br` collapses to one
                    // dispatch — the dominant shape of counted-loop
                    // back-edges.
                    if let Some(&TInst::AddIC { dst, a, imm }) = ops.last() {
                        *ops.last_mut().unwrap() = TInst::AddIcJmp { dst, a, imm, jump };
                    } else {
                        ops.push(TInst::Jmp { jump });
                    }
                    jumps.push(TJump {
                        edge: e.clone(),
                        pc: 0,
                    });
                }
            }
            DTerm::CondBr {
                cond,
                then_edge,
                else_edge,
                exiting,
                join,
            } => {
                ops.push(TInst::CondBr {
                    cond: pool.op(*cond),
                    br: branches_tbl.len() as u32,
                });
                branches_tbl.push(TBranch {
                    then_edge: then_edge.clone(),
                    else_edge: else_edge.clone(),
                    exiting: exiting.clone(),
                    join: *join,
                    then_pc: 0,
                    else_pc: 0,
                    block: b,
                });
            }
            DTerm::CondBrCmp {
                pred,
                float,
                a,
                b: rhs,
                then_edge,
                else_edge,
                exiting,
                join,
            } => {
                ops.push(TInst::CondBrCmp {
                    pred: *pred,
                    float: *float,
                    a: pool.op(*a),
                    b: pool.op(*rhs),
                    br: branches_tbl.len() as u32,
                });
                branches_tbl.push(TBranch {
                    then_edge: then_edge.clone(),
                    else_edge: else_edge.clone(),
                    exiting: exiting.clone(),
                    join: *join,
                    then_pc: 0,
                    else_pc: 0,
                    block: b,
                });
            }
            DTerm::Ret(v) => ops.push(match v {
                Some(op) => TInst::Ret { val: pool.op(*op) },
                None => TInst::RetVoid,
            }),
            DTerm::Unreachable => ops.push(TInst::Unreachable),
        }
    }
    // Patch jump targets: one past the target's `Enter` (the jump site
    // inlines the block-entry bookkeeping).
    for j in jumps.iter_mut() {
        j.pc = entry_of[j.edge.target.index()] + 1;
    }
    for br in branches_tbl.iter_mut() {
        br.then_pc = entry_of[br.then_edge.target.index()] + 1;
        br.else_pc = entry_of[br.else_edge.target.index()] + 1;
    }
    let tf = ThreadedFunction {
        entry: entry_of[f.entry.index()],
        ops,
        consts: pool.consts,
        jumps,
        branches: branches_tbl,
        slow_ops,
        entry_of,
        straightened,
        nregs: f.nregs as u32,
    };
    debug_assert!(tf.check_bounds());
    tf
}

/// Trace-biased block layout: grow chains from the entry, at each
/// conditional following the direction the warmup run took more often
/// (then-edge when unrecorded — branch records exist only for tainted
/// conditions), queuing the other side as a later chain head.
fn layout(
    f: &DecodedFunction,
    fid: FunctionId,
    branches: Option<&BTreeMap<(FunctionId, BlockId), BranchRecord>>,
) -> Vec<BlockId> {
    let n = f.blocks.len();
    let mut placed = vec![false; n];
    let mut order: Vec<BlockId> = Vec::with_capacity(n);
    let mut pending: Vec<BlockId> = vec![f.entry];
    while order.len() < n {
        let head = match pending.pop() {
            Some(b) if !placed[b.index()] => b,
            Some(_) => continue,
            // Unreachable blocks: append in index order so every block
            // keeps an entry point.
            None => BlockId(placed.iter().position(|p| !p).expect("unplaced") as u32),
        };
        let mut cur = head;
        loop {
            placed[cur.index()] = true;
            order.push(cur);
            let next = match &f.blocks[cur.index()].term {
                DTerm::Br(e) => {
                    if placed[e.target.index()] {
                        None
                    } else {
                        Some(e.target)
                    }
                }
                DTerm::CondBr {
                    then_edge,
                    else_edge,
                    ..
                }
                | DTerm::CondBrCmp {
                    then_edge,
                    else_edge,
                    ..
                } => {
                    let prefer_then = branches
                        .and_then(|b| b.get(&(fid, cur)))
                        .is_none_or(|r| r.taken_true >= r.taken_false);
                    let (first, second) = if prefer_then {
                        (then_edge.target, else_edge.target)
                    } else {
                        (else_edge.target, then_edge.target)
                    };
                    if !placed[second.index()] {
                        pending.push(second);
                    }
                    if !placed[first.index()] {
                        Some(first)
                    } else if !placed[second.index()] {
                        Some(second)
                    } else {
                        None
                    }
                }
                DTerm::Ret(_) | DTerm::Unreachable => None,
            };
            match next {
                Some(nb) => cur = nb,
                None => break,
            }
        }
    }
    order
}

/// Lower one decoded instruction to a threaded op. Total: anything
/// without a dedicated opcode becomes [`TInst::Slow`].
fn lower(di: &DInst, pool: &mut Pool, slow_ops: &mut Vec<DInst>) -> TInst {
    let dst = di.dst;
    let mut slow = || {
        slow_ops.push(di.clone());
        TInst::Slow {
            slow: (slow_ops.len() - 1) as u32,
        }
    };
    match &di.op {
        DOp::Const { bits } => TInst::Const { dst, bits: *bits },
        DOp::BinI { op, a, b } => {
            // Immediate forms: right-immediate always; left-immediate
            // only for commutative ops, where swapping is exact for both
            // the bits (integer commutativity) and the label (the union
            // of a label with EMPTY is order-independent).
            let imm_rhs = match (op, a, b) {
                (_, _, Opnd::Imm(v)) => Some((*a, *v)),
                (
                    BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor,
                    Opnd::Imm(v),
                    _,
                ) => Some((*b, *v)),
                _ => None,
            };
            if let Some((ra, imm)) = imm_rhs {
                let a = pool.op(ra);
                match op {
                    BinOp::Add => return TInst::AddIC { dst, a, imm },
                    BinOp::Sub => return TInst::SubIC { dst, a, imm },
                    BinOp::Mul => return TInst::MulIC { dst, a, imm },
                    BinOp::And => return TInst::AndIC { dst, a, imm },
                    BinOp::Or => return TInst::OrIC { dst, a, imm },
                    BinOp::Xor => return TInst::XorIC { dst, a, imm },
                    BinOp::Shl => return TInst::ShlIC { dst, a, imm },
                    BinOp::Shr => return TInst::ShrIC { dst, a, imm },
                    // The zero-divisor trap is static for an immediate
                    // divisor: nonzero compiles to a checkless form, zero
                    // keeps the generic op (traps at runtime, as tier 0).
                    BinOp::Div if imm != 0 => return TInst::DivIC { dst, a, imm },
                    BinOp::Rem if imm != 0 => return TInst::RemIC { dst, a, imm },
                    // Div/Rem by zero and Min/Max (rare) stay generic.
                    _ => {}
                }
            }
            let (a, b) = (pool.op(*a), pool.op(*b));
            match op {
                BinOp::Add => TInst::AddI { dst, a, b },
                BinOp::Sub => TInst::SubI { dst, a, b },
                BinOp::Mul => TInst::MulI { dst, a, b },
                BinOp::Div => TInst::DivI { dst, a, b },
                BinOp::Rem => TInst::RemI { dst, a, b },
                BinOp::And => TInst::AndI { dst, a, b },
                BinOp::Or => TInst::OrI { dst, a, b },
                BinOp::Xor => TInst::XorI { dst, a, b },
                BinOp::Shl => TInst::ShlI { dst, a, b },
                BinOp::Shr => TInst::ShrI { dst, a, b },
                BinOp::Min => TInst::MinI { dst, a, b },
                BinOp::Max => TInst::MaxI { dst, a, b },
            }
        }
        DOp::BinF { op, a, b } => {
            // Right-immediate only: float operand order is preserved
            // exactly (no commutativity assumptions on NaN payloads).
            if let (BinOp::Add | BinOp::Mul | BinOp::Sub | BinOp::Div, _, Opnd::Imm(imm)) =
                (op, a, b)
            {
                let a = pool.op(*a);
                return match op {
                    BinOp::Add => TInst::AddFC { dst, a, imm: *imm },
                    BinOp::Mul => TInst::MulFC { dst, a, imm: *imm },
                    BinOp::Sub => TInst::SubFC { dst, a, imm: *imm },
                    _ => TInst::DivFC { dst, a, imm: *imm },
                };
            }
            let (a, b) = (pool.op(*a), pool.op(*b));
            match op {
                BinOp::Add => TInst::AddF { dst, a, b },
                BinOp::Sub => TInst::SubF { dst, a, b },
                BinOp::Mul => TInst::MulF { dst, a, b },
                BinOp::Div => TInst::DivF { dst, a, b },
                BinOp::Rem => TInst::RemF { dst, a, b },
                BinOp::Min => TInst::MinF { dst, a, b },
                BinOp::Max => TInst::MaxF { dst, a, b },
                // Bitwise float ops decode to Trap; unreachable, but a
                // Slow fallback keeps lowering total.
                _ => slow(),
            }
        }
        DOp::NegI { a } => TInst::NegI {
            dst,
            a: pool.op(*a),
        },
        DOp::NegF { a } => TInst::NegF {
            dst,
            a: pool.op(*a),
        },
        DOp::NotBool { a } => TInst::NotBool {
            dst,
            a: pool.op(*a),
        },
        DOp::NotInt { a } => TInst::NotInt {
            dst,
            a: pool.op(*a),
        },
        DOp::IntToFloat { a } => TInst::IntToFloat {
            dst,
            a: pool.op(*a),
        },
        DOp::FloatToInt { a } => TInst::FloatToInt {
            dst,
            a: pool.op(*a),
        },
        DOp::Sqrt { a } => TInst::Sqrt {
            dst,
            a: pool.op(*a),
        },
        DOp::AbsI { a } => TInst::AbsI {
            dst,
            a: pool.op(*a),
        },
        DOp::AbsF { a } => TInst::AbsF {
            dst,
            a: pool.op(*a),
        },
        DOp::CmpI { pred, a, b } => match b {
            Opnd::Imm(imm) => TInst::CmpIC {
                dst,
                pred: *pred,
                a: pool.op(*a),
                imm: *imm,
            },
            _ => TInst::CmpI {
                dst,
                pred: *pred,
                a: pool.op(*a),
                b: pool.op(*b),
            },
        },
        DOp::CmpF { pred, a, b } => TInst::CmpF {
            dst,
            pred: *pred,
            a: pool.op(*a),
            b: pool.op(*b),
        },
        DOp::Select { c, t, e } => TInst::Sel {
            dst,
            c: pool.op(*c),
            t: pool.op(*t),
            e: pool.op(*e),
        },
        DOp::Alloca { words } => TInst::Alloca {
            dst,
            words: pool.op(*words),
        },
        DOp::Load { addr } => TInst::Load {
            dst,
            addr: pool.op(*addr),
        },
        DOp::Store { addr, value } => TInst::Store {
            dst,
            addr: pool.op(*addr),
            value: pool.op(*value),
        },
        DOp::Gep {
            base,
            index,
            stride,
        } => TInst::Gep {
            dst,
            base: pool.op(*base),
            index: pool.op(*index),
            stride: pool.intern(*stride as u64),
        },
        DOp::LoadIdx {
            base,
            index,
            stride,
        } => TInst::LoadIdx {
            dst,
            base: pool.op(*base),
            index: pool.op(*index),
            stride: pool.intern(*stride as u64),
        },
        DOp::StoreIdx {
            base,
            index,
            stride,
            value,
        } => TInst::StoreIdx {
            dst,
            base: pool.op(*base),
            index: pool.op(*index),
            stride: pool.intern(*stride as u64),
            value: pool.op(*value),
        },
        DOp::CallInternal { .. }
        | DOp::CallInlined { .. }
        | DOp::CallIntrinsic { .. }
        | DOp::CallHostPrim { .. }
        | DOp::CallLibrary { .. }
        | DOp::Trap { .. } => slow(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prepared::PreparedModule;
    use pt_ir::{FunctionBuilder, Module, Type, Value};

    fn cfg() -> TierConfig {
        TierConfig {
            mode: TierMode::Force,
            ..TierConfig::default()
        }
    }

    /// Loop + diamond: pre/header/body/latch/exit plus an if/else join.
    fn shapes_module() -> Module {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![("n".into(), Type::I64)], Type::I64);
        let slot = b.alloca(1i64);
        b.for_loop(0i64, b.param(0), 1i64, |b, iv| {
            let c = b.cmp(pt_ir::CmpPred::Lt, iv, 10i64);
            b.if_then_else(
                c,
                |b| b.store(slot, Value::int(1)),
                |b| b.store(slot, Value::int(2)),
            );
            b.call_external("pt_work_flops", vec![Value::int(1)], Type::Void);
        });
        let v = b.load(slot, Type::I64);
        b.ret(Some(v));
        m.add_function(b.finish());
        m
    }

    #[test]
    fn every_block_keeps_an_entry_point() {
        let m = shapes_module();
        let prepared = PreparedModule::compute(&m);
        let f = &prepared.decoded.functions[0];
        let tf = compile_function(f, FunctionId(0), None, &cfg());
        assert_eq!(tf.entry_of.len(), f.blocks.len());
        for &pc in &tf.entry_of {
            assert!(
                matches!(tf.ops[pc as usize], TInst::Enter { .. }),
                "entry_of must point at an Enter"
            );
        }
        assert!(matches!(
            tf.ops[tf.entry as usize],
            TInst::Enter { block } if block == f.entry
        ));
        // Layouts never drop or duplicate a block.
        let enters = tf
            .ops
            .iter()
            .filter(|o| matches!(o, TInst::Enter { .. }))
            .count();
        assert_eq!(enters, f.blocks.len());
    }

    #[test]
    fn straightline_brs_are_elided() {
        let m = shapes_module();
        let prepared = PreparedModule::compute(&m);
        let f = &prepared.decoded.functions[0];
        let tf = compile_function(f, FunctionId(0), None, &cfg());
        // Every block ends in a terminator op or an elided fallthrough,
        // and only moveless, bookkeeping-free unconditional branches are
        // elided.
        let terms = tf
            .ops
            .iter()
            .filter(|o| {
                matches!(
                    o,
                    TInst::Jmp { .. }
                        | TInst::AddIcJmp { .. }
                        | TInst::CondBr { .. }
                        | TInst::CondBrCmp { .. }
                        | TInst::Ret { .. }
                        | TInst::RetVoid
                        | TInst::Unreachable
                )
            })
            .count();
        let plain_brs = f
            .blocks
            .iter()
            .filter(|b| {
                matches!(&b.term, DTerm::Br(e)
                    if e.moves.is_empty() && e.back_edge.is_none() && e.enters.is_none())
            })
            .count();
        assert_eq!(terms + tf.straightened as usize, f.blocks.len());
        assert!(tf.straightened as usize <= plain_brs);
        assert!(
            tf.straightened > 0,
            "the diamond join must yield at least one fallthrough"
        );
    }

    #[test]
    fn plan_from_run_uses_calls_and_loop_records() {
        let mut profile = Profile::new();
        let records = TaintRecords::new(3, &[1, 1, 1]);
        // Function 1 called 100 times under one path.
        for _ in 0..100 {
            profile.record_call(crate::path::PathId(0), FunctionId(1), 1e-6, 1e-6);
        }
        let cfg = TierConfig {
            hot_calls: 64,
            hot_iters: 256,
            ..cfg()
        };
        let plan = TierPlan::from_run(&profile, &records, 3, &cfg);
        assert!(!plan.hot[0]);
        assert!(plan.hot[1]);
        assert!(!plan.hot[2]);
    }
}
