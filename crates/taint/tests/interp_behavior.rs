//! Behavioral tests of the taint interpreter: the propagation rules of
//! §3.2/§5.2 of the paper, sinks, call paths, profiling, and error handling.

use pt_ir::{CmpPred, FunctionBuilder, FunctionId, Module, Type, Value};
use pt_taint::{
    CtlFlowPolicy, InterpConfig, InterpError, Interpreter, PreparedModule, RunOutput,
    WorkOnlyHandler,
};

fn run_module(
    m: &Module,
    params: Vec<(String, i64)>,
    config: InterpConfig,
) -> Result<RunOutput, InterpError> {
    let prepared = PreparedModule::compute(m);
    Interpreter::new(m, &prepared, WorkOnlyHandler::default(), params, config)
        .run_named("main", &[])
}

fn run_default(m: &Module, params: Vec<(String, i64)>) -> RunOutput {
    run_module(m, params, InterpConfig::default()).expect("run failed")
}

#[test]
fn arithmetic_and_return() {
    let mut m = Module::new("t");
    let mut b = FunctionBuilder::new("main", vec![], Type::I64);
    let x = b.add(40i64, 1i64);
    let y = b.mul(x, 2i64);
    let z = b.sub(y, 41i64);
    b.ret(Some(z));
    m.add_function(b.finish());
    let out = run_default(&m, vec![]);
    assert_eq!(out.ret.unwrap().as_i64(), 41);
    assert_eq!(out.insts, 3);
}

#[test]
fn float_arithmetic() {
    let mut m = Module::new("t");
    let mut b = FunctionBuilder::new("main", vec![], Type::F64);
    let x = b.add(Value::float(1.5), Value::float(2.5));
    let y = b.div(x, Value::float(2.0));
    let s = b.un(pt_ir::UnOp::Sqrt, y);
    b.ret(Some(s));
    m.add_function(b.finish());
    let out = run_default(&m, vec![]);
    assert!((out.ret.unwrap().as_f64() - 2.0f64.sqrt()).abs() < 1e-12);
}

#[test]
fn conversions_and_unops() {
    let mut m = Module::new("t");
    let mut b = FunctionBuilder::new("main", vec![], Type::I64);
    let f = b.un(pt_ir::UnOp::IntToFloat, Value::int(7));
    let half = b.div(f, Value::float(2.0));
    let i = b.un(pt_ir::UnOp::FloatToInt, half); // 3.5 -> 3
    let n = b.un(pt_ir::UnOp::Neg, i);
    let a = b.un(pt_ir::UnOp::Abs, n);
    b.ret(Some(a));
    m.add_function(b.finish());
    assert_eq!(run_default(&m, vec![]).ret.unwrap().as_i64(), 3);
}

#[test]
fn memory_round_trip_and_gep() {
    let mut m = Module::new("t");
    let mut b = FunctionBuilder::new("main", vec![], Type::I64);
    let buf = b.alloca(8i64);
    b.for_loop(0i64, 8i64, 1i64, |b, iv| {
        let slot = b.gep(buf, iv, 1);
        let sq = b.mul(iv, iv);
        b.store(slot, sq);
    });
    let slot5 = b.gep(buf, 5i64, 1);
    let v = b.load(slot5, Type::I64);
    b.ret(Some(v));
    m.add_function(b.finish());
    assert_eq!(run_default(&m, vec![]).ret.unwrap().as_i64(), 25);
}

#[test]
fn division_by_zero_traps() {
    let mut m = Module::new("t");
    let mut b = FunctionBuilder::new("main", vec![], Type::I64);
    let z = b.sub(1i64, 1i64);
    let d = b.div(5i64, z);
    b.ret(Some(d));
    m.add_function(b.finish());
    let err = run_module(&m, vec![], InterpConfig::default()).unwrap_err();
    assert!(matches!(err, InterpError::DivisionByZero { .. }));
}

#[test]
fn fuel_exhaustion() {
    let mut m = Module::new("t");
    let mut b = FunctionBuilder::new("main", vec![], Type::Void);
    b.for_loop(0i64, 1_000_000i64, 1i64, |_, _| {});
    b.ret(None);
    m.add_function(b.finish());
    let cfg = InterpConfig {
        fuel: 1000,
        ..Default::default()
    };
    assert!(matches!(
        run_module(&m, vec![], cfg),
        Err(InterpError::OutOfFuel)
    ));
}

#[test]
fn dataflow_taint_through_arithmetic() {
    // d = 2*a -> d tainted by "a" (paper §3.2 example, data-flow part).
    let mut m = Module::new("t");
    let mut b = FunctionBuilder::new("main", vec![], Type::Void);
    let a = b.call_external("pt_param_i64", vec![Value::int(0)], Type::I64);
    let d = b.mul(2i64, a);
    b.call_external("pt_assert_has_param", vec![d, Value::int(0)], Type::Void);
    let unrelated = b.add(1i64, 2i64);
    b.call_external(
        "pt_assert_not_param",
        vec![unrelated, Value::int(0)],
        Type::Void,
    );
    b.ret(None);
    m.add_function(b.finish());
    run_default(&m, vec![("a".into(), 5)]);
}

#[test]
fn taint_flows_through_memory() {
    let mut m = Module::new("t");
    let mut b = FunctionBuilder::new("main", vec![], Type::Void);
    let a = b.call_external("pt_param_i64", vec![Value::int(0)], Type::I64);
    let slot = b.alloca(1i64);
    b.store(slot, a);
    let v = b.load(slot, Type::I64);
    b.call_external("pt_assert_has_param", vec![v, Value::int(0)], Type::Void);
    // Overwriting with a constant clears the taint.
    b.store(slot, Value::int(0));
    let v2 = b.load(slot, Type::I64);
    b.call_external("pt_assert_not_param", vec![v2, Value::int(0)], Type::Void);
    b.ret(None);
    m.add_function(b.finish());
    run_default(&m, vec![("a".into(), 5)]);
}

#[test]
fn register_param_taints_existing_memory() {
    // The paper's register_variable(&opts.nx, "size") idiom.
    let mut m = Module::new("t");
    let mut b = FunctionBuilder::new("main", vec![], Type::Void);
    let opts = b.alloca(4i64);
    b.store(opts, Value::int(30)); // opts.nx = 30 (untainted so far)
    b.call_external("pt_register_param", vec![opts, Value::int(0)], Type::Void);
    let nx = b.load(opts, Type::I64);
    b.call_external("pt_assert_has_param", vec![nx, Value::int(0)], Type::Void);
    b.ret(None);
    m.add_function(b.finish());
    run_default(&m, vec![("size".into(), 30)]);
}

#[test]
fn pointer_label_combines_on_load() {
    // A[i] with tainted i taints the loaded value (DFSan default).
    let mut m = Module::new("t");
    let mut b = FunctionBuilder::new("main", vec![], Type::Void);
    let a = b.call_external("pt_param_i64", vec![Value::int(0)], Type::I64);
    let buf = b.alloca(16i64);
    let idx = b.bin(pt_ir::BinOp::Rem, a, 16i64);
    let slot = b.gep(buf, idx, 1);
    let v = b.load(slot, Type::I64);
    b.call_external("pt_assert_has_param", vec![v, Value::int(0)], Type::Void);
    b.ret(None);
    m.add_function(b.finish());
    run_default(&m, vec![("a".into(), 5)]);

    // With the option off, the load stays clean.
    let cfg = InterpConfig {
        combine_ptr_labels: false,
        ..Default::default()
    };
    let err = run_module(&m, vec![("a".into(), 5)], cfg).unwrap_err();
    assert!(matches!(err, InterpError::Trap(_)));
}

#[test]
fn explicit_control_dependence_captured() {
    // Paper §3.2: if (b) d++; else d--;  -- d control-depends on b.
    let mut m = Module::new("t");
    let mut b = FunctionBuilder::new("main", vec![], Type::Void);
    let bp = b.call_external("pt_param_i64", vec![Value::int(0)], Type::I64);
    let d = b.alloca(1i64);
    b.store(d, Value::int(10));
    let c = b.cmp(CmpPred::Ne, bp, 0i64);
    b.if_then_else(
        c,
        |b| {
            let v = b.load(d, Type::I64);
            let v1 = b.add(v, 1i64);
            b.store(d, v1);
        },
        |b| {
            let v = b.load(d, Type::I64);
            let v1 = b.sub(v, 1i64);
            b.store(d, v1);
        },
    );
    let dv = b.load(d, Type::I64);
    b.call_external("pt_assert_has_param", vec![dv, Value::int(0)], Type::Void);
    b.ret(None);
    m.add_function(b.finish());
    run_default(&m, vec![("b".into(), 1)]);
    run_default(&m, vec![("b".into(), 0)]);
}

#[test]
fn control_scope_closes_at_join() {
    // After the join point, newly computed unrelated values are clean.
    let mut m = Module::new("t");
    let mut b = FunctionBuilder::new("main", vec![], Type::Void);
    let bp = b.call_external("pt_param_i64", vec![Value::int(0)], Type::I64);
    let c = b.cmp(CmpPred::Ne, bp, 0i64);
    b.if_then(c, |b| {
        let _ = b.add(1i64, 1i64);
    });
    let clean = b.add(2i64, 2i64);
    b.call_external(
        "pt_assert_not_param",
        vec![clean, Value::int(0)],
        Type::Void,
    );
    b.ret(None);
    m.add_function(b.finish());
    run_default(&m, vec![("b".into(), 1)]);
}

#[test]
fn loop_counter_histogram_dependence() {
    // The LULESH regElemSize example of §5.2: a value incremented once per
    // iteration of a loop whose trip count is tainted becomes tainted.
    let mut m = Module::new("t");
    let mut b = FunctionBuilder::new("main", vec![], Type::Void);
    let n = b.call_external("pt_param_i64", vec![Value::int(0)], Type::I64);
    let counter = b.alloca(1i64);
    b.store(counter, Value::int(0));
    b.for_loop(0i64, n, 1i64, |b, _| {
        let v = b.load(counter, Type::I64);
        let v1 = b.add(v, 1i64);
        b.store(counter, v1);
    });
    let total = b.load(counter, Type::I64);
    b.call_external(
        "pt_assert_has_param",
        vec![total, Value::int(0)],
        Type::Void,
    );
    b.ret(None);
    m.add_function(b.finish());
    run_default(&m, vec![("size".into(), 7)]);

    // Pure data-flow DFSan (policy Off) misses this dependence -> the
    // assertion fires. This is exactly why the paper extends DFSan.
    let cfg = InterpConfig {
        policy: CtlFlowPolicy::Off,
        ..Default::default()
    };
    let err = run_module(&m, vec![("size".into(), 7)], cfg).unwrap_err();
    assert!(matches!(err, InterpError::Trap(_)));

    // StoresOnly is sufficient for this store-based pattern.
    let cfg = InterpConfig {
        policy: CtlFlowPolicy::StoresOnly,
        ..Default::default()
    };
    run_module(&m, vec![("size".into(), 7)], cfg).expect("StoresOnly captures histogram");
}

#[test]
fn loop_sink_records_params_and_iterations() {
    let mut m = Module::new("t");
    let mut b = FunctionBuilder::new("main", vec![], Type::Void);
    let n = b.call_external("pt_param_i64", vec![Value::int(0)], Type::I64);
    let p = b.call_external("pt_param_i64", vec![Value::int(1)], Type::I64);
    b.for_loop(0i64, n, 1i64, |_, _| {});
    b.for_loop(0i64, p, 1i64, |_, _| {});
    b.ret(None);
    m.add_function(b.finish());
    let out = run_default(&m, vec![("n".into(), 6), ("p".into(), 3)]);
    let loops = out.records.loops_by_function();
    assert_eq!(loops.len(), 2);
    let mut iter_counts: Vec<(u64, Vec<usize>)> = loops
        .values()
        .map(|r| (r.iterations, r.params.iter().collect()))
        .collect();
    iter_counts.sort();
    assert_eq!(iter_counts[0], (3, vec![1]));
    assert_eq!(iter_counts[1], (6, vec![0]));
    for r in loops.values() {
        assert_eq!(r.entries, 1);
    }
}

#[test]
fn nested_loop_conservative_multiplicative_labels() {
    // Inner loop exit condition observed under the outer control scope
    // carries both labels — the conservative multiplicative dependency of
    // §5.2.
    let mut m = Module::new("t");
    let mut b = FunctionBuilder::new("main", vec![], Type::Void);
    let n = b.call_external("pt_param_i64", vec![Value::int(0)], Type::I64);
    let s = b.call_external("pt_param_i64", vec![Value::int(1)], Type::I64);
    b.for_loop(0i64, n, 1i64, |b, _| {
        b.for_loop(0i64, s, 1i64, |_, _| {});
    });
    b.ret(None);
    m.add_function(b.finish());
    let out = run_default(&m, vec![("n".into(), 4), ("s".into(), 5)]);
    let loops = out.records.loops_by_function();
    let mut recs: Vec<(u64, usize)> = loops
        .values()
        .map(|r| (r.iterations, r.params.len()))
        .collect();
    recs.sort();
    // Outer: 4 iterations, depends on {n} only.
    assert_eq!(recs[0], (4, 1));
    // Inner: 20 iterations total, labels {n, s} (control context).
    assert_eq!(recs[1], (20, 2));
    // And the inner loop was entered once per outer iteration.
    let inner = loops.values().find(|r| r.iterations == 20).unwrap();
    assert_eq!(inner.entries, 4);
}

#[test]
fn call_paths_distinguish_contexts() {
    let mut m = Module::new("t");
    // helper(k): loop k times.
    let mut b = FunctionBuilder::new("helper", vec![("k".into(), Type::I64)], Type::Void);
    b.for_loop(0i64, b.param(0), 1i64, |_, _| {});
    b.ret(None);
    let helper = m.add_function(b.finish());
    // f calls helper(n); g calls helper(3) — constant.
    let mut b = FunctionBuilder::new("f", vec![("n".into(), Type::I64)], Type::Void);
    b.call(helper, vec![b.param(0)], Type::Void);
    b.ret(None);
    let f = m.add_function(b.finish());
    let mut b = FunctionBuilder::new("g", vec![], Type::Void);
    b.call(helper, vec![Value::int(3)], Type::Void);
    b.ret(None);
    let g = m.add_function(b.finish());
    let mut b = FunctionBuilder::new("main", vec![], Type::Void);
    let n = b.call_external("pt_param_i64", vec![Value::int(0)], Type::I64);
    b.call(f, vec![n], Type::Void);
    b.call(g, vec![], Type::Void);
    b.ret(None);
    m.add_function(b.finish());

    let out = run_default(&m, vec![("n".into(), 9)]);
    // Two distinct call paths to helper's loop with different dependencies.
    let helper_loops: Vec<_> = out
        .records
        .loops
        .iter()
        .filter(|(k, _)| k.func == helper)
        .collect();
    assert_eq!(helper_loops.len(), 2, "context-sensitive records");
    let (via_f, via_g): (Vec<_>, Vec<_>) = helper_loops
        .iter()
        .copied()
        .partition::<Vec<_>, _>(|(k, _)| out.records.paths.chain(k.path).contains(&f));
    assert_eq!(via_f.len(), 1);
    assert_eq!(via_g.len(), 1);
    assert!(via_f[0].1.params.contains(0), "helper-via-f depends on n");
    assert!(via_g[0].1.params.is_empty(), "helper-via-g is constant");
    assert!(out.records.paths.chain(via_g[0].0.path).contains(&g));
}

#[test]
fn profile_accounts_inclusive_exclusive() {
    let mut m = Module::new("t");
    let mut b = FunctionBuilder::new("leaf", vec![], Type::Void);
    b.call_external("pt_work_flops", vec![Value::int(1000)], Type::Void);
    b.ret(None);
    let leaf = m.add_function(b.finish());
    let mut b = FunctionBuilder::new("main", vec![], Type::Void);
    b.call(leaf, vec![], Type::Void);
    b.call(leaf, vec![], Type::Void);
    b.ret(None);
    m.add_function(b.finish());

    let out = run_default(&m, vec![]);
    let by_fn = out.profile.by_function();
    let leaf_entry = by_fn[&leaf];
    assert_eq!(leaf_entry.calls, 2);
    // leaf inclusive includes the work-charged time (2 * 1000 flops * 1ns).
    assert!(leaf_entry.inclusive >= 2e-6);
    let main_id = m.function_by_name("main").unwrap();
    let main_entry = by_fn[&main_id];
    assert!(main_entry.inclusive > main_entry.exclusive);
    // Total exclusive equals wall clock.
    assert!((out.profile.total_exclusive() - out.time).abs() < 1e-12);
}

#[test]
fn probe_costs_inflate_instrumented_functions() {
    let mut m = Module::new("t");
    let mut b = FunctionBuilder::new("tiny", vec![], Type::Void);
    b.ret(None);
    let tiny = m.add_function(b.finish());
    let mut b = FunctionBuilder::new("main", vec![], Type::Void);
    b.for_loop(0i64, 100i64, 1i64, |b, _| {
        b.call(tiny, vec![], Type::Void);
    });
    b.ret(None);
    let main_id = m.add_function(b.finish());

    let base = run_default(&m, vec![]);
    let mut probe = vec![0.0; m.functions.len()];
    probe[tiny.index()] = 1e-6;
    let cfg = InterpConfig {
        probe_cost: probe,
        ..Default::default()
    };
    let instr = run_module(&m, vec![], cfg).unwrap();
    let delta = instr.time - base.time;
    assert!(
        (delta - 100.0 * 1e-6).abs() < 1e-9,
        "probe cost charged once per call: delta={delta}"
    );
    let by_fn = instr.profile.by_function();
    assert!(by_fn[&tiny].exclusive > by_fn[&main_id].exclusive * 0.5);
}

#[test]
fn branch_coverage_records_tainted_branches() {
    let mut m = Module::new("t");
    let mut b = FunctionBuilder::new("main", vec![], Type::Void);
    let p = b.call_external("pt_param_i64", vec![Value::int(0)], Type::I64);
    let c = b.cmp(CmpPred::Lt, p, 8i64);
    b.if_then_else(
        c,
        |b| {
            b.call_external("pt_work_flops", vec![Value::int(10)], Type::Void);
        },
        |b| {
            b.call_external("pt_work_flops", vec![Value::int(20)], Type::Void);
        },
    );
    b.ret(None);
    m.add_function(b.finish());

    let out = run_default(&m, vec![("p".into(), 4)]);
    assert_eq!(out.records.branches.len(), 1);
    let rec = out.records.branches.values().next().unwrap();
    assert!(rec.params.contains(0));
    assert_eq!((rec.taken_true, rec.taken_false), (1, 0));
    assert!(rec.one_sided());
}

#[test]
fn never_executed_functions_reported() {
    let mut m = Module::new("t");
    let mut b = FunctionBuilder::new("dead_code", vec![], Type::Void);
    b.ret(None);
    let dead = m.add_function(b.finish());
    let mut b = FunctionBuilder::new("main", vec![], Type::Void);
    b.ret(None);
    m.add_function(b.finish());
    let out = run_default(&m, vec![]);
    assert!(out.records.never_executed().contains(&dead));
    assert!(!out.records.executed[dead.index()]);
}

#[test]
fn taint_disabled_runs_clean_and_fast() {
    let mut m = Module::new("t");
    let mut b = FunctionBuilder::new("main", vec![], Type::Void);
    let n = b.call_external("pt_param_i64", vec![Value::int(0)], Type::I64);
    b.for_loop(0i64, n, 1i64, |_, _| {});
    b.ret(None);
    m.add_function(b.finish());
    let cfg = InterpConfig {
        taint: false,
        coverage: false,
        ..Default::default()
    };
    let out = run_module(&m, vec![("n".into(), 50)], cfg).unwrap();
    assert!(
        out.records.loops.is_empty(),
        "no sink records without taint"
    );
    // Only the pre-interned base label for "n" exists; no unions happened.
    assert_eq!(out.labels.len(), 2, "no union labels allocated");
    assert!(out.time > 0.0, "time still accounted");
}

#[test]
fn select_propagates_condition_taint() {
    let mut m = Module::new("t");
    let mut b = FunctionBuilder::new("main", vec![], Type::Void);
    let p = b.call_external("pt_param_i64", vec![Value::int(0)], Type::I64);
    let c = b.cmp(CmpPred::Lt, p, 100i64);
    let v = b.select(c, 1i64, 2i64);
    b.call_external("pt_assert_has_param", vec![v, Value::int(0)], Type::Void);
    b.ret(None);
    m.add_function(b.finish());
    run_default(&m, vec![("p".into(), 4)]);
}

#[test]
fn recursion_depth_guard() {
    let mut m = Module::new("t");
    let rec_id = FunctionId(0);
    let mut b = FunctionBuilder::new("main", vec![("n".into(), Type::I64)], Type::Void);
    b.call(rec_id, vec![b.param(0)], Type::Void);
    b.ret(None);
    m.add_function(b.finish_unchecked());
    let prepared = PreparedModule::compute(&m);
    let out = Interpreter::new(
        &m,
        &prepared,
        WorkOnlyHandler::default(),
        vec![],
        InterpConfig::default(),
    )
    .run(rec_id, &[1]);
    assert!(matches!(out, Err(InterpError::CallDepthExceeded)));
}

#[test]
fn unknown_external_is_reported() {
    let mut m = Module::new("t");
    let mut b = FunctionBuilder::new("main", vec![], Type::Void);
    b.call_external("mystery_symbol", vec![], Type::Void);
    b.ret(None);
    m.add_function(b.finish());
    let err = run_module(&m, vec![], InterpConfig::default()).unwrap_err();
    assert!(matches!(err, InterpError::ExternalFailed { name, .. } if name == "mystery_symbol"));
}

#[test]
fn work_charges_simulated_time_scaled_by_argument() {
    let mut m = Module::new("t");
    let mut b = FunctionBuilder::new("main", vec![], Type::Void);
    let n = b.call_external("pt_param_i64", vec![Value::int(0)], Type::I64);
    b.for_loop(0i64, n, 1i64, |b, _| {
        b.call_external("pt_work_flops", vec![Value::int(100)], Type::Void);
    });
    b.ret(None);
    m.add_function(b.finish());
    let t10 = run_default(&m, vec![("n".into(), 10)]).time;
    let t100 = run_default(&m, vec![("n".into(), 100)]).time;
    let ratio = t100 / t10;
    assert!(
        (8.0..12.0).contains(&ratio),
        "time scales ~linearly with n: ratio={ratio}"
    );
}
