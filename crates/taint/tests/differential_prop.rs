//! Property-based differential fuzzing: structured random IR programs run
//! through both execution engines must produce bit-identical outputs.
//!
//! The generator builds *verified* programs (every `finish()` runs the
//! structural verifier; the builder's loop/if helpers keep dominance by
//! construction) exercising the shapes the pass pipeline rewrites: loop
//! nests with tainted and untainted bounds, phi webs from if/else merges,
//! leaf calls that the inliner flattens, array traffic through fused
//! `gep+load`/`gep+store`, shift/compare chains, and tainted branches
//! driving control scopes — across every `CtlFlowPolicy`, both taint
//! modes, and both *taint policies* (param-set and security; every
//! generated program calls the source/sanitize/sink intrinsics, so the
//! security lattice is exercised, and under param-set those calls must be
//! pure pass-throughs). The vendored proptest samples deterministically
//! (seeded from the test's module path), so the CI `taint-differential`
//! job runs a fixed-seed slice of this space on every PR.

use proptest::prelude::*;
use pt_ir::{BinOp, CmpPred, FunctionBuilder, Module, Type, UnOp, Value};
use pt_taint::differential::compare_results;
use pt_taint::{
    CtlFlowPolicy, InterpConfig, Interpreter, PolicyKind, PreparedModule, ReferenceInterpreter,
    TierConfig, TierMode, WorkOnlyHandler,
};

/// Tiny deterministic RNG so one proptest-sampled `u64` seed expands into
/// a whole program shape.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn pick(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// An arithmetic expression over the values in scope, mixing tainted and
/// untainted operands. Division is by a guaranteed-nonzero constant so
/// generated programs only trap when the fuel budget says so.
fn arith(b: &mut FunctionBuilder, rng: &mut Rng, scope: &[Value]) -> Value {
    let v = |rng: &mut Rng, scope: &[Value]| scope[rng.pick(scope.len() as u64) as usize];
    let x = v(rng, scope);
    let y = v(rng, scope);
    match rng.pick(10) {
        0 => b.add(x, y),
        1 => b.sub(x, y),
        2 => b.mul(x, Value::int(1 + rng.pick(5) as i64)),
        3 => b.bin(BinOp::Xor, x, y),
        4 => b.bin(BinOp::And, x, Value::int(0xff)),
        // The shift-boundary amounts the shared helper defines.
        5 => b.bin(
            BinOp::Shl,
            x,
            Value::int([31, 32, 63, 64][rng.pick(4) as usize]),
        ),
        6 => b.bin(
            BinOp::Shr,
            x,
            Value::int([31, 32, 63, 64][rng.pick(4) as usize]),
        ),
        7 => b.bin(BinOp::Min, x, y),
        8 => b.div(x, Value::int(1 + rng.pick(7) as i64)),
        _ => b.un(UnOp::Neg, x),
    }
}

/// One structured random module: a couple of inlinable leaf helpers, and
/// a `main` with loop nests, phi webs, memory traffic, and tainted
/// control, calling the leaves and charging host work.
fn build_module(seed: u64) -> Module {
    let mut rng = Rng(seed);
    let mut m = Module::new("prop");

    // Leaf helpers: single-block, call-free — inliner bait. Their bodies
    // deliberately cover the whole scalar op set (integer chains, float
    // chains through conversions, sqrt/abs/not, compares and selects):
    // the interpreter executes inlined bodies through a second dispatch
    // copy (`exec_inlined_body`), and this is what pins its per-op
    // semantics to the main loop's via the reference engine.
    let mut leaves = Vec::new();
    for li in 0..1 + rng.pick(2) {
        let mut b = FunctionBuilder::new(
            format!("leaf{li}"),
            vec![("a".into(), Type::I64), ("b".into(), Type::I64)],
            Type::I64,
        );
        let mut scope = vec![b.param(0), b.param(1), Value::int(3)];
        for _ in 0..1 + rng.pick(6) {
            let v = arith(&mut b, &mut rng, &scope);
            scope.push(v);
        }
        // Float excursion: i64 → f64 chain → i64.
        let base = scope[rng.pick(scope.len() as u64) as usize];
        let f = b.un(UnOp::IntToFloat, base);
        let f = match rng.pick(4) {
            0 => b.bin(BinOp::Mul, f, Value::float(1.5)),
            1 => b.bin(BinOp::Max, f, Value::float(-2.0)),
            2 => b.un(UnOp::Sqrt, f),
            _ => b.un(UnOp::Abs, f),
        };
        let f = b.bin(BinOp::Add, f, Value::float(0.25));
        let back = b.un(UnOp::FloatToInt, f);
        scope.push(back);
        // Compare / select / logical-not, plus integer unaries.
        let x = scope[rng.pick(scope.len() as u64) as usize];
        let y = scope[rng.pick(scope.len() as u64) as usize];
        let preds = [CmpPred::Lt, CmpPred::Ge, CmpPred::Eq, CmpPred::Ne];
        let c = b.cmp(preds[rng.pick(4) as usize], x, y);
        let nc = b.un(UnOp::Not, c);
        let sel = b.select(nc, x, y);
        let abs = b.un(UnOp::Abs, sel);
        let inv = b.un(UnOp::Not, abs);
        scope.push(inv);
        let out = arith(&mut b, &mut rng, &scope);
        b.ret(Some(out));
        leaves.push(m.add_function(b.finish()));
    }

    let mut b = FunctionBuilder::new("main", vec![], Type::I64);
    let n = b.call_external("pt_param_i64", vec![Value::int(0)], Type::I64);
    let k = b.call_external("pt_param_i64", vec![Value::int(1)], Type::I64);
    let buf = b.alloca(8i64);
    let mut scope = vec![n, k, Value::int(2), Value::int(-5)];

    // A phi web: if/else producing merged values off a tainted condition.
    let cond = b.cmp(CmpPred::Gt, n, Value::int(rng.pick(6) as i64));
    let sel = b.select(cond, n, k);
    scope.push(sel);
    let merged = {
        let t = b.new_block();
        let e = b.new_block();
        let join = b.new_block();
        b.cond_br(cond, t, e);
        b.switch_to(t);
        let tv = b.add(n, Value::int(10));
        b.br(join);
        b.switch_to(e);
        let ev = b.mul(k, Value::int(3));
        b.br(join);
        b.switch_to(join);
        let phi = b.phi(Type::I64);
        b.add_incoming(phi, t, tv);
        b.add_incoming(phi, e, ev);
        Value::Inst(phi)
    };
    scope.push(merged);

    // Loop nest: bounds tainted (n, k) or constant, bodies mixing leaf
    // calls, fused array traffic, arithmetic, and host work.
    let depth = 1 + rng.pick(2);
    let outer_bound = if rng.pick(2) == 0 {
        n
    } else {
        Value::int(3 + rng.pick(4) as i64)
    };
    let leaf0 = leaves[rng.pick(leaves.len() as u64) as usize];
    let inner_seed = rng.next();
    b.for_loop(0i64, outer_bound, 1i64, |b, iv| {
        let mut rng = Rng(inner_seed);
        let idx = b.bin(BinOp::And, iv, Value::int(3));
        let addr = b.gep(buf, idx, 1);
        let lv = b.call(leaf0, vec![iv, sel], Type::I64);
        b.store(addr, lv);
        let addr2 = b.gep(buf, idx, 1);
        let back = b.load(addr2, Type::I64);
        let mixed = b.add(back, merged);
        b.call_external("pt_work_flops", vec![mixed], Type::Void);
        // Security-policy intrinsics: mark, sometimes sanitize, always
        // sink-check, and store the result so the label (or its absence)
        // flows onward through memory. Under the param-set policy all
        // three are identity pass-throughs.
        let marked = b.call_external(
            "pt_taint_source",
            vec![mixed, Value::int(1 + (inner_seed % 3) as i64)],
            Type::I64,
        );
        let cleaned = if rng.pick(2) == 0 {
            b.call_external("pt_sanitize", vec![marked], Type::I64)
        } else {
            marked
        };
        let checked = b.call_external(
            "pt_sink_check",
            vec![cleaned, Value::int((inner_seed % 2) as i64)],
            Type::I64,
        );
        let addr3 = b.gep(buf, idx, 1);
        b.store(addr3, checked);
        if depth > 1 {
            let inner_bound = if rng.pick(2) == 0 {
                k
            } else {
                Value::int(2 + rng.pick(3) as i64)
            };
            b.for_loop(0i64, inner_bound, 1i64, |b, jv| {
                let t = b.mul(jv, iv);
                b.call_external("pt_work_mem", vec![t], Type::Void);
            });
        }
    });

    for _ in 0..rng.pick(5) {
        let v = arith(&mut b, &mut rng, &scope);
        scope.push(v);
    }
    let final_addr = b.gep(buf, Value::int(1), 1);
    let final_load = b.load(final_addr, Type::I64);
    let out = b.add(*scope.last().unwrap(), final_load);
    let out = b.call_external("pt_sink_check", vec![out, Value::int(7)], Type::I64);
    b.ret(Some(out));
    m.add_function(b.finish());
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Both engines, bit-identical, over random structured programs ×
    /// all policies × taint on/off × a fuel slice × every execution
    /// tier (off, forced threaded, fast-path-only with chaos deopts,
    /// mid-run warmup respecialization).
    #[test]
    fn engines_agree_on_generated_programs(
        seed in 0u64..1 << 48,
        policy_idx in 0usize..3,
        taint in proptest::bool::ANY,
        n in 1i64..7,
        k in 1i64..5,
        tight_fuel in proptest::bool::ANY,
        tier_idx in 0usize..4,
        security in proptest::bool::ANY,
    ) {
        let m = build_module(seed);
        let policy = [CtlFlowPolicy::All, CtlFlowPolicy::StoresOnly, CtlFlowPolicy::Off][policy_idx];
        // A tight fuel budget lands exhaustion mid-program (including
        // inside inlined bodies and fused pairs); a loose one completes.
        let fuel = if tight_fuel { 40 + seed % 200 } else { u64::MAX };
        // The tier dimension: every specialization the second execution
        // tier can apply, including its chaos knob (forced deopts every 3
        // guards) and an aggressive warmup threshold so respecialization
        // lands mid-run. The reference engine never tiers, so agreement
        // here is the bit-identity contract of `pt_taint::tier`.
        let tier = [
            TierConfig { mode: TierMode::Off, ..TierConfig::default() },
            TierConfig { mode: TierMode::Force, ..TierConfig::default() },
            TierConfig {
                mode: TierMode::Force,
                threaded: false,
                fast_path: true,
                deopt_every: 3,
                ..TierConfig::default()
            },
            TierConfig { mode: TierMode::Warmup, hot_calls: 2, ..TierConfig::default() },
        ][tier_idx].clone();
        // The taint-policy dimension: the same programs under the
        // security lattice (sources/sanitizers/sinks live) and the
        // paper's param-set domain (the intrinsics are pass-throughs).
        let taint_policy = if security { PolicyKind::Security } else { PolicyKind::ParamSet };
        let config = InterpConfig { policy, taint, coverage: taint, fuel, tier, taint_policy, ..Default::default() };
        let params = vec![("n".to_string(), n), ("k".to_string(), k)];

        let prepared = PreparedModule::compute(&m);
        let decoded = Interpreter::new(
            &m, &prepared, WorkOnlyHandler::default(), params.clone(), config.clone(),
        ).run_named("main", &[]);
        let legacy = ReferenceInterpreter::new(
            &m, &prepared, WorkOnlyHandler::default(), params, config,
        ).run_named("main", &[]);
        prop_assert!(
            compare_results(&decoded, &legacy).is_ok(),
            "seed {seed} policy {policy:?} taint {taint} fuel {fuel}: {}",
            compare_results(&decoded, &legacy).unwrap_err()
        );
    }
}
