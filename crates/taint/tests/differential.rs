//! Differential suite: the decode-once engine vs the legacy tree-walker
//! over IR-level edge-case programs.
//!
//! Every test runs the same module through both engines and asserts the
//! bit-identity contract of `pt_taint::differential` — including programs
//! that exercise the parallel-copy hazards of per-edge phi move lists
//! (swap, lost copy, self-loop phi), nested tainted control, every
//! control-flow policy, and the error paths (division, fuel, traps).

use pt_ir::{BinOp, CmpPred, FunctionBuilder, Module, Type, UnOp, Value};
use pt_taint::differential::compare_results;
use pt_taint::{
    CtlFlowPolicy, InterpConfig, InterpError, Interpreter, PreparedModule, ReferenceInterpreter,
    RunOutput, WorkOnlyHandler,
};

fn run_both(
    m: &Module,
    params: Vec<(String, i64)>,
    config: InterpConfig,
) -> (
    Result<RunOutput, InterpError>,
    Result<RunOutput, InterpError>,
) {
    let prepared = PreparedModule::compute(m);
    let decoded = Interpreter::new(
        m,
        &prepared,
        WorkOnlyHandler::default(),
        params.clone(),
        config.clone(),
    )
    .run_named("main", &[]);
    let legacy =
        ReferenceInterpreter::new(m, &prepared, WorkOnlyHandler::default(), params, config)
            .run_named("main", &[]);
    (decoded, legacy)
}

/// Run both engines and assert the full bit-identity contract; returns the
/// decoded engine's output for additional semantic assertions.
fn assert_identical(m: &Module, params: Vec<(String, i64)>, config: InterpConfig) -> RunOutput {
    let (decoded, legacy) = run_both(m, params, config);
    compare_results(&decoded, &legacy).expect("engines must be bit-identical");
    decoded.expect("run succeeds")
}

fn assert_identical_failure(
    m: &Module,
    params: Vec<(String, i64)>,
    config: InterpConfig,
) -> InterpError {
    let (decoded, legacy) = run_both(m, params, config);
    compare_results(&decoded, &legacy).expect("engines must fail identically");
    decoded.expect_err("run fails")
}

/// A fresh builder for a parameterless `main`.
fn tainted_main(ret_ty: Type) -> FunctionBuilder {
    FunctionBuilder::new("main", vec![], ret_ty)
}

// ---- phi parallel-copy hazards -----------------------------------------

/// The classic swap: two phis whose incomings reference *each other* on
/// the back edge. A naive sequential copy would clobber one of them.
#[test]
fn phi_swap_hazard_matches_reference() {
    let mut b = tainted_main(Type::I64);
    let n = b.call_external("pt_param_i64", vec![Value::int(0)], Type::I64);

    let header = b.new_block();
    let body = b.new_block();
    let exit = b.new_block();
    let entry = b.current_block();
    b.br(header);

    b.switch_to(header);
    let x = b.phi(Type::I64);
    let y = b.phi(Type::I64);
    let i = b.phi(Type::I64);
    b.add_incoming(x, entry, Value::int(1));
    b.add_incoming(y, entry, n);
    b.add_incoming(i, entry, Value::int(0));
    let cond = b.cmp(CmpPred::Lt, Value::Inst(i), Value::int(5));
    b.cond_br(cond, body, exit);

    b.switch_to(body);
    let i2 = b.add(Value::Inst(i), Value::int(1));
    // Swap: x' = y, y' = x — both must read the pre-copy values.
    b.add_incoming(x, b.current_block(), Value::Inst(y));
    b.add_incoming(y, b.current_block(), Value::Inst(x));
    b.add_incoming(i, b.current_block(), i2);
    b.br(header);

    b.switch_to(exit);
    // After 5 swaps (odd): x = n, y = 1.
    let sum = b.mul(Value::Inst(x), Value::int(1000));
    let out = b.add(sum, Value::Inst(y));
    b.ret(Some(out));

    let mut m = Module::new("phi-swap");
    m.add_function(b.finish());
    let out = assert_identical(&m, vec![("n".into(), 7)], InterpConfig::default());
    assert_eq!(out.ret.unwrap().as_i64(), 7 * 1000 + 1, "swap semantics");
}

/// The lost-copy hazard: a phi whose value is *used after* the back edge
/// overwrites it. The use must see the previous iteration's value.
#[test]
fn phi_lost_copy_hazard_matches_reference() {
    let mut b = tainted_main(Type::I64);
    let n = b.call_external("pt_param_i64", vec![Value::int(0)], Type::I64);

    let header = b.new_block();
    let body = b.new_block();
    let exit = b.new_block();
    let entry = b.current_block();
    b.br(header);

    b.switch_to(header);
    let acc = b.phi(Type::I64);
    let i = b.phi(Type::I64);
    b.add_incoming(acc, entry, Value::int(0));
    b.add_incoming(i, entry, Value::int(0));
    let cond = b.cmp(CmpPred::Lt, Value::Inst(i), n);
    b.cond_br(cond, body, exit);

    b.switch_to(body);
    // acc' = acc + i uses the current acc; the edge copy must not clobber
    // it before the next header evaluates the exit condition on i'.
    let acc2 = b.add(Value::Inst(acc), Value::Inst(i));
    let i2 = b.add(Value::Inst(i), Value::int(1));
    b.add_incoming(acc, b.current_block(), acc2);
    b.add_incoming(i, b.current_block(), i2);
    b.br(header);

    b.switch_to(exit);
    // The *lost copy*: using the phi after the loop must yield its final
    // header value, not the body's update of the last iteration shifted.
    b.ret(Some(Value::Inst(acc)));

    let mut m = Module::new("phi-lost-copy");
    m.add_function(b.finish());
    let out = assert_identical(&m, vec![("n".into(), 6)], InterpConfig::default());
    assert_eq!(out.ret.unwrap().as_i64(), (0..6).sum::<i64>());
}

/// A self-loop phi: the block is its own predecessor, so the move list of
/// the self edge reads the phi's own register.
#[test]
fn phi_self_loop_matches_reference() {
    let mut b = tainted_main(Type::I64);
    let n = b.call_external("pt_param_i64", vec![Value::int(0)], Type::I64);

    let looped = b.new_block();
    let exit = b.new_block();
    let entry = b.current_block();
    b.br(looped);

    b.switch_to(looped);
    let i = b.phi(Type::I64);
    let doubled = b.phi(Type::I64);
    b.add_incoming(i, entry, Value::int(0));
    b.add_incoming(doubled, entry, Value::int(1));
    let i2 = b.add(Value::Inst(i), Value::int(1));
    let d2 = b.mul(Value::Inst(doubled), Value::int(2));
    b.add_incoming(i, looped, i2);
    b.add_incoming(doubled, looped, d2);
    let cond = b.cmp(CmpPred::Lt, i2, n);
    b.cond_br(cond, looped, exit);

    b.switch_to(exit);
    b.ret(Some(Value::Inst(doubled)));

    let mut m = Module::new("phi-self-loop");
    m.add_function(b.finish());
    let out = assert_identical(&m, vec![("n".into(), 5)], InterpConfig::default());
    // doubled holds 2^(n-1): the phi is read before the self-edge copy.
    assert_eq!(out.ret.unwrap().as_i64(), 16);
}

/// Phi values chosen under a *tainted* branch pick up the control scope's
/// label identically in both engines (the ordering of label unions is part
/// of the contract).
#[test]
fn phi_under_tainted_control_matches_reference() {
    for policy in [
        CtlFlowPolicy::All,
        CtlFlowPolicy::StoresOnly,
        CtlFlowPolicy::Off,
    ] {
        let mut b = tainted_main(Type::I64);
        let n = b.call_external("pt_param_i64", vec![Value::int(0)], Type::I64);
        let t = b.new_block();
        let e = b.new_block();
        let join = b.new_block();
        let cond = b.cmp(CmpPred::Gt, n, Value::int(3));
        b.cond_br(cond, t, e);
        b.switch_to(t);
        let from_t = b.add(n, Value::int(10));
        b.br(join);
        b.switch_to(e);
        let from_e = b.add(n, Value::int(20));
        b.br(join);
        b.switch_to(join);
        let merged = b.phi(Type::I64);
        b.add_incoming(merged, t, from_t);
        b.add_incoming(merged, e, from_e);
        b.ret(Some(Value::Inst(merged)));

        let mut m = Module::new("phi-ctl");
        m.add_function(b.finish());
        let config = InterpConfig {
            policy,
            ..Default::default()
        };
        let out = assert_identical(&m, vec![("n".into(), 7)], config);
        assert_eq!(out.ret.unwrap().as_i64(), 17);
    }
}

// ---- broader IR edge cases ---------------------------------------------

/// Nested tainted branches, stores under control scopes, memory taint, and
/// every unary/binary shape in one program.
#[test]
fn kitchen_sink_program_matches_reference() {
    let mut b = tainted_main(Type::F64);
    let n = b.call_external("pt_param_i64", vec![Value::int(0)], Type::I64);
    let m_p = b.call_external("pt_param_i64", vec![Value::int(1)], Type::I64);
    let slot = b.alloca(4i64);

    // Nested tainted control: outer on n, inner untainted.
    let outer = b.cmp(CmpPred::Gt, n, Value::int(2));
    b.if_then_else(
        outer,
        |b| {
            let inner = b.cmp(CmpPred::Lt, Value::int(3), Value::int(9));
            b.if_then(inner, |b| {
                b.store(Value::int(0), Value::int(0)); // dead: never taken? no — executes, traps? addr 0!
            });
        },
        |b| {
            b.store(Value::int(1), Value::int(1));
        },
    );
    b.ret(Some(Value::float(0.0)));
    let _ = (m_p, slot);
    // The program above would trap on a null store when n > 2 — which is
    // itself a differential case: both engines must fail identically.
    let mut m = Module::new("trap-null");
    m.add_function(b.finish_unchecked());
    let params = vec![("n".to_string(), 5), ("m".to_string(), 9)];
    let err = assert_identical_failure(&m, params, InterpConfig::default());
    assert!(matches!(err, InterpError::Mem(_)));
}

#[test]
fn arithmetic_and_memory_matches_reference() {
    let mut b = tainted_main(Type::F64);
    let n = b.call_external("pt_param_i64", vec![Value::int(0)], Type::I64);
    let buf = b.alloca(8i64);

    // Integer ops on a tainted value.
    let a1 = b.bin(BinOp::Mul, n, Value::int(3));
    let a2 = b.bin(BinOp::Xor, a1, Value::int(0x55));
    let a3 = b.bin(BinOp::Shl, a2, Value::int(2));
    let a4 = b.bin(BinOp::Min, a3, Value::int(1000));
    let a5 = b.bin(BinOp::Rem, a4, Value::int(97));
    let neg = b.un(UnOp::Neg, a5);
    let abs = b.un(UnOp::Abs, neg);

    // Floats through conversion, sqrt, float min/max.
    let f = b.un(UnOp::IntToFloat, abs);
    let fs = b.un(UnOp::Sqrt, f);
    let fm = b.bin(BinOp::Max, fs, Value::float(1.5));
    let fr = b.bin(BinOp::Rem, fm, Value::float(2.25));
    let back = b.un(UnOp::FloatToInt, fr);

    // Memory round trip with a tainted index (pointer-label combining).
    let idx = b.bin(BinOp::And, n, Value::int(3));
    let addr = b.gep(buf, idx, 2);
    b.store(addr, back);
    let loaded = b.load(addr, Type::I64);
    let sel_cond = b.cmp(CmpPred::Ge, loaded, Value::int(1));
    let sel = b.select(sel_cond, fm, Value::float(-1.0));
    b.call_external("pt_work_flops", vec![loaded], Type::Void);
    b.ret(Some(sel));

    let mut m = Module::new("arith-mem");
    m.add_function(b.finish());
    for policy in [
        CtlFlowPolicy::All,
        CtlFlowPolicy::StoresOnly,
        CtlFlowPolicy::Off,
    ] {
        let config = InterpConfig {
            policy,
            ..Default::default()
        };
        assert_identical(&m, vec![("n".into(), 6)], config);
    }
}

#[test]
fn call_tree_and_loop_records_match_reference() {
    let mut m = Module::new("calls");
    // kernel(k): loop 0..k charging work.
    let mut b = FunctionBuilder::new("kernel", vec![("k".into(), Type::I64)], Type::I64);
    let acc = b.alloca(1i64);
    b.store(acc, Value::int(0));
    b.for_loop(0i64, b.param(0), 1i64, |b, iv| {
        let cur = b.load(acc, Type::I64);
        let nxt = b.add(cur, iv);
        b.store(acc, nxt);
        b.call_external("pt_work_flops", vec![Value::int(2)], Type::Void);
    });
    let out = b.load(acc, Type::I64);
    b.ret(Some(out));
    let kernel = m.add_function(b.finish());

    // main: calls kernel under a tainted branch and from two contexts.
    let mut b = FunctionBuilder::new("main", vec![], Type::I64);
    let n = b.call_external("pt_param_i64", vec![Value::int(0)], Type::I64);
    let r1 = b.call(kernel, vec![n], Type::I64);
    let half = b.div(n, Value::int(2));
    let r2 = b.call(kernel, vec![half], Type::I64);
    let merged = b.add(r1, r2);
    b.ret(Some(merged));
    m.add_function(b.finish());

    let out = assert_identical(&m, vec![("n".into(), 9)], InterpConfig::default());
    // Both call sites share one calling context (main → kernel), so the
    // records aggregate: 9 + 9/2 back-edge traversals over 2 entries.
    let agg = out.records.loops_by_function();
    let rec = agg.values().next().expect("kernel loop recorded");
    assert_eq!(rec.iterations, 9 + 4);
    assert_eq!(rec.entries, 2);
}

#[test]
fn division_by_zero_fails_identically() {
    let mut b = tainted_main(Type::I64);
    let n = b.call_external("pt_param_i64", vec![Value::int(0)], Type::I64);
    let z = b.sub(n, n);
    let d = b.div(Value::int(7), z);
    b.ret(Some(d));
    let mut m = Module::new("div0");
    m.add_function(b.finish());
    let err = assert_identical_failure(&m, vec![("n".into(), 4)], InterpConfig::default());
    assert!(matches!(err, InterpError::DivisionByZero { .. }));
}

#[test]
fn fuel_exhaustion_fails_identically() {
    let mut b = tainted_main(Type::Void);
    let n = b.call_external("pt_param_i64", vec![Value::int(0)], Type::I64);
    b.for_loop(0i64, n, 1i64, |b, _| {
        b.call_external("pt_work_flops", vec![Value::int(1)], Type::Void);
    });
    b.ret(None);
    let mut m = Module::new("fuel");
    m.add_function(b.finish());
    // Sweep the fuel budget across the loop body so exhaustion lands on
    // phis, straight-line code, and terminators alike.
    for fuel in [0u64, 1, 2, 3, 5, 8, 13, 21, 34] {
        let config = InterpConfig {
            fuel,
            ..Default::default()
        };
        let (decoded, legacy) = run_both(&m, vec![("n".into(), 50)], config);
        compare_results(&decoded, &legacy).unwrap_or_else(|e| panic!("fuel {fuel} diverges: {e}"));
    }
}

#[test]
fn float_bitwise_op_traps_identically() {
    let mut b = tainted_main(Type::F64);
    let v = b.bin(BinOp::And, Value::float(1.0), Value::float(2.0));
    b.ret(Some(v));
    let mut m = Module::new("float-and");
    m.add_function(b.finish_unchecked());
    let err = assert_identical_failure(&m, vec![], InterpConfig::default());
    assert!(matches!(err, InterpError::Trap(ref msg) if msg.contains("float")));
}

#[test]
fn taint_disabled_and_no_coverage_match_reference() {
    let mut b = tainted_main(Type::Void);
    let n = b.call_external("pt_param_i64", vec![Value::int(0)], Type::I64);
    b.for_loop(0i64, n, 1i64, |b, _| {
        b.call_external("pt_work_mem", vec![Value::int(3)], Type::Void);
    });
    b.ret(None);
    let mut m = Module::new("no-taint");
    m.add_function(b.finish());
    let config = InterpConfig {
        taint: false,
        coverage: false,
        ..Default::default()
    };
    let out = assert_identical(&m, vec![("n".into(), 12)], config);
    assert!(out.records.loops.is_empty(), "no sinks without taint");
}

#[test]
fn taint_assertions_match_reference() {
    let mut b = tainted_main(Type::I64);
    let n = b.call_external("pt_param_i64", vec![Value::int(0)], Type::I64);
    b.call_external("pt_assert_has_param", vec![n, Value::int(0)], Type::Void);
    let clean = b.add(Value::int(1), Value::int(2));
    b.call_external(
        "pt_assert_not_param",
        vec![clean, Value::int(0)],
        Type::Void,
    );
    let mask = b.call_external("pt_label_params", vec![n], Type::I64);
    b.ret(Some(mask));
    let mut m = Module::new("asserts");
    m.add_function(b.finish());
    let out = assert_identical(&m, vec![("n".into(), 3)], InterpConfig::default());
    assert_eq!(out.ret.unwrap().as_i64(), 1, "param 0 bitmask");
}

/// External calls wider than the interpreter's stack argument buffer must
/// still pass every argument through — the taint of a 9th argument has to
/// reach the extern-args record exactly like the reference engine's.
#[test]
fn wide_external_calls_match_reference() {
    let mut b = tainted_main(Type::Void);
    let n = b.call_external("pt_param_i64", vec![Value::int(0)], Type::I64);
    let mut args: Vec<Value> = (0..9).map(|_| Value::int(1)).collect();
    args.push(n); // tainted 10th argument
    b.call_external("pt_work_flops", args, Type::Void);
    b.ret(None);
    let mut m = Module::new("wide-call");
    m.add_function(b.finish());
    let out = assert_identical(&m, vec![("n".into(), 4)], InterpConfig::default());
    assert_eq!(
        out.records.extern_args.len(),
        1,
        "the tainted trailing argument must be recorded"
    );
}

/// Entering a function with fewer arguments than parameters is a defined
/// error in both engines (PR 4 shipped this as a documented divergence:
/// the reference panicked on the read, the decoded engine yielded an
/// untainted zero — both now fail identically at frame setup).
#[test]
fn missing_arguments_fail_identically() {
    let mut b = FunctionBuilder::new("main", vec![("n".into(), Type::I64)], Type::I64);
    let v = b.add(b.param(0), Value::int(1));
    b.ret(Some(v));
    let mut m = Module::new("missing-arg");
    m.add_function(b.finish());
    // `run_named("main", &[])` passes no arguments to a unary function.
    let err = assert_identical_failure(&m, vec![], InterpConfig::default());
    assert!(
        matches!(
            err,
            InterpError::ArityMismatch {
                expected: 1,
                got: 0,
                ..
            }
        ),
        "got {err:?}"
    );
}

/// Shift semantics are defined in one shared helper (`pt_taint::ops`):
/// amounts reduced modulo 64 over the sole 64-bit integer domain, `shr`
/// arithmetic. Locked in differentially at the boundary amounts.
#[test]
fn shift_amounts_match_reference() {
    for amount in [31i64, 32, 63, 64] {
        let mut b = tainted_main(Type::I64);
        let n = b.call_external("pt_param_i64", vec![Value::int(0)], Type::I64);
        let shl = b.bin(BinOp::Shl, n, Value::int(amount));
        let shr = b.bin(BinOp::Shr, shl, Value::int(amount));
        let neg = b.sub(Value::int(0), n);
        let sar = b.bin(BinOp::Shr, neg, Value::int(amount));
        let out = b.add(shr, sar);
        b.ret(Some(out));
        let mut m = Module::new("shifts");
        m.add_function(b.finish());
        let out = assert_identical(&m, vec![("n".into(), 3)], InterpConfig::default());
        let expect = pt_taint::ops::shr_i64(pt_taint::ops::shl_i64(3, amount), amount)
            + pt_taint::ops::shr_i64(-3, amount);
        assert_eq!(out.ret.unwrap().as_i64(), expect, "amount {amount}");
    }
}

/// Array accesses with a tainted index exercise the fused `gep+load` /
/// `gep+store` superinstructions under every control-flow policy — the
/// pointer-label combining and control-context unions must happen in the
/// reference engine's exact order.
#[test]
fn fused_indexed_memory_matches_reference() {
    for policy in [
        CtlFlowPolicy::All,
        CtlFlowPolicy::StoresOnly,
        CtlFlowPolicy::Off,
    ] {
        let mut b = tainted_main(Type::I64);
        let n = b.call_external("pt_param_i64", vec![Value::int(0)], Type::I64);
        let buf = b.alloca(8i64);
        let idx = b.bin(BinOp::And, n, Value::int(3));
        // Store through a tainted index under a tainted branch, then load
        // it back: gep+store and gep+load both fuse.
        let cond = b.cmp(CmpPred::Gt, n, Value::int(0));
        b.if_then(cond, |b| {
            let a1 = b.gep(buf, idx, 1);
            b.store(a1, n);
        });
        let a2 = b.gep(buf, idx, 1);
        let v = b.load(a2, Type::I64);
        b.ret(Some(v));
        let mut m = Module::new("fused-mem");
        m.add_function(b.finish());
        let config = InterpConfig {
            policy,
            ..Default::default()
        };
        let out = assert_identical(&m, vec![("n".into(), 6)], config);
        assert_eq!(out.ret.unwrap().as_i64(), 6);
    }
}

/// A hot leaf call (single-block, call-free accessor) is flattened into a
/// `CallInlined` superinstruction — its per-call profile entries, path
/// interning, executed marks, and fuel boundaries must stay bit-identical
/// to the reference's real frames.
#[test]
fn inlined_leaf_calls_match_reference() {
    let mut m = Module::new("leaf-inline");
    // leaf(x): single block, pure arithmetic — inlinable.
    let mut b = FunctionBuilder::new("leaf", vec![("x".into(), Type::I64)], Type::I64);
    let t = b.mul(b.param(0), Value::int(3));
    let r = b.add(t, Value::int(1));
    b.ret(Some(r));
    let leaf = m.add_function(b.finish());

    let mut b = FunctionBuilder::new("main", vec![], Type::I64);
    let n = b.call_external("pt_param_i64", vec![Value::int(0)], Type::I64);
    let acc = b.alloca(1i64);
    b.store(acc, Value::int(0));
    b.for_loop(0i64, n, 1i64, |b, iv| {
        let leafv = b.call(leaf, vec![iv], Type::I64);
        let cur = b.load(acc, Type::I64);
        let nxt = b.add(cur, leafv);
        b.store(acc, nxt);
    });
    let out = b.load(acc, Type::I64);
    b.ret(Some(out));
    m.add_function(b.finish());

    // The pass must actually fire for this shape.
    let prepared = PreparedModule::compute(&m);
    assert!(prepared.pass_stats.inlined_calls >= 1, "leaf call inlined");

    // Fuel swept across the inlined body so exhaustion lands on the same
    // instruction boundary inside the flattened call.
    for fuel in [u64::MAX, 0, 3, 5, 8, 13, 21] {
        let config = InterpConfig {
            fuel,
            ..Default::default()
        };
        let (decoded, legacy) = run_both(&m, vec![("n".into(), 5)], config);
        compare_results(&decoded, &legacy).unwrap_or_else(|e| panic!("fuel {fuel}: {e}"));
    }
    let out = assert_identical(&m, vec![("n".into(), 5)], InterpConfig::default());
    assert_eq!(
        out.ret.unwrap().as_i64(),
        (0..5).map(|i| 3 * i + 1).sum::<i64>()
    );
    // The leaf still gets its own per-context profile entry.
    assert!(
        out.profile.by_function().keys().any(|fid| *fid == leaf),
        "leaf profiled despite inlining"
    );
}

#[test]
fn unreachable_traps_identically() {
    let mut b = tainted_main(Type::Void);
    b.unreachable();
    let mut m = Module::new("unreach");
    m.add_function(b.finish_unchecked());
    let err = assert_identical_failure(&m, vec![], InterpConfig::default());
    assert!(matches!(err, InterpError::Trap(ref msg) if msg.contains("unreachable")));
}
