//! Tier-1 deoptimization behavior: the untainted fast path must engage,
//! bail soundly when taint appears (or when the chaos knob forces it),
//! and never change a bit of the run's output; the threaded executor and
//! the warmup→hot transition get the same treatment. Every test is a
//! differential check against an engine that never tiers.

use pt_ir::{CmpPred, FunctionBuilder, Module, Type, Value};
use pt_taint::differential::{compare_outputs, compare_results};
use pt_taint::{
    tier, InterpConfig, Interpreter, PreparedModule, ReferenceInterpreter, RunOutput, TierConfig,
    TierMode, TierPlan, WorkOnlyHandler,
};

/// A program whose frames *start* untainted (no arguments) but turn
/// tainted mid-run: the loop bound comes from `pt_param_i64`, and the
/// loop body stores/loads tainted values through a buffer. The fast path
/// engages at every call and must deopt when the first labeled value
/// shows up.
fn taint_midway_module() -> Module {
    let mut m = Module::new("tier_deopt");

    let mut h = FunctionBuilder::new(
        "helper",
        vec![("a".into(), Type::I64), ("b".into(), Type::I64)],
        Type::I64,
    );
    // Multi-block on purpose: a single-block body would be inlined at
    // the call site and never reach the tier dispatch in `exec_function`.
    let (p0, p1) = (h.param(0), h.param(1));
    let x = h.mul(p0, Value::int(3));
    let c = h.cmp(CmpPred::Lt, x, Value::int(100));
    let t = h.new_block();
    let e = h.new_block();
    let join = h.new_block();
    h.cond_br(c, t, e);
    h.switch_to(t);
    let tv = h.add(x, p1);
    h.br(join);
    h.switch_to(e);
    let ev = h.sub(x, p1);
    h.br(join);
    h.switch_to(join);
    let phi = h.phi(Type::I64);
    h.add_incoming(phi, t, tv);
    h.add_incoming(phi, e, ev);
    h.ret(Some(Value::Inst(phi)));
    let helper = m.add_function(h.finish());

    let mut b = FunctionBuilder::new("main", vec![], Type::I64);
    let n = b.call_external("pt_param_i64", vec![Value::int(0)], Type::I64);
    let buf = b.alloca(8i64);
    b.for_loop(0i64, n, 1i64, |b, iv| {
        let idx = b.bin(pt_ir::BinOp::And, iv, Value::int(7));
        let addr = b.gep(buf, idx, 1);
        let hv = b.call(helper, vec![iv, n], Type::I64);
        b.store(addr, hv);
        let back = b.load(addr, Type::I64);
        b.call_external("pt_work_flops", vec![back], Type::Void);
    });
    let final_addr = b.gep(buf, Value::int(2), 1);
    let out = b.load(final_addr, Type::I64);
    b.ret(Some(out));
    m.add_function(b.finish());
    m
}

fn run_with_tier(m: &Module, tier: TierConfig) -> RunOutput {
    let config = InterpConfig {
        taint: true,
        coverage: true,
        tier,
        ..InterpConfig::default()
    };
    let prepared = PreparedModule::compute(m);
    let params = vec![("n".to_string(), 6)];
    Interpreter::new(m, &prepared, WorkOnlyHandler::default(), params, config)
        .run_named("main", &[])
        .expect("run failed")
}

fn off() -> TierConfig {
    TierConfig {
        mode: TierMode::Off,
        ..TierConfig::default()
    }
}

#[test]
fn fast_path_engages_and_deopts_on_taint() {
    let m = taint_midway_module();
    let baseline = run_with_tier(&m, off());
    let tiered = run_with_tier(
        &m,
        TierConfig {
            mode: TierMode::Force,
            fast_path: true,
            threaded: false,
            ..TierConfig::default()
        },
    );
    compare_outputs(&baseline, &tiered).expect("fast path changed output");
    assert!(tiered.tier.fast_entries > 0, "fast path never engaged");
    // Taint appears mid-frame (tainted loop bound, tainted loads), so
    // sound guards must have bailed at least once.
    assert!(tiered.tier.fast_deopts > 0, "fast path never deopted");
    assert_eq!(baseline.tier.fast_entries, 0);
}

#[test]
fn forced_deopt_chaos_sweep_is_bit_identical() {
    let m = taint_midway_module();
    let baseline = run_with_tier(&m, off());
    for deopt_every in [1, 2, 3, 5, 8] {
        let tiered = run_with_tier(
            &m,
            TierConfig {
                mode: TierMode::Force,
                fast_path: true,
                threaded: false,
                deopt_every,
                ..TierConfig::default()
            },
        );
        compare_outputs(&baseline, &tiered)
            .unwrap_or_else(|e| panic!("deopt_every={deopt_every} changed output: {e}"));
        assert!(
            tiered.tier.fast_deopts > 0,
            "deopt_every={deopt_every} never tripped"
        );
    }
}

#[test]
fn forced_threaded_agrees_with_reference_engine() {
    let m = taint_midway_module();
    let config = InterpConfig {
        taint: true,
        coverage: true,
        tier: TierConfig {
            mode: TierMode::Force,
            ..TierConfig::default()
        },
        ..InterpConfig::default()
    };
    let prepared = PreparedModule::compute(&m);
    let params = vec![("n".to_string(), 6)];
    let tiered = Interpreter::new(
        &m,
        &prepared,
        WorkOnlyHandler::default(),
        params.clone(),
        config.clone(),
    )
    .run_named("main", &[]);
    let legacy =
        ReferenceInterpreter::new(&m, &prepared, WorkOnlyHandler::default(), params, config)
            .run_named("main", &[]);
    compare_results(&tiered, &legacy).expect("threaded tier diverged from reference");
    assert!(tiered.unwrap().tier.threaded_insts > 0);
}

#[test]
fn warmup_respecializes_mid_run_without_output_change() {
    let m = taint_midway_module();
    let baseline = run_with_tier(&m, off());
    let tiered = run_with_tier(
        &m,
        TierConfig {
            mode: TierMode::Warmup,
            // The helper crosses this threshold mid-run: later calls go
            // through code specialized from this very run's records.
            hot_calls: 2,
            ..TierConfig::default()
        },
    );
    compare_outputs(&baseline, &tiered).expect("mid-run respecialization changed output");
    assert!(tiered.tier.respecialized > 0, "warmup never respecialized");
    assert!(tiered.tier.threaded_insts > 0);
}

#[test]
fn mismatched_tier_artifact_falls_back_to_general_loop() {
    // A specialization built for a *different* module must be refused by
    // the frame-shape guard, not executed: the run completes on the
    // general loop with identical output.
    let m = taint_midway_module();
    let mut other = Module::new("other");
    let mut b = FunctionBuilder::new("main", vec![], Type::I64);
    let mut acc = Value::int(1);
    for i in 0..24 {
        acc = b.add(acc, Value::int(i));
    }
    b.ret(Some(acc));
    other.add_function(b.finish());
    let other_prepared = PreparedModule::compute(&other);
    let foreign = tier::specialize(
        &other_prepared.decoded,
        &TierPlan::all(other.functions.len()),
        &TierConfig {
            mode: TierMode::Force,
            ..TierConfig::default()
        },
        None,
    );

    let baseline = run_with_tier(&m, off());
    let config = InterpConfig {
        taint: true,
        coverage: true,
        tier: off(),
        ..InterpConfig::default()
    };
    let prepared = PreparedModule::compute(&m);
    let params = vec![("n".to_string(), 6)];
    let mut interp = Interpreter::new(&m, &prepared, WorkOnlyHandler::default(), params, config);
    interp.set_tier(&foreign);
    let out = interp.run_named("main", &[]).expect("run failed");
    compare_outputs(&baseline, &out).expect("foreign artifact changed output");
    assert_eq!(out.tier.threaded_insts, 0, "foreign threaded code ran");
}
