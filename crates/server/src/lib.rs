//! # pt-serve — the perf-taint pipeline as a standing service
//!
//! The library pipeline (taint-based classification → clean measurements →
//! Extra-P model fitting) is reachable in-process through
//! [`perf_taint::Session`]; this crate makes that amortization durable and
//! network-reachable. `pt-server` is a long-running, multi-client TCP
//! service speaking newline-delimited JSON ([`protocol`]); under it, a
//! persistent content-addressed artifact [`store`] caches parsed modules,
//! static-stage summaries, taint-run analyses, and fitted models on disk —
//! so repeat requests skip the pipeline entirely, across clients *and*
//! across server restarts. Effectively `SessionCache` made durable.
//!
//! Architecture (all std, no async runtime):
//!
//! ```text
//! acceptor ──▶ BoundedQueue<TcpStream> ──▶ N worker threads
//!     │          (backpressure when full)     └─ per line: parse → dispatch
//!     └─ shed mode: full queue answers           (catch_unwind; PtError →
//!        `overloaded` + retry_after_ms            error envelope) → respond
//! ```
//!
//! The request catalogue (`submit_module`, `static_analysis`, `taint_run`,
//! `analyze_batch`, `fit_model`, `trace`, `stats`, `metrics`, `shutdown`)
//! lives in [`state`]; production-operations concerns — per-method latency
//! metrics, admission control, store eviction budgets, request tracing and
//! the slow-request log — live in [`ops`], [`store`], and
//! [`pt_util::trace`]; the wire shapes are documented in
//! `crates/server/README.md`.

pub mod client;
pub mod ops;
pub mod protocol;
pub mod state;
pub mod store;

pub use client::{Client, ClientError};
pub use ops::AdmissionPolicy;
pub use protocol::{ServeError, PROTOCOL_MINOR, PROTOCOL_VERSION};
pub use state::ServerState;
pub use store::{content_key, ArtifactKind, Store, StoreKey, CONFIG_FINGERPRINT};

use pt_util::{BoundedQueue, TryPushError};
use serde::json::Value;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;

/// How a [`Server`] is stood up.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; port 0 picks an ephemeral port (read it back via
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Root of the persistent artifact store.
    pub store_dir: PathBuf,
    /// Worker threads serving connections (also the `analyze_batch` fan-out
    /// budget).
    pub workers: usize,
    /// Bound of the pending-connection queue; acceptors block (backpressure)
    /// when it is full.
    pub queue_capacity: usize,
    /// Keep-alive limit: a connection idle (no complete request) for
    /// longer than this is closed, releasing its worker. `None` keeps
    /// connections forever (the pre-limit behavior).
    pub idle_timeout: Option<std::time::Duration>,
    /// Keep-alive limit: a connection is closed after serving this many
    /// requests; the client reconnects (cheap) and the workers rotate
    /// fairly across chatty clients. `None` = unlimited.
    pub max_requests_per_connection: Option<u64>,
    /// `true`: a full connection queue sheds new arrivals with an
    /// `overloaded` envelope (protocol v1.1) instead of blocking the
    /// accept loop. `false` (default): classic blocking backpressure.
    pub shed: bool,
    /// Fixed backoff hint (milliseconds) carried in shed envelopes.
    /// `None` (protocol v1.3): derive the hint adaptively from the worst
    /// observed per-method p99 service time.
    pub retry_after_ms: Option<u64>,
    /// Size budget for the artifact store; when total object bytes exceed
    /// it, the coldest objects are evicted (LRU). `None` = unbounded.
    pub store_budget_bytes: Option<u64>,
    /// Bound on the in-process session cache (module content → shared
    /// static stage): at most this many module contents stay resident,
    /// coldest evicted first. `None` = unbounded (the pre-v1.3 behavior).
    pub session_cache_entries: Option<usize>,
    /// Slow-request log (protocol v1.3): any request slower than this
    /// many milliseconds is reported as one structured stderr line with
    /// its per-stage wall breakdown. Enabling it traces *every* request
    /// (the breakdown must exist before the request proves slow), so it
    /// carries tracing's small bookkeeping overhead. `None` = off.
    pub slow_request_ms: Option<u64>,
    /// Sampled always-on tracing (protocol v1.4): every Nth request runs
    /// under the request tracer and its per-stage wall totals are folded
    /// into a bounded in-memory profile that `metrics` reports as
    /// `sampled_profile`. Unlike the slow-request log, which only
    /// surfaces outliers, this keeps a continuous picture of where
    /// *typical* request time goes, at 1/N of tracing's bookkeeping cost.
    /// `None` = off.
    pub trace_sample_every: Option<u64>,
}

impl ServerConfig {
    /// Loopback on an ephemeral port, `workers` threads, store at
    /// `store_dir`.
    pub fn loopback(store_dir: impl Into<PathBuf>, workers: usize) -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            store_dir: store_dir.into(),
            workers,
            queue_capacity: 64,
            idle_timeout: None,
            max_requests_per_connection: None,
            shed: false,
            retry_after_ms: None,
            store_budget_bytes: None,
            session_cache_entries: None,
            slow_request_ms: None,
            trace_sample_every: Some(64),
        }
    }
}

/// A bound, not-yet-running server. [`Server::run`] blocks the calling
/// thread until a `shutdown` request is served.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl Server {
    /// Bind the listener and open the store.
    pub fn bind(config: &ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let store = Store::open(&config.store_dir)?.with_budget(config.store_budget_bytes);
        let state = Arc::new(
            ServerState::new(store, config.workers, config.queue_capacity)
                .with_keepalive_limits(config.idle_timeout, config.max_requests_per_connection)
                .with_admission(AdmissionPolicy {
                    shed: config.shed,
                    retry_after_ms: config.retry_after_ms,
                })
                .with_session_cache_entries(config.session_cache_entries)
                .with_slow_request_log(config.slow_request_ms)
                .with_trace_sampling(config.trace_sample_every),
        );
        Ok(Server { listener, state })
    }

    /// The actually-bound address (resolves port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Shared state (stats introspection for harnesses/tests).
    pub fn state(&self) -> Arc<ServerState> {
        self.state.clone()
    }

    /// Serve until a `shutdown` request arrives: the acceptor pushes
    /// connections onto a bounded queue, workers pop and serve them one
    /// request-line at a time. Already-queued connections are drained
    /// before the workers exit, and idle connections are released when
    /// shutdown starts (reads poll the stop flag on a short timeout), so
    /// `run` returns even while other clients are connected.
    pub fn run(self) -> io::Result<()> {
        let addr = self.local_addr()?;
        // The shutdown nudge must be a connectable address: a wildcard
        // bind (0.0.0.0 / ::) is not connectable on every platform, so
        // redirect it to the matching loopback.
        let nudge_addr = if addr.ip().is_unspecified() {
            let loopback: std::net::IpAddr = match addr {
                SocketAddr::V4(_) => std::net::Ipv4Addr::LOCALHOST.into(),
                SocketAddr::V6(_) => std::net::Ipv6Addr::LOCALHOST.into(),
            };
            SocketAddr::new(loopback, addr.port())
        } else {
            addr
        };
        // Connections carry their accept instant so the time spent waiting
        // for a worker is attributable ("server"/"queue_wait" spans in the
        // `--trace-out` export).
        let queue = BoundedQueue::<(TcpStream, std::time::Instant)>::new(self.state.queue_capacity);
        let state = &self.state;
        std::thread::scope(|scope| {
            for _ in 0..state.workers {
                let queue = &queue;
                scope.spawn(move || {
                    while let Some((stream, accepted)) = queue.pop() {
                        state.ops().queue_depth.dec();
                        if pt_util::trace::enabled() {
                            pt_util::trace::record_span(
                                0,
                                0,
                                "server",
                                "queue_wait",
                                pt_util::trace::nanos_since_epoch(accepted),
                                pt_util::trace::nanos_since_epoch(std::time::Instant::now()),
                            );
                        }
                        handle_connection(state, stream, nudge_addr);
                    }
                });
            }
            'accept: for incoming in self.listener.incoming() {
                if state.stopping() {
                    break;
                }
                match incoming {
                    Ok(stream) if state.admission.shed => {
                        // Admission control: never block the accept path. A
                        // full queue answers the newcomer immediately with
                        // `overloaded` + retry_after_ms and moves on.
                        match queue.try_push((stream, std::time::Instant::now())) {
                            Ok(()) => state.ops().queue_depth.inc(),
                            Err(TryPushError::Full((stream, _))) => {
                                state.ops().shed_total.inc();
                                ops::shed_connection(stream, state.retry_hint());
                            }
                            Err(TryPushError::Closed(_)) => break 'accept,
                        }
                    }
                    Ok(stream) => {
                        // Classic backpressure: block until a slot frees.
                        if queue.push((stream, std::time::Instant::now())).is_err() {
                            break;
                        }
                        state.ops().queue_depth.inc();
                    }
                    // Transient accept failures (EMFILE, aborted handshake)
                    // should not kill the service.
                    Err(_) => continue,
                }
            }
            queue.close();
        });
        Ok(())
    }
}

/// How often an idle connection's read wakes to poll the stop flag.
const IDLE_POLL: std::time::Duration = std::time::Duration::from_millis(200);

/// Hard cap on one request line. Large modules fit comfortably (the demo
/// module is ~2 KB; the biggest evaluation app renders well under 1 MB);
/// a client streaming newline-free bytes must not grow server memory
/// without bound.
const MAX_REQUEST_BYTES: usize = 64 * 1024 * 1024;

/// Serve one connection: newline-delimited requests, one response line
/// each, until the client hangs up or shutdown begins. Reads run on a
/// short timeout so a worker parked on an idle client still observes the
/// stop flag. After serving the `shutdown` request itself, the worker
/// nudges the acceptor awake with a throwaway connection so the blocking
/// `accept` observes the flag too.
fn handle_connection(state: &ServerState, stream: TcpStream, nudge_addr: SocketAddr) {
    let _ = stream.set_read_timeout(Some(IDLE_POLL));
    let mut reader = match stream.try_clone() {
        Ok(clone) => BufReader::new(clone),
        Err(_) => return,
    };
    let mut writer = BufWriter::new(stream);
    let mut buf: Vec<u8> = Vec::new();
    // Keep-alive accounting: idleness is measured from the last completed
    // response (or connection start) — a slow *computation* is not idle.
    let mut last_activity = std::time::Instant::now();
    let mut served: u64 = 0;
    loop {
        // Read raw bytes, not `read_line`: `read_until` keeps partially
        // read bytes in `buf` across timeouts unconditionally, whereas
        // `read_line` discards a call's bytes when a timeout lands
        // mid-UTF-8-character. UTF-8 is validated once per complete line.
        // The reader is capped per iteration so `read_until` cannot grow
        // `buf` past the request bound inside its own loop, no matter how
        // fast a newline-free flood arrives; hitting the cap surfaces as
        // an over-limit `buf` below.
        let allowed = (MAX_REQUEST_BYTES + 1).saturating_sub(buf.len()) as u64;
        match std::io::Read::take(&mut reader, allowed).read_until(b'\n', &mut buf) {
            Ok(0) => break, // EOF: client hung up
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if state.stopping() {
                    break;
                }
                // Idle-connection limit: drop clients that sit silent
                // (mid-request bytes count as activity only once the full
                // line lands — a trickling client is still bounded).
                if let Some(limit) = state.idle_timeout {
                    if last_activity.elapsed() >= limit {
                        break;
                    }
                }
                continue;
            }
            Err(_) => break,
        }
        if buf.len() > MAX_REQUEST_BYTES {
            // Oversized request: answer once, then drop the connection
            // (the rest of the line is unread garbage).
            let response = protocol::error_response(
                &Value::Null,
                &ServeError::BadRequest(format!("request exceeds {MAX_REQUEST_BYTES} bytes")),
            );
            let _ = writer
                .write_all(response.render().as_bytes())
                .and_then(|_| writer.write_all(b"\n"))
                .and_then(|_| writer.flush());
            break;
        }
        let was_stopping = state.stopping();
        let response = match std::str::from_utf8(&buf) {
            Ok(line) if line.trim().is_empty() => {
                // Blank lines are not requests, but they must not bypass
                // the connection limits either: a blank-line flood neither
                // resets the idle clock nor dodges shutdown.
                buf.clear();
                if state.stopping() {
                    break;
                }
                if let Some(limit) = state.idle_timeout {
                    if last_activity.elapsed() >= limit {
                        break;
                    }
                }
                continue;
            }
            Ok(line) => handle_line(state, line),
            Err(_) => protocol::error_response(
                &Value::Null,
                &ServeError::BadRequest("request line is not valid UTF-8".into()),
            ),
        };
        buf.clear();
        if writer
            .write_all(response.render().as_bytes())
            .and_then(|_| writer.write_all(b"\n"))
            .and_then(|_| writer.flush())
            .is_err()
        {
            break;
        }
        served += 1;
        last_activity = std::time::Instant::now();
        // Per-connection request budget: close after the response so the
        // client sees a clean EOF and reconnects.
        if state
            .max_requests_per_connection
            .is_some_and(|limit| served >= limit)
        {
            break;
        }
        if state.stopping() {
            // Close every connection once shutdown starts — a busy client
            // must not pin its worker past its in-flight request. Only the
            // initiating request nudges the acceptor awake.
            if !was_stopping {
                let _ = TcpStream::connect(nudge_addr);
            }
            break;
        }
    }
}

/// One request line → one response document. Dispatch runs under
/// `catch_unwind`: a handler bug costs the client an `internal` error
/// envelope, never the server process ("no panics across the wire").
///
/// With the slow-request log configured (`--slow-request-ms`), every
/// request runs under its own trace so the ones that cross the threshold
/// report *where* the time went, not merely that it went: one stderr line
/// with method, trace id, wall time, and the per-stage breakdown. With
/// sampling configured (`trace_sample_every`), every Nth request runs
/// under the same per-request trace and its per-stage totals are folded
/// into the bounded profile `metrics` reports — the always-on complement
/// to the outlier-only slow log. One request due for both uses one trace.
pub fn handle_line(state: &ServerState, line: &str) -> Value {
    let request = match protocol::parse_request(line) {
        Ok(r) => r,
        Err((id, e)) => return protocol::error_response(&id, &e),
    };
    let sampling = state.sampling_due();
    let traced = (sampling || state.slow_request_ms.is_some()).then(|| {
        (
            pt_util::trace::enable_scoped(),
            pt_util::trace::next_trace_id(),
        )
    });
    let started = std::time::Instant::now();
    let outcome = {
        let _bind = traced
            .as_ref()
            .map(|(_, trace_id)| pt_util::trace::set_thread_trace(*trace_id));
        let _root = traced
            .as_ref()
            .map(|_| pt_util::trace::span("server", "request"));
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            state.dispatch(&request.method, &request.params)
        }))
    };
    if let Some((_scope, trace_id)) = traced {
        // Always drain this request's events — a fast request must not
        // leave its spans behind to bloat the sink or leak into later
        // slow-request reports.
        let events = pt_util::trace::take_trace(trace_id);
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        let stages = pt_util::trace::stage_totals_ms(&events);
        if sampling {
            state.record_sample(wall_ms, &stages);
        }
        if state
            .slow_request_ms
            .is_some_and(|limit_ms| wall_ms >= limit_ms as f64)
        {
            let stages = stages
                .iter()
                .map(|(name, ms)| format!("{name}:{ms:.1}"))
                .collect::<Vec<_>>()
                .join(",");
            eprintln!(
                "pt-server: slow-request method={} trace={} wall_ms={:.1} stages_ms={}",
                request.method, trace_id, wall_ms, stages
            );
        }
    }
    match outcome {
        Ok(Ok(result)) => protocol::ok_response(&request.id, result),
        Ok(Err(e)) => protocol::error_response(&request.id, &e),
        Err(payload) => {
            let message = pt_util::panic_message(payload.as_ref(), "unknown payload");
            protocol::error_response(
                &request.id,
                &ServeError::Internal(format!("handler panicked: {message}")),
            )
        }
    }
}

/// The canonical demo module, shared by `pt-client demo`, the bench
/// scenario, the integration tests, and the CI smoke job: a small program
/// with a marked parameter `n`, an implicit rank count `p`, a parametric
/// kernel, an MPI-calling comm routine, and a statically constant getter —
/// every classification the pipeline distinguishes.
pub fn demo_module_text() -> String {
    use pt_ir::{FunctionBuilder, Module, Type, Value as IrValue};
    let mut m = Module::new("pt_serve_demo");
    let mut b = FunctionBuilder::new("getter", vec![("d".into(), Type::Ptr)], Type::I64);
    let v = b.load(b.param(0), Type::I64);
    b.ret(Some(v));
    m.add_function(b.finish());
    let mut b = FunctionBuilder::new("kernel", vec![("n".into(), Type::I64)], Type::Void);
    b.for_loop(0i64, b.param(0), 1i64, |b, _| {
        b.call_external("pt_work_flops", vec![IrValue::int(5)], Type::Void);
    });
    b.ret(None);
    let kernel = m.add_function(b.finish());
    let mut b = FunctionBuilder::new("exchange", vec![("n".into(), Type::I64)], Type::Void);
    b.call_external("MPI_Allreduce", vec![b.param(0)], Type::Void);
    b.ret(None);
    let exchange = m.add_function(b.finish());
    let mut b = FunctionBuilder::new("main", vec![], Type::Void);
    let n = b.call_external("pt_param_i64", vec![IrValue::int(0)], Type::I64);
    let pslot = b.alloca(1i64);
    b.call_external("MPI_Comm_size", vec![pslot], Type::Void);
    b.call(kernel, vec![n], Type::Void);
    b.call(exchange, vec![n], Type::Void);
    b.ret(None);
    m.add_function(b.finish());
    pt_ir::printer::print_module(&m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_module_parses_and_verifies() {
        let text = demo_module_text();
        let m = perf_taint::parse_module(&text).expect("demo parses");
        assert!(pt_ir::verify_module(&m).is_ok());
        assert_eq!(m.functions.len(), 4);
        assert!(m.function_by_name("main").is_some());
    }

    #[test]
    fn handle_line_maps_panics_to_internal_errors() {
        let dir = std::env::temp_dir().join(format!("pt-serve-panic-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let state = ServerState::new(Store::open(&dir).unwrap(), 1, 4);
        // An unknown method is a bad_request, not a panic.
        let resp = handle_line(&state, r#"{"v":1,"id":1,"method":"nope"}"#);
        assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(false));
        assert_eq!(
            resp.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Value::as_str),
            Some("bad_request")
        );
        // Malformed JSON still yields a well-formed envelope with id null.
        let resp = handle_line(&state, "{nope");
        assert_eq!(resp.get("id"), Some(&Value::Null));
        assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(false));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
