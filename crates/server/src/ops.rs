//! Production operations: observability and admission control.
//!
//! PR 3 made the pipeline a standing service; this module makes that
//! service *operable*. [`Ops`] is the server's self-observation surface —
//! uptime, queue depth, shed counts, and a per-method request counter +
//! latency histogram (`pt_util::metrics`; lock-free, one atomic add per
//! event) — read out by the protocol-v1.1 `metrics` method and, in
//! abbreviated form, by `stats`. [`AdmissionPolicy`] is the overload
//! stance: with shedding enabled, a full connection queue answers new
//! arrivals *immediately* with an `overloaded` envelope carrying
//! `retry_after_ms` instead of blocking the accept path — bounded latency
//! for admitted work, an honest backoff signal for the rest.

use crate::protocol::{self, ServeError};
use pt_util::metrics::{Counter, Gauge, Histogram};
use serde::json::Value;
use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Every method the dispatcher knows, plus the shared bucket for
/// everything else. One fixed slot per name keeps metrics lookup
/// lock-free and the cardinality bounded no matter what clients send.
pub const METHODS: &[&str] = &[
    "submit_module",
    "static_analysis",
    "taint_run",
    "analyze_batch",
    "fit_model",
    "trace",
    "stats",
    "metrics",
    "shutdown",
    "unknown",
];

/// How the server behaves when the connection queue is full.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdmissionPolicy {
    /// `true`: shed new connections with an `overloaded` envelope when the
    /// queue is full. `false` (default): block the accept loop until a
    /// slot frees — the pre-v1.1 backpressure behavior.
    pub shed: bool,
    /// Fixed backoff hint carried in shed envelopes. `None` (default,
    /// protocol v1.3): derive the hint adaptively from observed service
    /// time — [`Ops::derived_retry_hint_ms`] — so a server doing 2 ms
    /// `stats` calls and one doing 800 ms `analyze_batch` fan-outs each
    /// tell clients an honest backoff without operator tuning.
    pub retry_after_ms: Option<u64>,
}

/// Bounds of the adaptive backoff hint: never tell a client to hammer a
/// saturated server faster than this...
pub const MIN_RETRY_HINT_MS: u64 = 25;
/// ...and never park one longer than this, however slow a batch was.
pub const MAX_RETRY_HINT_MS: u64 = 5_000;
/// The hint before any request has been measured (also the pre-v1.3
/// fixed default).
pub const DEFAULT_RETRY_HINT_MS: u64 = 100;

/// Counters and latency histogram of one method.
#[derive(Debug)]
pub struct MethodMetrics {
    /// Requests dispatched (counted before the handler runs, so a
    /// panicking handler is still visible here).
    pub calls: Counter,
    /// Requests answered with an error envelope.
    pub errors: Counter,
    /// Handler latency (dispatch to response document, excluding network).
    pub latency: Histogram,
}

impl MethodMetrics {
    fn new() -> MethodMetrics {
        MethodMetrics {
            calls: Counter::new(),
            errors: Counter::new(),
            latency: Histogram::new(),
        }
    }
}

/// The server's operational self-observation state, shared by the
/// acceptor, the worker pool, and the dispatch layer.
pub struct Ops {
    started: Instant,
    /// Connections currently waiting in the admission queue.
    pub queue_depth: Gauge,
    /// Connections answered `overloaded` instead of being queued.
    pub shed_total: Counter,
    methods: Vec<(&'static str, MethodMetrics)>,
}

impl Ops {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Ops {
        Ops {
            started: Instant::now(),
            queue_depth: Gauge::new(),
            shed_total: Counter::new(),
            methods: METHODS.iter().map(|&m| (m, MethodMetrics::new())).collect(),
        }
    }

    pub fn uptime_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// The metrics slot for a method name; anything unrecognized shares
    /// the bounded `unknown` slot.
    pub fn method(&self, name: &str) -> &MethodMetrics {
        self.methods
            .iter()
            .find(|(m, _)| *m == name)
            .map(|(_, metrics)| metrics)
            .unwrap_or_else(|| self.method("unknown"))
    }

    /// Per-method request counts (only methods that have been called), for
    /// the `stats` summary.
    pub fn method_counts(&self) -> Vec<(String, Value)> {
        self.methods
            .iter()
            .filter(|(_, m)| m.calls.get() > 0)
            .map(|(name, m)| (name.to_string(), Value::int(m.calls.get() as i64)))
            .collect()
    }

    /// The adaptive shed backoff hint (milliseconds): the worst per-method
    /// p99 service time observed so far, clamped to
    /// [[`MIN_RETRY_HINT_MS`], [`MAX_RETRY_HINT_MS`]]. The p99 — not the
    /// mean — because a shed client that waits one worst-case service
    /// time finds a drained queue slot with high probability; a
    /// mean-based hint under a bimodal mix (cheap `stats`, expensive
    /// `analyze_batch`) would have it reconnect into a still-full queue.
    /// Before any request has completed the hint falls back to
    /// [`DEFAULT_RETRY_HINT_MS`].
    pub fn derived_retry_hint_ms(&self) -> u64 {
        self.methods
            .iter()
            .filter(|(_, m)| m.calls.get() > 0)
            .map(|(_, m)| m.latency.snapshot().p99_micros / 1_000)
            .max()
            .map(|p99_ms| p99_ms.clamp(MIN_RETRY_HINT_MS, MAX_RETRY_HINT_MS))
            .unwrap_or(DEFAULT_RETRY_HINT_MS)
    }

    /// The `methods` object of the `metrics` response: per-method count,
    /// error count, and latency histogram readout in milliseconds.
    pub fn methods_json(&self) -> Value {
        Value::Obj(
            self.methods
                .iter()
                .filter(|(_, m)| m.calls.get() > 0)
                .map(|(name, m)| {
                    let snap = m.latency.snapshot();
                    (
                        name.to_string(),
                        Value::obj(vec![
                            ("count", Value::int(m.calls.get() as i64)),
                            ("errors", Value::int(m.errors.get() as i64)),
                            ("mean_ms", Value::Num(snap.mean_micros / 1e3)),
                            ("p50_ms", Value::Num(snap.p50_micros as f64 / 1e3)),
                            ("p99_ms", Value::Num(snap.p99_micros as f64 / 1e3)),
                            ("p999_ms", Value::Num(snap.p999_micros as f64 / 1e3)),
                        ]),
                    )
                })
                .collect(),
        )
    }
}

/// Answer a connection the admission queue declined: one `overloaded`
/// envelope (id `null` — the request was never read), then close. The
/// write runs on the accept path, so it is strictly bounded: a client that
/// won't take the bytes within the timeout forfeits its envelope — the
/// acceptor never blocks on a shed connection.
pub fn shed_connection(stream: TcpStream, retry_after_ms: u64) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let envelope =
        protocol::error_response(&Value::Null, &ServeError::Overloaded { retry_after_ms });
    let mut stream = stream;
    let _ = stream
        .write_all(envelope.render().as_bytes())
        .and_then(|_| stream.write_all(b"\n"))
        .and_then(|_| stream.flush());
    // Dropping the stream closes the connection; the client reconnects
    // after the hinted backoff.
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_slots_cover_the_dispatch_table_and_bound_unknowns() {
        let ops = Ops::new();
        ops.method("taint_run").calls.inc();
        ops.method("taint_run").calls.inc();
        ops.method("nope").calls.inc();
        ops.method("also-nope").calls.inc();
        assert_eq!(ops.method("taint_run").calls.get(), 2);
        // Arbitrary names share one bounded slot.
        assert_eq!(ops.method("unknown").calls.get(), 2);
        let counts = ops.method_counts();
        assert_eq!(counts.len(), 2);
    }

    #[test]
    fn methods_json_reports_latency_in_ms() {
        let ops = Ops::new();
        let m = ops.method("stats");
        m.calls.inc();
        m.latency.record_micros(2_000);
        let json = ops.methods_json();
        let stats = json.get("stats").expect("called methods are present");
        assert_eq!(stats.get("count").and_then(Value::as_u64), Some(1));
        assert_eq!(stats.get("p50_ms").and_then(Value::as_f64), Some(2.0));
        assert!(json.get("taint_run").is_none(), "uncalled methods omitted");
    }

    #[test]
    fn derived_retry_hint_tracks_the_worst_p99_and_clamps() {
        let ops = Ops::new();
        // No data: the fixed default.
        assert_eq!(ops.derived_retry_hint_ms(), DEFAULT_RETRY_HINT_MS);
        // Sub-millisecond service clamps up to the floor.
        let fast = ops.method("stats");
        fast.calls.inc();
        fast.latency.record_micros(90);
        assert_eq!(ops.derived_retry_hint_ms(), MIN_RETRY_HINT_MS);
        // The worst method's p99 wins (bucketed upward by the histogram).
        let slow = ops.method("analyze_batch");
        slow.calls.inc();
        slow.latency.record_micros(180_000);
        let hint = ops.derived_retry_hint_ms();
        assert!(
            (180..=MAX_RETRY_HINT_MS).contains(&hint),
            "hint {hint} should reflect the 180 ms batch"
        );
        // Absurdly slow work clamps down to the ceiling.
        slow.latency.record_micros(60_000_000);
        assert_eq!(ops.derived_retry_hint_ms(), MAX_RETRY_HINT_MS);
    }

    #[test]
    fn uptime_advances() {
        let ops = Ops::new();
        std::thread::sleep(Duration::from_millis(5));
        assert!(ops.uptime_seconds() >= 0.004);
    }
}
