//! Production operations: observability and admission control.
//!
//! PR 3 made the pipeline a standing service; this module makes that
//! service *operable*. [`Ops`] is the server's self-observation surface —
//! uptime, queue depth, shed counts, and a per-method request counter +
//! latency histogram (`pt_util::metrics`; lock-free, one atomic add per
//! event) — read out by the protocol-v1.1 `metrics` method and, in
//! abbreviated form, by `stats`. [`AdmissionPolicy`] is the overload
//! stance: with shedding enabled, a full connection queue answers new
//! arrivals *immediately* with an `overloaded` envelope carrying
//! `retry_after_ms` instead of blocking the accept path — bounded latency
//! for admitted work, an honest backoff signal for the rest.

use crate::protocol::{self, ServeError};
use pt_util::metrics::{Counter, Gauge, Histogram};
use serde::json::Value;
use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Every method the dispatcher knows, plus the shared bucket for
/// everything else. One fixed slot per name keeps metrics lookup
/// lock-free and the cardinality bounded no matter what clients send.
pub const METHODS: &[&str] = &[
    "submit_module",
    "static_analysis",
    "taint_run",
    "analyze_batch",
    "fit_model",
    "stats",
    "metrics",
    "shutdown",
    "unknown",
];

/// How the server behaves when the connection queue is full.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionPolicy {
    /// `true`: shed new connections with an `overloaded` envelope when the
    /// queue is full. `false` (default): block the accept loop until a
    /// slot frees — the pre-v1.1 backpressure behavior.
    pub shed: bool,
    /// Backoff hint carried in shed envelopes.
    pub retry_after_ms: u64,
}

impl Default for AdmissionPolicy {
    fn default() -> AdmissionPolicy {
        AdmissionPolicy {
            shed: false,
            retry_after_ms: 100,
        }
    }
}

/// Counters and latency histogram of one method.
#[derive(Debug)]
pub struct MethodMetrics {
    /// Requests dispatched (counted before the handler runs, so a
    /// panicking handler is still visible here).
    pub calls: Counter,
    /// Requests answered with an error envelope.
    pub errors: Counter,
    /// Handler latency (dispatch to response document, excluding network).
    pub latency: Histogram,
}

impl MethodMetrics {
    fn new() -> MethodMetrics {
        MethodMetrics {
            calls: Counter::new(),
            errors: Counter::new(),
            latency: Histogram::new(),
        }
    }
}

/// The server's operational self-observation state, shared by the
/// acceptor, the worker pool, and the dispatch layer.
pub struct Ops {
    started: Instant,
    /// Connections currently waiting in the admission queue.
    pub queue_depth: Gauge,
    /// Connections answered `overloaded` instead of being queued.
    pub shed_total: Counter,
    methods: Vec<(&'static str, MethodMetrics)>,
}

impl Ops {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Ops {
        Ops {
            started: Instant::now(),
            queue_depth: Gauge::new(),
            shed_total: Counter::new(),
            methods: METHODS.iter().map(|&m| (m, MethodMetrics::new())).collect(),
        }
    }

    pub fn uptime_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// The metrics slot for a method name; anything unrecognized shares
    /// the bounded `unknown` slot.
    pub fn method(&self, name: &str) -> &MethodMetrics {
        self.methods
            .iter()
            .find(|(m, _)| *m == name)
            .map(|(_, metrics)| metrics)
            .unwrap_or_else(|| self.method("unknown"))
    }

    /// Per-method request counts (only methods that have been called), for
    /// the `stats` summary.
    pub fn method_counts(&self) -> Vec<(String, Value)> {
        self.methods
            .iter()
            .filter(|(_, m)| m.calls.get() > 0)
            .map(|(name, m)| (name.to_string(), Value::int(m.calls.get() as i64)))
            .collect()
    }

    /// The `methods` object of the `metrics` response: per-method count,
    /// error count, and latency histogram readout in milliseconds.
    pub fn methods_json(&self) -> Value {
        Value::Obj(
            self.methods
                .iter()
                .filter(|(_, m)| m.calls.get() > 0)
                .map(|(name, m)| {
                    let snap = m.latency.snapshot();
                    (
                        name.to_string(),
                        Value::obj(vec![
                            ("count", Value::int(m.calls.get() as i64)),
                            ("errors", Value::int(m.errors.get() as i64)),
                            ("mean_ms", Value::Num(snap.mean_micros / 1e3)),
                            ("p50_ms", Value::Num(snap.p50_micros as f64 / 1e3)),
                            ("p99_ms", Value::Num(snap.p99_micros as f64 / 1e3)),
                            ("p999_ms", Value::Num(snap.p999_micros as f64 / 1e3)),
                        ]),
                    )
                })
                .collect(),
        )
    }
}

/// Answer a connection the admission queue declined: one `overloaded`
/// envelope (id `null` — the request was never read), then close. The
/// write runs on the accept path, so it is strictly bounded: a client that
/// won't take the bytes within the timeout forfeits its envelope — the
/// acceptor never blocks on a shed connection.
pub fn shed_connection(stream: TcpStream, retry_after_ms: u64) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let envelope =
        protocol::error_response(&Value::Null, &ServeError::Overloaded { retry_after_ms });
    let mut stream = stream;
    let _ = stream
        .write_all(envelope.render().as_bytes())
        .and_then(|_| stream.write_all(b"\n"))
        .and_then(|_| stream.flush());
    // Dropping the stream closes the connection; the client reconnects
    // after the hinted backoff.
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_slots_cover_the_dispatch_table_and_bound_unknowns() {
        let ops = Ops::new();
        ops.method("taint_run").calls.inc();
        ops.method("taint_run").calls.inc();
        ops.method("nope").calls.inc();
        ops.method("also-nope").calls.inc();
        assert_eq!(ops.method("taint_run").calls.get(), 2);
        // Arbitrary names share one bounded slot.
        assert_eq!(ops.method("unknown").calls.get(), 2);
        let counts = ops.method_counts();
        assert_eq!(counts.len(), 2);
    }

    #[test]
    fn methods_json_reports_latency_in_ms() {
        let ops = Ops::new();
        let m = ops.method("stats");
        m.calls.inc();
        m.latency.record_micros(2_000);
        let json = ops.methods_json();
        let stats = json.get("stats").expect("called methods are present");
        assert_eq!(stats.get("count").and_then(Value::as_u64), Some(1));
        assert_eq!(stats.get("p50_ms").and_then(Value::as_f64), Some(2.0));
        assert!(json.get("taint_run").is_none(), "uncalled methods omitted");
    }

    #[test]
    fn uptime_advances() {
        let ops = Ops::new();
        std::thread::sleep(Duration::from_millis(5));
        assert!(ops.uptime_seconds() >= 0.004);
    }
}
