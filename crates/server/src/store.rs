//! The persistent content-addressed artifact store — `SessionCache` made
//! durable.
//!
//! Every artifact the service computes is cached on disk under a key
//! derived from the *content* that produced it: module text for parsed
//! modules, `(module, entry, config)` for static summaries,
//! `(module, entry, config, params)` for taint-run analyses, and the full
//! canonical request for fitted models. Repeat requests — from any client,
//! in any later process — are answered from disk without re-running the
//! pipeline, which is sound because the whole pipeline is deterministic:
//! a cached response is byte-identical to a fresh computation.
//!
//! Layout: one subdirectory per [`Namespace`], one file per object, the
//! hex key as the filename. Writes go through a temp file + rename so a
//! crashed writer never leaves a torn object for a later reader.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Fingerprint of the pipeline configuration baked into every derived-key
/// computation. The service always analyzes under the default MPI
/// configuration (like `SessionCache`); bump this string if that default
/// ever changes meaning, and every derived artifact re-keys itself.
pub const CONFIG_FINGERPRINT: &str = "mpi-default/1";

/// Is this file name an (in-flight or orphaned) `put` temp file?
fn is_temp(name: &std::ffi::OsStr) -> bool {
    name.to_str().is_some_and(|n| n.contains(".tmp."))
}

/// 128-bit FNV-1a over length-prefixed parts. Not cryptographic — the
/// store defends against accidents, not adversaries — but 128 bits keep
/// accidental collisions out of reach for any realistic corpus, and the
/// implementation is std-only.
pub fn content_key(parts: &[&str]) -> String {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h = (h ^ b as u128).wrapping_mul(PRIME);
        }
    };
    for part in parts {
        // Length-prefix each part so ("ab","c") and ("a","bc") differ.
        eat(&(part.len() as u64).to_le_bytes());
        eat(part.as_bytes());
    }
    format!("{h:032x}")
}

/// The artifact families the store knows, each in its own subdirectory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Namespace {
    /// Submitted module IR text, keyed by its own hash.
    Modules,
    /// Static-stage summaries (§5.1), keyed by (module, entry, config).
    Statics,
    /// Full taint-run analysis summaries, keyed by
    /// (module, entry, config, params).
    Analyses,
    /// Fitted Extra-P models, keyed by the canonical fit request.
    Models,
}

impl Namespace {
    pub const ALL: [Namespace; 4] = [
        Namespace::Modules,
        Namespace::Statics,
        Namespace::Analyses,
        Namespace::Models,
    ];

    fn dir(self) -> &'static str {
        match self {
            Namespace::Modules => "modules",
            Namespace::Statics => "statics",
            Namespace::Analyses => "analyses",
            Namespace::Models => "models",
        }
    }
}

/// Counters of one store's lifetime in this process (per-process, not
/// persisted: a fresh process starts at zero, which is what lets a test
/// observe "this hit came from disk, not from memory").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    pub hits: u64,
    pub misses: u64,
    pub writes: u64,
}

/// A content-addressed artifact store rooted at one directory.
pub struct Store {
    root: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    /// Temp-file disambiguator for concurrent writers in one process.
    seq: AtomicU64,
}

impl Store {
    /// Open (creating if needed) a store rooted at `root`. Orphaned temp
    /// files from writers that died mid-`put` are swept here — they are
    /// garbage by construction (a completed put renames its temp file
    /// away).
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Store> {
        let root = root.into();
        for ns in Namespace::ALL {
            let dir = root.join(ns.dir());
            fs::create_dir_all(&dir)?;
            if let Ok(entries) = fs::read_dir(&dir) {
                for entry in entries.filter_map(Result::ok) {
                    if is_temp(&entry.file_name()) {
                        let _ = fs::remove_file(entry.path());
                    }
                }
            }
        }
        Ok(Store {
            root,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            seq: AtomicU64::new(0),
        })
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path(&self, ns: Namespace, key: &str) -> PathBuf {
        self.root.join(ns.dir()).join(key)
    }

    /// Fetch an object, counting a hit or a miss.
    pub fn get(&self, ns: Namespace, key: &str) -> Option<String> {
        match fs::read_to_string(self.path(ns, key)) {
            Ok(text) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(text)
            }
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Does an object exist? (No hit/miss accounting — for idempotent-put
    /// checks, not for serving.)
    pub fn contains(&self, ns: Namespace, key: &str) -> bool {
        self.path(ns, key).exists()
    }

    /// Store an object atomically: write to a temp file in the same
    /// directory, then rename over the final name. Concurrent writers of
    /// the same key race benignly — content-addressing means they are
    /// writing identical bytes.
    pub fn put(&self, ns: Namespace, key: &str, text: &str) -> io::Result<()> {
        let final_path = self.path(ns, key);
        let tmp_path = final_path.with_extension(format!(
            "tmp.{}.{}",
            std::process::id(),
            self.seq.fetch_add(1, Ordering::Relaxed)
        ));
        fs::write(&tmp_path, text)?;
        fs::rename(&tmp_path, &final_path)?;
        self.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Objects on disk in one namespace (directory scan; for `stats`).
    /// In-flight or orphaned temp files are not objects.
    pub fn object_count(&self, ns: Namespace) -> usize {
        fs::read_dir(self.root.join(ns.dir()))
            .map(|entries| {
                entries
                    .filter_map(Result::ok)
                    .filter(|e| !is_temp(&e.file_name()))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Objects on disk across all namespaces.
    pub fn total_objects(&self) -> usize {
        Namespace::ALL.iter().map(|&ns| self.object_count(ns)).sum()
    }

    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> Store {
        let dir = std::env::temp_dir().join(format!("pt-store-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        Store::open(dir).expect("store opens")
    }

    #[test]
    fn content_key_is_stable_and_part_sensitive() {
        let a = content_key(&["module", "func @f() -> void {"]);
        let b = content_key(&["module", "func @f() -> void {"]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 32);
        assert_ne!(a, content_key(&["module", "func @g() -> void {"]));
        // Part boundaries matter: concatenation-equal inputs differ.
        assert_ne!(content_key(&["ab", "c"]), content_key(&["a", "bc"]));
        assert_ne!(content_key(&["ab"]), content_key(&["ab", ""]));
    }

    #[test]
    fn put_get_roundtrip_and_stats() {
        let store = temp_store("roundtrip");
        let key = content_key(&["module", "text"]);
        assert_eq!(store.get(Namespace::Modules, &key), None);
        store.put(Namespace::Modules, &key, "text").unwrap();
        assert_eq!(store.get(Namespace::Modules, &key).as_deref(), Some("text"));
        assert!(store.contains(Namespace::Modules, &key));
        assert_eq!(
            store.stats(),
            StoreStats {
                hits: 1,
                misses: 1,
                writes: 1
            }
        );
        assert_eq!(store.object_count(Namespace::Modules), 1);
        assert_eq!(store.total_objects(), 1);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn persists_across_reopen() {
        let dir = std::env::temp_dir().join(format!("pt-store-test-{}-reopen", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let store = Store::open(&dir).unwrap();
            store.put(Namespace::Analyses, "abc", "{\"x\":1}").unwrap();
        }
        let store = Store::open(&dir).unwrap();
        // Fresh process-equivalent: zero counters, object still there.
        assert_eq!(store.stats(), StoreStats::default());
        assert_eq!(
            store.get(Namespace::Analyses, "abc").as_deref(),
            Some("{\"x\":1}")
        );
        assert_eq!(store.stats().hits, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn temp_files_are_not_objects_and_orphans_are_swept_on_open() {
        let dir = std::env::temp_dir().join(format!("pt-store-test-{}-tmp", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let store = Store::open(&dir).unwrap();
            store.put(Namespace::Analyses, "good", "{}").unwrap();
            // Simulate a writer that died between write and rename.
            fs::write(dir.join("analyses").join("dead.tmp.1.0"), "partial").unwrap();
            assert_eq!(store.object_count(Namespace::Analyses), 1);
            assert_eq!(store.total_objects(), 1);
        }
        let store = Store::open(&dir).unwrap();
        assert!(
            !dir.join("analyses").join("dead.tmp.1.0").exists(),
            "reopen sweeps orphaned temp files"
        );
        assert_eq!(
            store.get(Namespace::Analyses, "good").as_deref(),
            Some("{}")
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn namespaces_do_not_collide() {
        let store = temp_store("ns");
        store.put(Namespace::Modules, "k", "m").unwrap();
        assert_eq!(store.get(Namespace::Statics, "k"), None);
        assert_eq!(store.get(Namespace::Modules, "k").as_deref(), Some("m"));
        let _ = fs::remove_dir_all(store.root());
    }
}
