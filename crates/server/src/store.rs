//! The persistent content-addressed artifact store — `SessionCache` made
//! durable.
//!
//! Every artifact the service computes is cached on disk under a key
//! derived from the *content* that produced it: module text for parsed
//! modules, `(module, entry, config)` for static summaries,
//! `(module, entry, config, params)` for taint-run analyses, and the full
//! canonical request for fitted models. Repeat requests — from any client,
//! in any later process — are answered from disk without re-running the
//! pipeline, which is sound because the whole pipeline is deterministic:
//! a cached response is byte-identical to a fresh computation.
//!
//! Layout: one subdirectory per [`ArtifactKind`], one file per object, the
//! hex key as the filename. Writes go through a temp file + rename so a
//! crashed writer never leaves a torn object for a later reader.
//!
//! ## Eviction
//!
//! An append-only cache grows without bound; a production store must not.
//! [`Store::with_budget`] caps the total object bytes on disk: the store
//! keeps an access-ordered (LRU) index over every object, and a `put`
//! that pushes the total past the budget deletes the coldest objects —
//! atomically, per namespace directory — until the store fits again.
//! Deterministic recomputation makes this always safe: an evicted object
//! is a future cache miss, never an error (the pipeline recomputes
//! byte-identical bytes and re-heals the store). The access order is
//! persisted in a sidecar file (`lru-index`) so recency survives
//! restarts; the sidecar is advisory — a missing or stale index is
//! rebuilt from the directory scan on open.

use std::collections::{BTreeMap, HashMap};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Fingerprint of the pipeline configuration baked into every derived-key
/// computation. The service always analyzes under the default MPI
/// configuration (like `SessionCache`); bump this string if that default
/// ever changes meaning, and every derived artifact re-keys itself.
pub const CONFIG_FINGERPRINT: &str = "mpi-default/1";

/// The access-order sidecar's filename (lives next to the namespace
/// directories; never counted as an object).
const SIDECAR: &str = "lru-index";

/// Persist the sidecar after this many unsaved access-order touches even
/// when nothing was written — a warm-heavy workload still leaves a
/// usefully fresh index behind for the next process.
const TOUCH_PERSIST_INTERVAL: u64 = 256;

/// Is this file name an (in-flight or orphaned) `put` temp file?
fn is_temp(name: &std::ffi::OsStr) -> bool {
    name.to_str().is_some_and(|n| n.contains(".tmp."))
}

/// 128-bit FNV-1a over length-prefixed parts. Not cryptographic — the
/// store defends against accidents, not adversaries — but 128 bits keep
/// accidental collisions out of reach for any realistic corpus, and the
/// implementation is std-only.
pub fn content_key(parts: &[&str]) -> String {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h = (h ^ b as u128).wrapping_mul(PRIME);
        }
    };
    for part in parts {
        // Length-prefix each part so ("ab","c") and ("a","bc") differ.
        eat(&(part.len() as u64).to_le_bytes());
        eat(part.as_bytes());
    }
    format!("{h:032x}")
}

/// The artifact families the store knows, each in its own subdirectory.
/// Derived keys are built only through the typed [`StoreKey`] constructors,
/// so two families can never collide on a key — the family is part of the
/// type, not a string convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ArtifactKind {
    /// Submitted module IR text, keyed by its own hash.
    Modules,
    /// Static-stage summaries (§5.1), keyed by (module, entry, config).
    Statics,
    /// Full taint-run analysis summaries, keyed by
    /// (module, entry, config, params).
    Analyses,
    /// Fitted Extra-P models, keyed by the canonical fit request.
    Models,
    /// Per-function static-stage units (`perf_taint::incremental`), keyed
    /// by the function's content-addressed unit key.
    Functions,
}

impl ArtifactKind {
    pub const ALL: [ArtifactKind; 5] = [
        ArtifactKind::Modules,
        ArtifactKind::Statics,
        ArtifactKind::Analyses,
        ArtifactKind::Models,
        ArtifactKind::Functions,
    ];

    fn dir(self) -> &'static str {
        match self {
            ArtifactKind::Modules => "modules",
            ArtifactKind::Statics => "statics",
            ArtifactKind::Analyses => "analyses",
            ArtifactKind::Models => "models",
            ArtifactKind::Functions => "functions",
        }
    }

    fn from_dir(dir: &str) -> Option<ArtifactKind> {
        ArtifactKind::ALL.into_iter().find(|ns| ns.dir() == dir)
    }

    /// Eviction class: lower classes are evicted before higher ones,
    /// regardless of recency. Whole-response artifacts (analyses, models,
    /// static summaries) are cheap to recompute one at a time and large,
    /// so they go first; a submitted module is the input of everything
    /// derived from it; per-function units are the most leveraged objects
    /// in the store — one unit is tiny, but losing hundreds of them turns
    /// a warm edit-loop back into a cold recompute. Within a class,
    /// eviction stays strictly LRU.
    fn eviction_class(self) -> u8 {
        match self {
            ArtifactKind::Analyses | ArtifactKind::Models => 0,
            ArtifactKind::Statics => 1,
            ArtifactKind::Modules => 2,
            ArtifactKind::Functions => 3,
        }
    }
}

/// A typed store key: the artifact family plus the content hash naming the
/// object within it. Built only through the constructors below, which bake
/// the derivation (including [`CONFIG_FINGERPRINT`] where the artifact
/// depends on the pipeline configuration) into one place each.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreKey {
    pub kind: ArtifactKind,
    pub hash: String,
}

impl StoreKey {
    /// A submitted module, keyed by its own text.
    pub fn module(text: &str) -> StoreKey {
        StoreKey {
            kind: ArtifactKind::Modules,
            hash: content_key(&["module", text]),
        }
    }

    /// A module named by an already-derived hash (how clients refer to
    /// submissions on every later request).
    pub fn module_by_hash(hash: &str) -> StoreKey {
        StoreKey {
            kind: ArtifactKind::Modules,
            hash: hash.to_string(),
        }
    }

    /// A static-stage summary for a submitted module. `policy` is the
    /// taint-policy name (protocol v1.4): two policies never share a
    /// cached summary.
    pub fn static_summary(module_hash: &str, policy: &str) -> StoreKey {
        StoreKey {
            kind: ArtifactKind::Statics,
            hash: content_key(&["static", module_hash, CONFIG_FINGERPRINT, policy]),
        }
    }

    /// A taint-run analysis summary, keyed by everything it depends on —
    /// including the taint-policy name (protocol v1.4).
    pub fn analysis(
        module_hash: &str,
        entry: &str,
        canonical_params: &str,
        policy: &str,
    ) -> StoreKey {
        StoreKey {
            kind: ArtifactKind::Analyses,
            hash: content_key(&[
                "analysis",
                module_hash,
                entry,
                CONFIG_FINGERPRINT,
                canonical_params,
                policy,
            ]),
        }
    }

    /// A fitted model, keyed by the canonical fit request.
    pub fn model(canonical_request: &str) -> StoreKey {
        StoreKey {
            kind: ArtifactKind::Models,
            hash: content_key(&["model", CONFIG_FINGERPRINT, canonical_request]),
        }
    }

    /// A per-function static-stage unit. `unit_key` is already a content
    /// digest (`pt_analysis::unitkey`) closing over the function body, its
    /// callees, and the static-stage configuration salt.
    pub fn function_unit(unit_key: &str) -> StoreKey {
        StoreKey {
            kind: ArtifactKind::Functions,
            hash: content_key(&["function", unit_key, CONFIG_FINGERPRINT]),
        }
    }
}

/// Counters of one store's lifetime in this process (per-process, not
/// persisted: a fresh process starts at zero, which is what lets a test
/// observe "this hit came from disk, not from memory").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    pub hits: u64,
    pub misses: u64,
    pub writes: u64,
    /// Objects deleted by the size-budget enforcer.
    pub evictions: u64,
}

#[derive(Debug, Clone, Copy)]
struct EntryMeta {
    seq: u64,
    bytes: u64,
}

/// The in-memory access-order index: every object's size and last-access
/// sequence number, plus the eviction-ordered view. The order is keyed by
/// `(eviction class, seq)` — see [`ArtifactKind::eviction_class`] — so
/// eviction walks low classes (responses) before high ones (per-function
/// units), coldest-first within each class. `clock` only grows.
#[derive(Debug, Default)]
struct LruIndex {
    clock: u64,
    total_bytes: u64,
    entries: HashMap<(ArtifactKind, String), EntryMeta>,
    order: BTreeMap<(u8, u64), (ArtifactKind, String)>,
    /// Access-order touches since the sidecar was last persisted.
    unsaved_touches: u64,
}

impl LruIndex {
    /// Record (or refresh) an object at the warm end of its class.
    fn upsert(&mut self, ns: ArtifactKind, key: &str, bytes: u64) {
        self.remove(ns, key);
        let seq = self.clock;
        self.clock += 1;
        self.entries
            .insert((ns, key.to_string()), EntryMeta { seq, bytes });
        self.order
            .insert((ns.eviction_class(), seq), (ns, key.to_string()));
        self.total_bytes += bytes;
    }

    /// Drop an object from the index (not from disk). Returns its size.
    fn remove(&mut self, ns: ArtifactKind, key: &str) -> Option<u64> {
        let meta = self.entries.remove(&(ns, key.to_string()))?;
        self.order.remove(&(ns.eviction_class(), meta.seq));
        self.total_bytes -= meta.bytes;
        Some(meta.bytes)
    }

    /// The next eviction victim, if any: the coldest object of the lowest
    /// populated eviction class.
    fn coldest(&self) -> Option<(ArtifactKind, String)> {
        self.order.values().next().cloned()
    }
}

/// A content-addressed artifact store rooted at one directory, optionally
/// capped by a size budget ([`Store::with_budget`]).
pub struct Store {
    root: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    evictions: AtomicU64,
    /// Total object bytes the store may hold; `None` = unbounded.
    budget_bytes: Option<u64>,
    lru: Mutex<LruIndex>,
    /// Temp-file disambiguator for concurrent writers in one process.
    seq: AtomicU64,
}

impl Store {
    /// Open (creating if needed) a store rooted at `root`. Orphaned temp
    /// files from writers that died mid-`put` are swept here — they are
    /// garbage by construction (a completed put renames its temp file
    /// away). The access-order index is rebuilt from the sidecar plus a
    /// directory scan: objects the sidecar knows keep their relative
    /// recency, unknown objects (written by another process) are treated
    /// as cold-but-present.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Store> {
        let root = root.into();
        // (sidecar seq if known, namespace, key, bytes on disk)
        let mut found: Vec<(Option<u64>, ArtifactKind, String, u64)> = Vec::new();
        let saved = load_sidecar(&root);
        for ns in ArtifactKind::ALL {
            let dir = root.join(ns.dir());
            fs::create_dir_all(&dir)?;
            if let Ok(entries) = fs::read_dir(&dir) {
                for entry in entries.filter_map(Result::ok) {
                    if is_temp(&entry.file_name()) {
                        let _ = fs::remove_file(entry.path());
                        continue;
                    }
                    let Some(key) = entry.file_name().to_str().map(String::from) else {
                        continue;
                    };
                    let bytes = entry.metadata().map(|m| m.len()).unwrap_or(0);
                    let seq = saved.get(&(ns, key.clone())).copied();
                    found.push((seq, ns, key, bytes));
                }
            }
        }
        // Normalize seqs: sidecar order first (unknown objects sort before
        // everything the sidecar remembers — they have no recency claim),
        // then reassign a dense 0..n clock so stale sidecars can never
        // collide.
        found.sort_by(|a, b| {
            let rank = |s: &Option<u64>| s.unwrap_or(0);
            (a.0.is_some(), rank(&a.0), a.1, a.2.clone()).cmp(&(
                b.0.is_some(),
                rank(&b.0),
                b.1,
                b.2.clone(),
            ))
        });
        let mut lru = LruIndex::default();
        for (_, ns, key, bytes) in found {
            lru.upsert(ns, &key, bytes);
        }
        Ok(Store {
            root,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            budget_bytes: None,
            lru: Mutex::new(lru),
            seq: AtomicU64::new(0),
        })
    }

    /// Cap the store at `budget_bytes` total object bytes (`None` lifts
    /// the cap). Enforced immediately — opening an over-budget store
    /// evicts its coldest objects right away — and after every `put`.
    pub fn with_budget(mut self, budget_bytes: Option<u64>) -> Store {
        self.budget_bytes = budget_bytes;
        {
            let mut lru = self.lru.lock().unwrap();
            self.enforce_budget(&mut lru);
            self.persist_sidecar(&mut lru);
        }
        self
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The configured size budget, if any.
    pub fn budget_bytes(&self) -> Option<u64> {
        self.budget_bytes
    }

    /// Total object bytes currently indexed (excludes the sidecar).
    pub fn total_bytes(&self) -> u64 {
        self.lru.lock().unwrap().total_bytes
    }

    fn path(&self, ns: ArtifactKind, key: &str) -> PathBuf {
        self.root.join(ns.dir()).join(key)
    }

    /// Fetch an object, counting a hit or a miss. A hit refreshes the
    /// object's position in the access order (LRU touch).
    pub fn get(&self, ns: ArtifactKind, key: &str) -> Option<String> {
        match fs::read_to_string(self.path(ns, key)) {
            Ok(text) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                let mut lru = self.lru.lock().unwrap();
                let bytes = lru
                    .entries
                    .get(&(ns, key.to_string()))
                    .map(|m| m.bytes)
                    .unwrap_or(text.len() as u64);
                lru.upsert(ns, key, bytes);
                lru.unsaved_touches += 1;
                if lru.unsaved_touches >= TOUCH_PERSIST_INTERVAL {
                    self.persist_sidecar(&mut lru);
                }
                Some(text)
            }
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                // Keep the index honest if the file vanished under us
                // (another process evicted it).
                self.lru.lock().unwrap().remove(ns, key);
                None
            }
        }
    }

    /// Does an object exist? (No hit/miss accounting, no LRU touch — for
    /// idempotent-put checks, not for serving.)
    pub fn contains(&self, ns: ArtifactKind, key: &str) -> bool {
        self.path(ns, key).exists()
    }

    /// Store an object atomically: write to a temp file in the same
    /// directory, then rename over the final name. Concurrent writers of
    /// the same key race benignly — content-addressing means they are
    /// writing identical bytes. A put that pushes the store past its
    /// budget evicts the coldest objects before returning.
    pub fn put(&self, ns: ArtifactKind, key: &str, text: &str) -> io::Result<()> {
        let final_path = self.path(ns, key);
        let tmp_path = final_path.with_extension(format!(
            "tmp.{}.{}",
            std::process::id(),
            self.seq.fetch_add(1, Ordering::Relaxed)
        ));
        fs::write(&tmp_path, text)?;
        fs::rename(&tmp_path, &final_path)?;
        self.writes.fetch_add(1, Ordering::Relaxed);
        let mut lru = self.lru.lock().unwrap();
        lru.upsert(ns, key, text.len() as u64);
        self.enforce_budget(&mut lru);
        // Puts are the cold path (each one paid a pipeline computation),
        // so persisting the sidecar here costs nothing that matters.
        self.persist_sidecar(&mut lru);
        Ok(())
    }

    /// Evict coldest-first until the store fits its budget. Deletion is
    /// per-object `remove_file` (atomic at the filesystem level); a
    /// concurrently evicted file is simply already gone. The just-written
    /// object carries the warmest seq, so it is evicted only when it
    /// alone exceeds the budget — still correct, just never warm.
    fn enforce_budget(&self, lru: &mut LruIndex) {
        let Some(budget) = self.budget_bytes else {
            return;
        };
        while lru.total_bytes > budget {
            let Some((ns, key)) = lru.coldest() else {
                break;
            };
            let _ = fs::remove_file(self.path(ns, &key));
            lru.remove(ns, &key);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Best-effort sidecar write (tmp + rename, like objects): losing it
    /// costs recency information on the next open, never correctness.
    fn persist_sidecar(&self, lru: &mut LruIndex) {
        lru.unsaved_touches = 0;
        let mut text = String::new();
        for ((_class, seq), (ns, key)) in &lru.order {
            let bytes = lru
                .entries
                .get(&(*ns, key.clone()))
                .map(|m| m.bytes)
                .unwrap_or(0);
            text.push_str(&format!("{seq} {} {bytes} {key}\n", ns.dir()));
        }
        let final_path = self.root.join(SIDECAR);
        let tmp_path = final_path.with_extension(format!(
            "tmp.{}.{}",
            std::process::id(),
            self.seq.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::write(&tmp_path, &text).and_then(|_| fs::rename(&tmp_path, &final_path));
    }

    /// Objects on disk in one namespace (directory scan; for `stats`).
    /// In-flight or orphaned temp files are not objects.
    pub fn object_count(&self, ns: ArtifactKind) -> usize {
        fs::read_dir(self.root.join(ns.dir()))
            .map(|entries| {
                entries
                    .filter_map(Result::ok)
                    .filter(|e| !is_temp(&e.file_name()))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Objects on disk across all namespaces.
    pub fn total_objects(&self) -> usize {
        ArtifactKind::ALL
            .iter()
            .map(|&ns| self.object_count(ns))
            .sum()
    }

    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

impl Drop for Store {
    /// Graceful close persists the freshest access order (get-touches
    /// between the periodic flushes would otherwise be lost). A killed
    /// process skips this — which is exactly the staleness the advisory
    /// sidecar is designed to absorb.
    fn drop(&mut self) {
        if let Ok(mut lru) = self.lru.lock() {
            if lru.unsaved_touches > 0 {
                self.persist_sidecar(&mut lru);
            }
        }
    }
}

/// Parse the sidecar into `(namespace, key) -> seq`. Malformed lines (or
/// a missing file) are silently ignored — the sidecar is advisory.
fn load_sidecar(root: &Path) -> HashMap<(ArtifactKind, String), u64> {
    let mut saved = HashMap::new();
    let Ok(text) = fs::read_to_string(root.join(SIDECAR)) else {
        return saved;
    };
    for line in text.lines() {
        let mut parts = line.split_whitespace();
        let (Some(seq), Some(dir), Some(_bytes), Some(key)) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            continue;
        };
        let (Ok(seq), Some(ns)) = (seq.parse::<u64>(), ArtifactKind::from_dir(dir)) else {
            continue;
        };
        saved.insert((ns, key.to_string()), seq);
    }
    saved
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> Store {
        let dir = std::env::temp_dir().join(format!("pt-store-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        Store::open(dir).expect("store opens")
    }

    #[test]
    fn content_key_is_stable_and_part_sensitive() {
        let a = content_key(&["module", "func @f() -> void {"]);
        let b = content_key(&["module", "func @f() -> void {"]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 32);
        assert_ne!(a, content_key(&["module", "func @g() -> void {"]));
        // Part boundaries matter: concatenation-equal inputs differ.
        assert_ne!(content_key(&["ab", "c"]), content_key(&["a", "bc"]));
        assert_ne!(content_key(&["ab"]), content_key(&["ab", ""]));
    }

    #[test]
    fn put_get_roundtrip_and_stats() {
        let store = temp_store("roundtrip");
        let key = content_key(&["module", "text"]);
        assert_eq!(store.get(ArtifactKind::Modules, &key), None);
        store.put(ArtifactKind::Modules, &key, "text").unwrap();
        assert_eq!(
            store.get(ArtifactKind::Modules, &key).as_deref(),
            Some("text")
        );
        assert!(store.contains(ArtifactKind::Modules, &key));
        assert_eq!(
            store.stats(),
            StoreStats {
                hits: 1,
                misses: 1,
                writes: 1,
                evictions: 0,
            }
        );
        assert_eq!(store.object_count(ArtifactKind::Modules), 1);
        assert_eq!(store.total_objects(), 1);
        assert_eq!(store.total_bytes(), 4);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn persists_across_reopen() {
        let dir = std::env::temp_dir().join(format!("pt-store-test-{}-reopen", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let store = Store::open(&dir).unwrap();
            store
                .put(ArtifactKind::Analyses, "abc", "{\"x\":1}")
                .unwrap();
        }
        let store = Store::open(&dir).unwrap();
        // Fresh process-equivalent: zero counters, object still there.
        assert_eq!(store.stats(), StoreStats::default());
        assert_eq!(
            store.get(ArtifactKind::Analyses, "abc").as_deref(),
            Some("{\"x\":1}")
        );
        assert_eq!(store.stats().hits, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn temp_files_are_not_objects_and_orphans_are_swept_on_open() {
        let dir = std::env::temp_dir().join(format!("pt-store-test-{}-tmp", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let store = Store::open(&dir).unwrap();
            store.put(ArtifactKind::Analyses, "good", "{}").unwrap();
            // Simulate a writer that died between write and rename.
            fs::write(dir.join("analyses").join("dead.tmp.1.0"), "partial").unwrap();
            assert_eq!(store.object_count(ArtifactKind::Analyses), 1);
            assert_eq!(store.total_objects(), 1);
        }
        let store = Store::open(&dir).unwrap();
        assert!(
            !dir.join("analyses").join("dead.tmp.1.0").exists(),
            "reopen sweeps orphaned temp files"
        );
        assert_eq!(
            store.get(ArtifactKind::Analyses, "good").as_deref(),
            Some("{}")
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn namespaces_do_not_collide() {
        let store = temp_store("ns");
        store.put(ArtifactKind::Modules, "k", "m").unwrap();
        assert_eq!(store.get(ArtifactKind::Statics, "k"), None);
        assert_eq!(store.get(ArtifactKind::Modules, "k").as_deref(), Some("m"));
        // The per-function namespace is its own directory too.
        store.put(ArtifactKind::Functions, "k", "f").unwrap();
        assert_eq!(store.get(ArtifactKind::Modules, "k").as_deref(), Some("m"));
        assert_eq!(
            store.get(ArtifactKind::Functions, "k").as_deref(),
            Some("f")
        );
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn typed_keys_derive_kind_and_hash_together() {
        // The same seed text lands in different families with different
        // hashes — the constructors bake the derivation scheme, so no two
        // families can ever alias a key.
        let text = "func @f() -> void {";
        let module = StoreKey::module(text);
        assert_eq!(module.kind, ArtifactKind::Modules);
        assert_eq!(module.hash, content_key(&["module", text]));
        assert_eq!(StoreKey::module_by_hash(&module.hash), module);

        let statics = StoreKey::static_summary(&module.hash, "param-set");
        let analysis = StoreKey::analysis(&module.hash, "main", "{}", "param-set");
        let model = StoreKey::model(text);
        let unit = StoreKey::function_unit("deadbeef");
        assert_eq!(statics.kind, ArtifactKind::Statics);
        assert_eq!(analysis.kind, ArtifactKind::Analyses);
        assert_eq!(model.kind, ArtifactKind::Models);
        assert_eq!(unit.kind, ArtifactKind::Functions);

        let mut hashes = vec![
            module.hash.clone(),
            statics.hash.clone(),
            analysis.hash.clone(),
            model.hash.clone(),
            unit.hash.clone(),
        ];
        hashes.sort();
        hashes.dedup();
        assert_eq!(hashes.len(), 5, "typed keys never alias");

        // Derived keys fold the config fingerprint: a config change is a
        // different object, not a stale hit.
        assert_ne!(
            StoreKey::function_unit("deadbeef").hash,
            content_key(&["function", "deadbeef", "some-other-config"])
        );
        assert_ne!(
            StoreKey::analysis(&module.hash, "main", "{}", "param-set").hash,
            StoreKey::analysis(&module.hash, "other", "{}", "param-set").hash
        );
        // Protocol v1.4: the taint policy is part of every derived key.
        assert_ne!(
            StoreKey::analysis(&module.hash, "main", "{}", "param-set").hash,
            StoreKey::analysis(&module.hash, "main", "{}", "security").hash
        );
        assert_ne!(
            StoreKey::static_summary(&module.hash, "param-set").hash,
            StoreKey::static_summary(&module.hash, "security").hash
        );
    }

    // ---- eviction ---------------------------------------------------------

    #[test]
    fn budget_evicts_coldest_first_and_respects_lru_touches() {
        let store = temp_store("lru").with_budget(Some(25));
        store
            .put(ArtifactKind::Analyses, "a", "aaaaaaaaaa")
            .unwrap(); // 10 B
        store
            .put(ArtifactKind::Analyses, "b", "bbbbbbbbbb")
            .unwrap(); // 10 B
                       // Touch "a": it is now warmer than "b".
        assert!(store.get(ArtifactKind::Analyses, "a").is_some());
        // +10 B pushes past 25: the coldest ("b") is evicted, not "a".
        store
            .put(ArtifactKind::Analyses, "c", "cccccccccc")
            .unwrap();
        assert!(store.contains(ArtifactKind::Analyses, "a"), "warm survives");
        assert!(!store.contains(ArtifactKind::Analyses, "b"), "cold evicted");
        assert!(store.contains(ArtifactKind::Analyses, "c"), "new survives");
        assert_eq!(store.stats().evictions, 1);
        assert!(store.total_bytes() <= 25);
        // An evicted object is a miss, and re-putting heals it.
        assert_eq!(store.get(ArtifactKind::Analyses, "b"), None);
        store
            .put(ArtifactKind::Analyses, "b", "bbbbbbbbbb")
            .unwrap();
        assert_eq!(
            store.get(ArtifactKind::Analyses, "b").as_deref(),
            Some("bbbbbbbbbb")
        );
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn budget_is_never_exceeded_on_disk() {
        let store = temp_store("budget").with_budget(Some(64));
        for i in 0..20 {
            let key = format!("obj{i}");
            store
                .put(ArtifactKind::Analyses, &key, &"x".repeat(10))
                .unwrap();
            // Invariant after every put: indexed bytes and on-disk bytes
            // both fit the budget.
            assert!(store.total_bytes() <= 64, "index over budget at {i}");
            let on_disk: u64 = fs::read_dir(store.root().join("analyses"))
                .unwrap()
                .filter_map(Result::ok)
                .filter(|e| !is_temp(&e.file_name()))
                .filter_map(|e| e.metadata().ok())
                .map(|m| m.len())
                .sum();
            assert!(on_disk <= 64, "disk over budget at {i}: {on_disk}");
        }
        assert!(store.stats().evictions >= 14);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn eviction_prefers_responses_over_function_units() {
        // Many small per-function units, all colder than the responses
        // that follow — then one response large enough to blow the budget.
        // Kind-biased eviction must sacrifice the (warmer) responses and
        // keep every unit: one big response must not flush the edit loop.
        let store = temp_store("kindbias").with_budget(Some(100));
        for i in 0..8 {
            store
                .put(ArtifactKind::Functions, &format!("u{i}"), &"f".repeat(5))
                .unwrap(); // 40 B of units, coldest of all
        }
        store
            .put(ArtifactKind::Analyses, "warm1", &"a".repeat(30))
            .unwrap();
        store
            .put(ArtifactKind::Analyses, "warm2", &"a".repeat(30))
            .unwrap(); // 100 B total: exactly at budget
        store
            .put(ArtifactKind::Analyses, "big", &"b".repeat(40))
            .unwrap(); // 140 B: must shed 40 B
        for i in 0..8 {
            assert!(
                store.contains(ArtifactKind::Functions, &format!("u{i}")),
                "unit u{i} must survive response pressure"
            );
        }
        assert!(!store.contains(ArtifactKind::Analyses, "warm1"));
        assert!(!store.contains(ArtifactKind::Analyses, "warm2"));
        assert!(store.contains(ArtifactKind::Analyses, "big"));
        assert!(store.total_bytes() <= 100);
        let _ = fs::remove_dir_all(store.root());
        // Only under pressure from its own (or a lower) class do units go:
        // units alone over budget still evict units, coldest first.
        let store = temp_store("kindbias2").with_budget(Some(12));
        store
            .put(ArtifactKind::Functions, "old", &"f".repeat(5))
            .unwrap();
        store
            .put(ArtifactKind::Functions, "mid", &"f".repeat(5))
            .unwrap();
        assert!(store.get(ArtifactKind::Functions, "old").is_some()); // touch
        store
            .put(ArtifactKind::Functions, "new", &"f".repeat(5))
            .unwrap();
        assert!(store.contains(ArtifactKind::Functions, "old"));
        assert!(!store.contains(ArtifactKind::Functions, "mid"));
        assert!(store.contains(ArtifactKind::Functions, "new"));
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn oversized_single_object_is_evicted_but_computation_still_worked() {
        let store = temp_store("oversize").with_budget(Some(8));
        // The object alone exceeds the budget: stored then immediately
        // evicted — a degenerate cache, never an error.
        store
            .put(ArtifactKind::Models, "big", "0123456789abcdef")
            .unwrap();
        assert!(!store.contains(ArtifactKind::Models, "big"));
        assert_eq!(store.total_bytes(), 0);
        assert_eq!(store.get(ArtifactKind::Models, "big"), None);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn access_order_survives_reopen_via_the_sidecar() {
        let dir =
            std::env::temp_dir().join(format!("pt-store-test-{}-sidecar", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let store = Store::open(&dir).unwrap();
            store
                .put(ArtifactKind::Analyses, "old", &"o".repeat(10))
                .unwrap();
            store
                .put(ArtifactKind::Analyses, "mid", &"m".repeat(10))
                .unwrap();
            store
                .put(ArtifactKind::Analyses, "new", &"n".repeat(10))
                .unwrap();
            // Touch "old" so it is the warmest at close.
            assert!(store.get(ArtifactKind::Analyses, "old").is_some());
        }
        // Reopen with a budget that only fits two objects: the coldest by
        // *persisted access order* ("mid") must be the one evicted.
        let store = Store::open(&dir).unwrap().with_budget(Some(25));
        assert!(
            store.contains(ArtifactKind::Analyses, "old"),
            "touched survives"
        );
        assert!(store.contains(ArtifactKind::Analyses, "new"));
        assert!(
            !store.contains(ArtifactKind::Analyses, "mid"),
            "coldest evicted"
        );
        assert_eq!(store.stats().evictions, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sidecar_is_advisory_and_unknown_objects_count_as_cold() {
        let dir =
            std::env::temp_dir().join(format!("pt-store-test-{}-advisory", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let store = Store::open(&dir).unwrap();
            store
                .put(ArtifactKind::Analyses, "known", &"k".repeat(10))
                .unwrap();
        }
        // A file written behind the store's back (another process) plus a
        // corrupt sidecar: open must absorb both.
        fs::write(dir.join("analyses").join("alien"), "a".repeat(10)).unwrap();
        fs::write(dir.join(SIDECAR), "garbage\n1 not-a-ns 3 x\n").unwrap();
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.total_bytes(), 20);
        assert_eq!(
            store
                .get(ArtifactKind::Analyses, "alien")
                .as_deref()
                .map(str::len),
            Some(10)
        );
        // Budget of one object: the alien (no recency claim, then un-touched
        // "known" — but "known" was also sidecar-less here) — either way the
        // store converges to a single object within budget.
        let store = store.with_budget(Some(10));
        assert!(store.total_bytes() <= 10);
        assert_eq!(store.total_objects(), 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
