//! The wire protocol: newline-delimited JSON, version 1 (revision 1.1).
//!
//! One request per line, one response per line, both single JSON objects
//! rendered compactly (the renderer escapes every control character, so a
//! document never contains a raw newline). Shapes:
//!
//! ```text
//! → {"v":1,"id":7,"method":"taint_run","params":{...}}
//! ← {"v":1,"id":7,"ok":true,"result":{...}}
//! ← {"v":1,"id":7,"ok":false,"error":{"kind":"entry_not_found","message":"..."}}
//! ```
//!
//! `id` is echoed verbatim (any JSON value; `null` when a request was too
//! malformed to carry one). `kind` is a stable machine-readable error
//! family — see [`ServeError`] — and `message` is the human-readable
//! rendering of the underlying [`PtError`] (or harness failure). The full
//! request/response catalogue is documented in `crates/server/README.md`.

use perf_taint::PtError;
use serde::json::Value;

/// Version of the wire protocol. Served in every response and checked on
/// every request (a request naming a different version is rejected with
/// kind `bad_request` before dispatch).
pub const PROTOCOL_VERSION: u64 = 1;

/// Backward-compatible revision within [`PROTOCOL_VERSION`]. Revision 1
/// ("protocol v1.1") added the `metrics` method and the `overloaded`
/// error envelope (with `retry_after_ms`). Revision 2 ("protocol v1.2")
/// added the `functions` object to `stats` and `metrics` — the
/// per-function static-stage reuse ledger (`total` / `reused_memory` /
/// `reused_store` / `recomputed`) behind the content-addressed edit loop.
/// Revision 3 ("protocol v1.3") added the `trace` method — run any other
/// method under a request-scoped tracer and get its structured span tree
/// back alongside the result — plus the `session_cache` object in `stats`
/// and `metrics`, and adaptive `retry_after_ms` hints derived from
/// observed per-method p99 latency when no fixed hint is configured.
/// Revision 4 ("protocol v1.4") added the optional `policy` field on
/// `submit_module`, `static_analysis`, `taint_run`, and `analyze_batch`
/// — selecting the taint policy (`"param-set"`, the default, or
/// `"security"`) the run executes under — plus per-policy run counters
/// and the sampled always-on request profile in `stats`/`metrics`.
/// All additions are additive; v1 clients are unaffected — the wire `v`
/// field stays `1`.
pub const PROTOCOL_MINOR: u64 = 4;

/// A parsed request envelope.
#[derive(Debug, Clone)]
pub struct Request {
    /// Echoed back verbatim in the response.
    pub id: Value,
    pub method: String,
    /// Method parameters (defaults to an empty object).
    pub params: Value,
}

/// Any failure the service maps onto the wire — the service-side superset
/// of [`PtError`]. Nothing else crosses the wire: handler panics are caught
/// and reported as [`ServeError::Internal`].
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The request itself is unusable: malformed JSON, missing fields,
    /// unknown method, unknown module hash, wrong protocol version.
    BadRequest(String),
    /// The pipeline rejected the work.
    Pt(PtError),
    /// Admission control shed the request: the queue was full and the
    /// server chose to answer immediately instead of making the client
    /// wait unboundedly. `retry_after_ms` is the server's backoff hint,
    /// carried as its own envelope field.
    Overloaded { retry_after_ms: u64 },
    /// A handler panicked; the payload message, never a propagated panic.
    Internal(String),
}

impl ServeError {
    /// The stable `kind` string of the error envelope.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::BadRequest(_) => "bad_request",
            ServeError::Pt(PtError::Parse(_)) => "parse",
            ServeError::Pt(PtError::EntryNotFound { .. }) => "entry_not_found",
            ServeError::Pt(PtError::TaintRun { .. }) => "taint_run",
            ServeError::Pt(PtError::Config(_)) => "config",
            ServeError::Overloaded { .. } => "overloaded",
            ServeError::Internal(_) => "internal",
        }
    }

    pub fn message(&self) -> String {
        match self {
            ServeError::BadRequest(m) | ServeError::Internal(m) => m.clone(),
            ServeError::Pt(e) => e.to_string(),
            ServeError::Overloaded { retry_after_ms } => {
                format!("server overloaded (admission queue full); retry after {retry_after_ms} ms")
            }
        }
    }

    /// The error envelope: `{"kind": ..., "message": ...}` — plus
    /// `retry_after_ms` on `overloaded`, so clients back off by number
    /// instead of parsing the message.
    pub fn to_json(&self) -> Value {
        let mut fields = vec![
            ("kind", Value::str(self.kind())),
            ("message", Value::str(self.message())),
        ];
        if let ServeError::Overloaded { retry_after_ms } = self {
            fields.push(("retry_after_ms", Value::int(*retry_after_ms as i64)));
        }
        Value::obj(fields)
    }
}

impl From<PtError> for ServeError {
    fn from(e: PtError) -> ServeError {
        ServeError::Pt(e)
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind(), self.message())
    }
}

/// Parse one request line. On failure the caller still gets the best
/// available `id` to echo (JSON that parsed but had a bad envelope keeps
/// its `id`; unparseable text gets `null`).
pub fn parse_request(line: &str) -> Result<Request, (Value, ServeError)> {
    let doc = Value::parse(line).map_err(|e| {
        (
            Value::Null,
            ServeError::BadRequest(format!("malformed JSON: {e}")),
        )
    })?;
    let id = doc.get("id").cloned().unwrap_or(Value::Null);
    let fail = |msg: String| (id.clone(), ServeError::BadRequest(msg));
    match doc.get("v").and_then(Value::as_u64) {
        Some(v) if v == PROTOCOL_VERSION => {}
        Some(v) => {
            return Err(fail(format!(
                "unsupported protocol version {v} (this server speaks {PROTOCOL_VERSION})"
            )))
        }
        None => return Err(fail("request missing numeric 'v'".into())),
    }
    let method = doc
        .get("method")
        .and_then(Value::as_str)
        .ok_or_else(|| fail("request missing string 'method'".into()))?
        .to_string();
    let params = doc.get("params").cloned().unwrap_or(Value::Obj(Vec::new()));
    if !matches!(params, Value::Obj(_)) {
        return Err(fail("'params' must be an object".into()));
    }
    Ok(Request { id, method, params })
}

/// Build a success response.
pub fn ok_response(id: &Value, result: Value) -> Value {
    Value::obj(vec![
        ("v", Value::int(PROTOCOL_VERSION as i64)),
        ("id", id.clone()),
        ("ok", Value::Bool(true)),
        ("result", result),
    ])
}

/// Build an error response.
pub fn error_response(id: &Value, error: &ServeError) -> Value {
    Value::obj(vec![
        ("v", Value::int(PROTOCOL_VERSION as i64)),
        ("id", id.clone()),
        ("ok", Value::Bool(false)),
        ("error", error.to_json()),
    ])
}

/// Build a request envelope (the client side of [`parse_request`]).
pub fn request_line(id: u64, method: &str, params: Value) -> String {
    Value::obj(vec![
        ("v", Value::int(PROTOCOL_VERSION as i64)),
        ("id", Value::int(id as i64)),
        ("method", Value::str(method)),
        ("params", params),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips_through_the_envelope() {
        let line = request_line(7, "stats", Value::Obj(Vec::new()));
        assert!(!line.contains('\n'));
        let req = parse_request(&line).expect("parses");
        assert_eq!(req.method, "stats");
        assert_eq!(req.id.as_u64(), Some(7));
    }

    #[test]
    fn malformed_requests_keep_the_best_id() {
        // Unparseable: id is null.
        let (id, err) = parse_request("{nope").unwrap_err();
        assert_eq!(id, Value::Null);
        assert_eq!(err.kind(), "bad_request");
        // Parseable but missing version: id preserved.
        let (id, err) = parse_request(r#"{"id": 3, "method": "stats"}"#).unwrap_err();
        assert_eq!(id.as_u64(), Some(3));
        assert!(err.message().contains("'v'"));
        // Wrong version.
        let (_, err) = parse_request(r#"{"v": 99, "id": 1, "method": "stats"}"#).unwrap_err();
        assert!(err.message().contains("unsupported protocol version 99"));
        // Non-object params.
        let (_, err) =
            parse_request(r#"{"v": 1, "id": 1, "method": "stats", "params": [1]}"#).unwrap_err();
        assert!(err.message().contains("params"));
    }

    #[test]
    fn overloaded_envelope_carries_retry_after_ms() {
        let e = ServeError::Overloaded {
            retry_after_ms: 250,
        };
        assert_eq!(e.kind(), "overloaded");
        assert!(e.message().contains("250 ms"));
        let env = error_response(&Value::Null, &e);
        let err = env.get("error").unwrap();
        assert_eq!(err.get("kind").and_then(Value::as_str), Some("overloaded"));
        assert_eq!(err.get("retry_after_ms").and_then(Value::as_u64), Some(250));
        // Other kinds do not grow the field.
        let env = error_response(&Value::Null, &ServeError::Internal("x".into()));
        assert!(env.get("error").unwrap().get("retry_after_ms").is_none());
    }

    #[test]
    fn error_kinds_map_pt_errors() {
        let e = ServeError::from(PtError::EntryNotFound { entry: "m".into() });
        assert_eq!(e.kind(), "entry_not_found");
        assert!(e.message().contains("`m`"));
        assert_eq!(ServeError::Internal("p".into()).kind(), "internal");
        assert_eq!(
            ServeError::from(PtError::Config("bad".into())).kind(),
            "config"
        );
        let env = error_response(&Value::int(2), &e);
        assert_eq!(env.get("ok").and_then(Value::as_bool), Some(false));
        assert_eq!(
            env.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Value::as_str),
            Some("entry_not_found")
        );
    }
}
